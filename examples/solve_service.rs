//! Solve service: many independent right-hand sides, one shared operator,
//! batched width-`nvec` block-CG multivector solves.
//!
//! Twelve Poisson load cases (independent synthetic forcings) are
//! submitted to a [`SolveService`] that batches them four at a time —
//! every `Ke` slab load and every ghost envelope amortized across the
//! whole batch — and the aggregate throughput is compared against
//! solving the same twelve systems one sequential CG at a time.
//!
//! ```text
//! cargo run --release --example solve_service
//! ```

use hymv::core::dirichlet_op::owned_constraints;
use hymv::core::DirichletOp;
use hymv::fem::dirichlet::constrained_dofs;
use hymv::prelude::*;

/// Load case `k` on this rank: a deterministic per-global-dof forcing
/// (rank-consistent, and deliberately *not* an operator eigenvector —
/// the manufactured sine load converges in one iteration and would hide
/// the per-iteration batching win). Constrained dofs carry zero, which
/// for homogeneous Dirichlet walls is already the modified RHS.
fn load_case(maps: &HymvMaps, constrained: &[(u32, f64)], k: u64) -> Vec<f64> {
    let lo = maps.node_range.0;
    let n = (maps.node_range.1 - lo) as usize;
    let mut f: Vec<f64> = (0..n)
        .map(|i| {
            let g = lo + i as u64;
            ((g * (k + 3) + k * k) % 17) as f64 * 0.25 - 2.0
        })
        .collect();
    for &(d, _) in constrained {
        f[d as usize] = 0.0;
    }
    f
}

fn main() {
    let n = 12;
    let n_requests = 12;
    let width = 4;
    let mesh = StructuredHexMesh::unit(n, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 4, PartitionMethod::Slabs);
    let spec = PoissonProblem::dirichlet();
    println!("mesh: {n}³ Hex8 on 4 ranks; {n_requests} load cases, batch width {width}\n");

    // Batched service path: one width-4 block-CG solve per 4 requests.
    let served = Universe::run(4, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let maps = HymvMaps::build(part);
        let (raw_op, _) = HymvOperator::setup(comm, part, &kernel);
        let constrained = owned_constraints(&maps, 1, &constrained_dofs(part, &spec));
        let mut op = DirichletOp::new(raw_op, constrained.clone());

        let mut precond = Identity;
        let policy = BatchPolicy {
            max_width: width,
            deadline_s: 1e-3,
        };
        let mut svc = SolveService::new(&mut op, &mut precond, 1e-8, 2000, policy);
        for k in 0..n_requests {
            svc.submit(comm, load_case(&maps, &constrained, k));
        }
        let results = svc.flush(comm);
        assert!(results.iter().all(|o| o.converged));
        let batches: Vec<(usize, usize, f64)> = svc
            .batch_metrics()
            .iter()
            .map(|b| (b.width, b.iterations, b.solve_s))
            .collect();
        (comm.vt(), batches)
    });
    let (vt_served, batches) = &served[0];
    for (k, (w, iters, s)) in batches.iter().enumerate() {
        println!(
            "batch {k}: width {w}, {iters} block iterations, {:.1} ms",
            s * 1e3
        );
    }

    // Sequential baseline: the same twelve systems, one CG at a time.
    let sequential = Universe::run(4, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let maps = HymvMaps::build(part);
        let (raw_op, _) = HymvOperator::setup(comm, part, &kernel);
        let constrained = owned_constraints(&maps, 1, &constrained_dofs(part, &spec));
        let mut op = DirichletOp::new(raw_op, constrained.clone());
        let mut iters_total = 0;
        for k in 0..n_requests {
            let f = load_case(&maps, &constrained, k);
            let mut x = vec![0.0; f.len()];
            let res = cg(comm, &mut op, &mut Identity, &f, &mut x, 1e-8, 2000);
            assert!(res.converged);
            iters_total += res.iterations;
        }
        (comm.vt(), iters_total)
    });
    let (vt_seq, iters_seq) = sequential[0];

    let thr_served = n_requests as f64 / vt_served;
    let thr_seq = n_requests as f64 / vt_seq;
    println!(
        "\nsequential: {:.1} ms virtual, {iters_seq} CG iterations total ({thr_seq:.1} solves/s)\n\
         service:    {:.1} ms virtual ({thr_served:.1} solves/s)\n\
         aggregate speedup: {:.2}×",
        vt_seq * 1e3,
        vt_served * 1e3,
        thr_served / thr_seq,
    );
}

//! The paper's second verification problem (§V-B): a prismatic elastic bar
//! stretched by its own weight (Timoshenko & Goodier), discretized with
//! linear (Hex8) and quadratic (Hex20) hexahedra on the paper's mesh
//! sequence 4³ / 8³ / 16³, partitioned in z into 2 / 4 / 8 partitions.
//!
//! The exact displacement field is quadratic in the coordinates, so
//! quadratic elements reproduce it to solver precision (the paper reports
//! err < 10⁻⁸ — the discretization is exact and the residual tolerance is
//! what remains); linear elements converge at second order.
//!
//! ```text
//! cargo run --release --example elastic_bar
//! ```

use std::sync::Arc;

use hymv::prelude::*;

fn main() {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    println!(
        "elastic bar: {}×{}×{}, E = {}, ν = {}, ρg = {:.2}\n",
        bar.lx,
        bar.ly,
        bar.lz,
        bar.young,
        bar.poisson,
        bar.rho * bar.g
    );
    println!(
        "{:>6} {:>6} {:>4} {:>12} {:>14} {:>6}",
        "elem", "mesh", "p", "DoFs", "‖u−u*‖∞", "iters"
    );

    for (et, label) in [(ElementType::Hex8, "Hex8"), (ElementType::Hex20, "Hex20")] {
        for (n, p) in [(4usize, 2usize), (8, 4), (16, 8)] {
            // Hex20 at 16³ is large for a 1-core host; trim the sequence.
            if et == ElementType::Hex20 && n > 8 {
                continue;
            }
            let mesh = StructuredHexMesh::new(n, n, n, et, lo, hi).build();
            let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
            let out = Universe::run(p, |comm| {
                let part = &pm.parts[comm.rank()];
                let kernel = Arc::new(ElasticityKernel::new(
                    et,
                    bar.young,
                    bar.poisson,
                    bar.body_force(),
                ));
                let mut sys = FemSystem::build(
                    comm,
                    part,
                    kernel,
                    &bar.dirichlet(),
                    BuildOptions::new(Method::Hymv),
                );
                let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-12, 50_000);
                assert!(res.converged, "{res:?}");
                let err = sys.inf_error(comm, &u, |x| bar.exact(x).to_vec());
                (err, res.iterations, sys.n_owned())
            });
            let (err, iters, _) = out[0];
            let dofs = mesh.n_nodes() * 3;
            println!("{label:>6} {n:>4}³ {p:>4} {dofs:>12} {err:>14.3e} {iters:>6}");
        }
    }

    println!(
        "\npaper: all meshes give err < 1e-8 with quadratic elements (the\n\
         Timoshenko field is quadratic, so Hex20 captures it exactly up to\n\
         the CG tolerance); Hex8 errors shrink 4x per refinement."
    );
}

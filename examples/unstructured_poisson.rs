//! Unstructured-mesh workflow (paper §V-C.3): Poisson on a jittered
//! quadratic-tetrahedron mesh (the Gmsh stand-in), partitioned with the
//! greedy graph partitioner (the METIS stand-in), solved with all three
//! SPMV methods. Prints the partition quality and per-method setup/SPMV
//! costs — the ingredients of the paper's Fig 7.
//!
//! ```text
//! cargo run --release --example unstructured_poisson
//! ```

use std::sync::Arc;

use hymv::mesh::partition::{partition_elems, partition_mesh_with};
use hymv::prelude::*;

fn main() {
    let p = 4;
    let n = 8;
    let mesh = unstructured_tet_mesh(n, ElementType::Tet10, 0.18, 2022);
    println!(
        "unstructured Tet10 mesh: {} elements, {} nodes (jittered Kuhn grid)",
        mesh.n_elems(),
        mesh.n_nodes()
    );

    // Partition with the METIS stand-in and report quality.
    let assignment = partition_elems(&mesh, p, PartitionMethod::GreedyGraph);
    let stats = PartitionStats::compute(&mesh, &assignment, p);
    println!(
        "greedy graph partition: {:?} elements/part, edge cut {}, {} shared nodes, imbalance {:.3}\n",
        stats.elems_per_part, stats.edge_cut, stats.shared_nodes, stats.imbalance()
    );
    let pm = partition_mesh_with(&mesh, &assignment, p);

    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>10} {:>12}",
        "method", "setup emat", "setup overhead", "10 SPMV", "CG iters", "‖u−u*‖∞"
    );
    for method in [Method::Hymv, Method::MatFree, Method::Assembled] {
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Tet10,
                PoissonProblem::body(),
            ));
            comm.reset_ledger();
            let mut sys = FemSystem::build(
                comm,
                part,
                kernel,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(method),
            );
            let emat = comm.allreduce_max_f64(sys.setup.emat_s);
            let over = comm.allreduce_max_f64(sys.setup.overhead_s);
            let t10 = sys.time_spmvs(comm, 10);
            let t10 = comm.allreduce_max_f64(t10);
            let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-9, 20_000);
            assert!(res.converged);
            let err = sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)]);
            (emat, over, t10, res.iterations, err)
        });
        let (emat, over, t10, iters, err) = out[0];
        println!(
            "{:>10} {:>11.2} ms {:>11.2} ms {:>9.2} ms {:>10} {:>12.2e}",
            format!("{method:?}"),
            emat * 1e3,
            over * 1e3,
            t10 * 1e3,
            iters,
            err
        );
    }

    println!(
        "\npaper Fig 7: on unstructured meshes the assembled setup's\n\
         communication dominates (HYMV setup ~11x faster) and HYMV's SPMV\n\
         beats the irregular CSR SpMV (~3.6x); matrix-free pays the Tet10\n\
         re-integration every SPMV."
    );
}

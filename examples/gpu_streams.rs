//! HYMV-GPU stream overlap (paper §IV-F and Fig 3): run one GPU SPMV of
//! the elasticity operator with 1, 2, 4, and 8 streams on the simulated
//! device, print the modeled makespans, and render the 8-stream timeline
//! as an ASCII Gantt chart (the analogue of the paper's profiler
//! snapshot). A Chrome-trace JSON is written for `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example gpu_streams
//! ```

use hymv::gpu::trace;
use hymv::prelude::*;

fn main() {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let n = 10;
    let mesh = StructuredHexMesh::new(n, n, n, ElementType::Hex20, lo, hi).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    println!(
        "elasticity Hex20, {}³ elements, {} DoFs — batched EMV on the simulated RTX 5000\n",
        n,
        mesh.n_nodes() * 3
    );

    let mut gantt = String::new();
    let mut chrome = String::new();
    let results = Universe::run(1, |comm| {
        let part = &pm.parts[0];
        let kernel =
            ElasticityKernel::new(ElementType::Hex20, bar.young, bar.poisson, bar.body_force());
        let mut rows = Vec::new();
        let mut snapshots = (String::new(), String::new());
        for ns in [1usize, 2, 4, 8] {
            let (mut gpu, _) = HymvGpuOperator::setup(
                comm,
                part,
                &kernel,
                GpuModel::default(),
                ns,
                GpuScheme::Blocking,
                4,
            );
            let x: Vec<f64> = (0..gpu.n_owned())
                .map(|i| (i as f64 * 0.01).sin())
                .collect();
            let mut y = vec![0.0; gpu.n_owned()];
            gpu.sim_mut().clear_events();
            gpu.matvec(comm, &x, &mut y);
            let ev = gpu.sim().events().to_vec();
            let t0 = ev.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
            let t1 = ev.iter().map(|e| e.end).fold(0.0, f64::max);
            rows.push((ns, (t1 - t0) * 1e3));
            if ns == 8 {
                snapshots = (trace::render_ascii(&ev, 100), trace::to_chrome_trace(&ev));
            }
        }
        (rows, snapshots)
    });

    let (rows, (ascii, json)) = &results[0];
    println!("{:>8} {:>16}", "streams", "makespan (ms)");
    for (ns, ms) in rows {
        println!("{ns:>8} {ms:>16.4}");
    }
    gantt.push_str(ascii);
    chrome.push_str(json);

    println!("\n8-stream timeline (paper Fig 3 analogue):\n{gantt}");
    let path = "target/gpu_trace.json";
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(path, &chrome).is_ok() {
        println!("Chrome trace written to {path} (load in chrome://tracing)");
    }
    println!(
        "\nWith one stream the copy engines idle while the kernel runs; by 8\n\
         streams H2D, batched-EMV, and D2H pipelines overlap and the\n\
         makespan approaches the slowest engine's busy time — the paper's\n\
         observed optimum for the 25M-DoF problem."
    );
}

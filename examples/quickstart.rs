//! Quickstart: solve the paper's Poisson verification problem (§V-B) with
//! HYMV on four simulated MPI ranks, and compare all three SPMV methods.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hymv::prelude::*;

fn main() {
    // 1. Mesh the unit cube with trilinear hexes and partition into four
    //    z-slabs (the paper's structured-mesh partitioning).
    let n = 16;
    let mesh = StructuredHexMesh::unit(n, ElementType::Hex8).build();
    println!(
        "mesh: {}³ Hex8 elements, {} nodes, partitioned into 4 slabs",
        n,
        mesh.n_nodes()
    );
    let pm = partition_mesh(&mesh, 4, PartitionMethod::Slabs);

    // 2. For each SPMV method, build the system and solve with CG + Jacobi.
    for method in [Method::Hymv, Method::MatFree, Method::Assembled] {
        let results = Universe::run(4, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8,
                PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm,
                part,
                kernel,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(method),
            );
            let setup = sys.setup;
            let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-8, 5000);
            assert!(res.converged, "{method:?} did not converge: {res:?}");
            let err = sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)]);
            (setup, res.iterations, err, comm.vt())
        });
        let (setup, iters, err, vt) = &results[0];
        println!(
            "{method:?}: setup {:.2} ms (emat {:.2} ms + overhead {:.2} ms), \
             {iters} CG iterations, ‖u−u*‖∞ = {err:.2e}, virtual time {:.1} ms",
            setup.total() * 1e3,
            setup.emat_s * 1e3,
            setup.overhead_s * 1e3,
            vt * 1e3,
        );
    }

    println!(
        "\nAll three methods produce the same discrete solution; HYMV's setup \
         avoids the assembled method's global communication, and its SPMV \
         avoids the matrix-free method's per-iteration re-integration."
    );

    // Bonus: solve once more serially and export the field for ParaView.
    let out = Universe::run(1, |comm| {
        let pm1 = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let kernel = Arc::new(PoissonKernel::with_body(
            ElementType::Hex8,
            PoissonProblem::body(),
        ));
        let mut sys = FemSystem::build(
            comm,
            &pm1.parts[0],
            kernel,
            &PoissonProblem::dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (u, _) = sys.solve(comm, PrecondKind::Jacobi, 1e-8, 5000);
        u
    });
    let field = hymv::mesh::vtk::PointField {
        name: "u",
        values: &out[0],
        components: 1,
    };
    if hymv::mesh::vtk::write_vtk(&mesh, &[field], "target/quickstart_solution.vtk").is_ok() {
        println!("solution written to target/quickstart_solution.vtk (open in ParaView)");
    }
}

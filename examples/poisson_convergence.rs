//! The paper's correctness verification (§V-B, first experiment): solve
//! `∇²u + sin(2πx) sin(2πy) sin(2πz) = 0` on `[0,1]³` with homogeneous
//! Dirichlet conditions, on a sequence of refined meshes, partitioned in
//! the z-direction into four partitions — and report `‖u − u_exact‖∞`.
//!
//! The paper reports errors between 23.4×10⁻⁵ (coarsest, 10³ elements) and
//! 0.1×10⁻⁵ (finest, 160³); we run the first refinements of the same
//! sequence (the host is a single core) and additionally verify the
//! second-order convergence rate the sequence implies.
//!
//! ```text
//! cargo run --release --example poisson_convergence
//! ```

use std::sync::Arc;

use hymv::prelude::*;

fn main() {
    println!("Poisson verification (paper §V-B): u = sin(2πx)sin(2πy)sin(2πz)/(12π²)\n");
    println!(
        "{:>10} {:>12} {:>14} {:>8}",
        "mesh", "DoFs", "‖u−u*‖∞", "rate"
    );

    let mut prev_err: Option<f64> = None;
    for n in [10usize, 20, 40] {
        let mesh = StructuredHexMesh::unit(n, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 4, PartitionMethod::Slabs);
        let out = Universe::run(4, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8,
                PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm,
                part,
                kernel,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-10, 10_000);
            assert!(res.converged);
            sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)])
        });
        let err = out[0];
        let rate = prev_err.map_or_else(|| "-".to_string(), |p| format!("{:.2}", (p / err).log2()));
        println!(
            "{:>7}³ {:>12} {:>14.3e} {:>8}",
            n,
            mesh.n_nodes(),
            err,
            rate
        );
        prev_err = Some(err);
    }

    println!(
        "\npaper: 23.4e-5 at 10³ down to 0.1e-5 at 160³ (second-order in h).\n\
         The measured errors land on the same curve; the rate column should\n\
         approach 2.0 (each refinement halves h, quartering the error)."
    );
}

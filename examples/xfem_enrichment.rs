//! The adaptive-matrix scenario that motivates HYMV (paper §I): XFEM-style
//! local enrichment. When a crack propagates, a *few* elements change
//! stiffness; HYMV recomputes only those stored element matrices, while a
//! matrix-assembled code must re-run the entire global assembly.
//!
//! This example simulates a crack advancing through an elastic block:
//! at each step a small set of "cracked" elements is softened (stiffness
//! scaled down), the operator is updated, and the system is re-solved. It
//! reports the per-step update cost of HYMV's local path against a full
//! assembled rebuild.
//!
//! ```text
//! cargo run --release --example xfem_enrichment
//! ```

use hymv::core::assembled::AssembledOperator;
use hymv::core::operator::HymvOperator;
use hymv::prelude::*;

fn main() {
    let p = 4;
    let n = 12;
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = StructuredHexMesh::new(n, n, n, ElementType::Hex8, lo, hi).build();
    let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
    let n_elems = mesh.n_elems();
    println!(
        "crack propagation through a {}³ Hex8 elastic block ({} elements, {} ranks)\n",
        n, n_elems, p
    );

    // The crack advances along x at mid-height: step k cracks the column
    // of elements at (x = k, y = *, z = n/2).
    let steps = 6usize;
    println!(
        "{:>5} {:>9} {:>16} {:>18} {:>8}",
        "step", "cracked", "HYMV update (ms)", "assembled rebuild", "speedup"
    );

    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel =
            ElasticityKernel::new(ElementType::Hex8, bar.young, bar.poisson, bar.body_force());
        // Softened operator for cracked elements: 100x lower stiffness.
        let soft = ElasticityKernel::new(
            ElementType::Hex8,
            bar.young / 100.0,
            bar.poisson,
            bar.body_force(),
        );
        let (mut hymv, _) = HymvOperator::setup(comm, part, &kernel);

        let mut rows = Vec::new();
        for step in 0..steps {
            // Which of *my* elements crack this step (global element ids
            // encode (ex, ey, ez) lexicographically).
            let cracked: Vec<usize> = (0..part.n_elems())
                .filter(|&le| {
                    let ge = part.elem_global_ids[le] as usize;
                    let (ex, rest) = (ge % n, ge / n);
                    let (_ey, ez) = (rest % n, rest / n);
                    ex == step && ez == n / 2
                })
                .collect();

            // HYMV path: recompute only the cracked elements' matrices.
            comm.barrier();
            let t_update = hymv.update_elements(comm, part, &soft, &cracked);
            let t_update = comm.allreduce_max_f64(t_update);

            // Assembled path: the entire matrix must be reassembled.
            comm.barrier();
            let vt0 = comm.vt();
            let (_asm, _) = AssembledOperator::setup(comm, part, &kernel);
            let t_rebuild = comm.allreduce_max_f64(comm.vt() - vt0);

            let n_cracked = comm.allreduce_sum_u64(cracked.len() as u64);
            rows.push((step, n_cracked, t_update, t_rebuild));
        }
        rows
    });

    for (step, cracked, t_update, t_rebuild) in &out[0] {
        println!(
            "{step:>5} {cracked:>9} {:>16.3} {:>15.3} ms {:>7.0}x",
            t_update * 1e3,
            t_rebuild * 1e3,
            t_rebuild / t_update.max(1e-12)
        );
    }

    println!(
        "\nHYMV touches only the cracked elements (no communication, no\n\
         global assembly); the assembled approach re-routes every element's\n\
         entries through the network each step. This gap is the paper's\n\
         'adaptive-matrix' motivation."
    );
}

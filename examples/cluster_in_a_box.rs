//! A tour of the `hymv-comm` substrate itself — the "cluster in a box"
//! that every experiment in this repository runs on.
//!
//! Demonstrates: SPMD rank programs, non-blocking point-to-point with
//! communication/computation overlap, collectives (blocking and
//! non-blocking), the sparse all-to-all used during HYMV's map
//! construction, and the virtual-time ledger that separates measured
//! compute from modeled communication.
//!
//! ```text
//! cargo run --release --example cluster_in_a_box
//! ```

use hymv::prelude::*;

fn main() {
    let p = 8;
    println!("spinning up a universe of {p} ranks (threads with mailboxes)\n");

    // 1. Halo exchange on a 1D chain: the communication pattern of a slab
    //    partition, with the latency hidden behind local work.
    let stats = Universe::run(p, |comm| {
        let me = comm.rank();
        let left = me.checked_sub(1);
        let right = if me + 1 < comm.size() {
            Some(me + 1)
        } else {
            None
        };

        // Post halo sends (non-blocking, buffered).
        for nb in [left, right].into_iter().flatten() {
            comm.isend(nb, 1, Payload::from_f64(vec![me as f64; 128]));
        }
        // "Independent work" overlaps the wires.
        let local_sum = comm.work(|| (0..200_000).map(|i| (i as f64).sqrt()).sum::<f64>());
        assert!(local_sum > 0.0);
        // Complete the halo.
        for nb in [left, right].into_iter().flatten() {
            let halo = comm.recv(nb, 1).into_f64();
            assert_eq!(halo[0] as usize, nb);
        }
        comm.stats()
    });
    let s = &stats[3];
    println!(
        "halo exchange, rank 3: {} msgs sent, {} bytes, compute {:.3} ms, \
         comm wait {:.3} ms (latency absorbed by overlapped work)",
        s.msgs_sent,
        s.bytes_sent,
        s.compute_s * 1e3,
        s.comm_wait_s * 1e3
    );

    // 2. Collectives: blocking reductions and the non-blocking fused
    //    reduction pipelined CG uses.
    let sums = Universe::run(p, |comm| {
        let blocking = comm.allreduce_sum_f64(comm.rank() as f64);
        let handle = comm.iallreduce_sum_vec(vec![1.0, comm.rank() as f64]);
        comm.work(|| std::hint::black_box((0..50_000).sum::<usize>()));
        let fused = handle.wait(comm);
        (blocking, fused)
    });
    println!(
        "\ncollectives: allreduce Σrank = {}, fused non-blocking reduce = {:?}",
        sums[0].0, sums[0].1
    );

    // 3. Sparse all-to-all: the pattern behind LNSM/GNGM construction —
    //    receivers do not know their senders in advance.
    let received = Universe::run(p, |comm| {
        // Every rank messages its rank², modulo p — an irregular pattern.
        let dst = (comm.rank() * comm.rank()) % comm.size();
        let msgs = vec![(dst, Payload::from_u64(vec![comm.rank() as u64]))];
        let got = comm.exchange_sparse(msgs, 2);
        got.len()
    });
    println!(
        "\nsparse all-to-all: per-rank incoming message counts = {received:?} \
         (senders discovered at runtime)"
    );

    // 4. Virtual time vs wall time: a deliberately imbalanced program.
    let report = Universe::run(p, |comm| {
        // Rank 0 does 8x the work; everyone then synchronizes.
        let reps = if comm.rank() == 0 { 800_000 } else { 100_000 };
        comm.work(|| std::hint::black_box((0..reps).map(|i| (i as f64).sin()).sum::<f64>()));
        comm.barrier();
        (comm.stats().compute_s, comm.vt())
    });
    let max_compute = report.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let min_compute = report.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let vt = report[p - 1].1;
    println!(
        "\nimbalance: compute spans {:.2}–{:.2} ms across ranks, but after the \
         barrier every rank's virtual clock reads {:.2} ms — the straggler \
         sets the pace, exactly as on a real machine",
        min_compute * 1e3,
        max_compute * 1e3,
        vt * 1e3
    );

    println!(
        "\nThis runtime is what DESIGN.md §2 substitutes for MPI: identical \
         message structure and volumes, with time = measured thread-CPU \
         compute + α-β-modeled communication."
    );
}

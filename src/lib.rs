//! # HYMV — a scalable adaptive-matrix SPMV for heterogeneous architectures
//!
//! A from-scratch Rust reproduction of Tran, Fernando, Saurabh,
//! Ganapathysubramanian, Kirby & Sundar, *"A scalable adaptive-matrix SPMV
//! for heterogeneous architectures"*, IPDPS 2022 — the HYMV library plus
//! every substrate its evaluation depends on.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`comm`] | `hymv-comm` | MPI-like runtime (thread ranks, nonblocking p2p, collectives, virtual time) |
//! | [`mesh`] | `hymv-mesh` | hex/tet meshes, partitioners, owner-contiguous renumbering |
//! | [`fem`]  | `hymv-fem`  | quadrature, shape functions, Poisson/elasticity kernels, analytic solutions |
//! | [`la`]   | `hymv-la`   | SIMD EMV kernels, CSR, distributed CSR, CG, preconditioners |
//! | [`core`] | `hymv-core` | the HYMV operator (Algorithms 1–2), matrix-free and assembled baselines, `FemSystem` driver |
//! | [`gpu`]  | `hymv-gpu`  | simulated GPU backend (Algorithm 3, overlap schemes, cuSPARSE baseline) |
//! | [`check`] | `hymv-check` | protocol auditor, schedule-perturbation race detector, map/DA invariant pass |
//!
//! ## Quickstart
//!
//! Solve the paper's Poisson verification problem with HYMV on four
//! simulated MPI ranks:
//!
//! ```
//! use std::sync::Arc;
//! use hymv::prelude::*;
//!
//! // Mesh the unit cube with 8-node hexes and partition into 4 slabs.
//! let mesh = StructuredHexMesh::unit(8, ElementType::Hex8).build();
//! let pm = partition_mesh(&mesh, 4, PartitionMethod::Slabs);
//!
//! let errs = Universe::run(4, |comm| {
//!     let part = &pm.parts[comm.rank()];
//!     let kernel = Arc::new(PoissonKernel::with_body(
//!         ElementType::Hex8,
//!         PoissonProblem::body(),
//!     ));
//!     let mut sys = FemSystem::build(
//!         comm,
//!         part,
//!         kernel,
//!         &PoissonProblem::dirichlet(),
//!         BuildOptions::new(Method::Hymv),
//!     );
//!     let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-8, 1000);
//!     assert!(res.converged);
//!     sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)])
//! });
//! assert!(errs[0] < 3e-3);
//! ```

pub use hymv_check as check;
pub use hymv_comm as comm;
pub use hymv_core as core;
pub use hymv_fem as fem;
pub use hymv_gpu as gpu;
pub use hymv_la as la;
pub use hymv_mesh as mesh;
pub use hymv_serve as serve;

/// The commonly-used names in one import.
pub mod prelude {
    pub use hymv_check::{check_exchange, check_maps, check_partition, run_audited, run_perturbed};
    pub use hymv_comm::{
        AuditMode, AuditReport, CommStats, CostModel, Payload, RunConfig, Universe,
    };
    pub use hymv_core::system::{BuildOptions, FemSystem, Method, PrecondKind, SolverKind};
    pub use hymv_core::{
        AssembledOperator, DistArray, GhostExchange, HymvMaps, HymvOperator, MatFreeOperator,
        ParallelMode,
    };
    pub use hymv_fem::analytic::{BarProblem, PoissonProblem};
    pub use hymv_fem::dirichlet::DirichletSpec;
    pub use hymv_fem::{ElasticityKernel, ElementKernel, PoissonKernel};
    pub use hymv_gpu::{
        gpu_resident_cg, DeviceBlas, DeviceSim, GpuModel, GpuScheme, HymvGpuOperator,
        PetscGpuOperator,
    };
    pub use hymv_la::{
        block_cg, cg, pipelined_cg, BlockJacobi, DistCsr, Identity, Jacobi, LinOp, MultiLinOp,
        Multivector, SerialCsr,
    };
    pub use hymv_mesh::partition::{partition_mesh, PartitionStats};
    pub use hymv_mesh::{
        unstructured_hex_mesh, unstructured_tet_mesh, ElementType, GlobalMesh, MeshPartition,
        PartitionMethod, StructuredHexMesh,
    };
    pub use hymv_serve::{BatchMetrics, BatchPolicy, SolveOutcome, SolveService};
}

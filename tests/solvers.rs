//! Solver-level integration: standard CG, pipelined CG, and the
//! GPU-resident CG produce the same solutions through the full FEM stack.

use std::sync::Arc;

use hymv::prelude::*;

fn jittered_poisson(n: usize) -> GlobalMesh {
    unstructured_hex_mesh(n, n, n, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.2, 29)
}

#[test]
fn pipelined_cg_equals_cg_through_fem_system() {
    let mesh = jittered_poisson(6);
    let p = 3;
    let pm = partition_mesh(&mesh, p, PartitionMethod::GreedyGraph);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(PoissonKernel::with_body(
            ElementType::Hex8,
            PoissonProblem::body(),
        ));
        let mut sys = FemSystem::build(
            comm,
            part,
            kernel,
            &PoissonProblem::dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (x_cg, r_cg) = sys.solve_with(comm, SolverKind::Cg, PrecondKind::Jacobi, 1e-11, 50_000);
        let (x_p, r_p) = sys.solve_with(
            comm,
            SolverKind::PipelinedCg,
            PrecondKind::Jacobi,
            1e-11,
            50_000,
        );
        assert!(r_cg.converged && r_p.converged, "{r_cg:?} {r_p:?}");
        let d = x_cg
            .iter()
            .zip(&x_p)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        comm.allreduce_max_f64(d)
    });
    assert!(out[0] < 1e-8, "solutions diverge by {}", out[0]);
}

#[test]
fn pipelined_cg_all_methods_same_iterations() {
    let mesh = jittered_poisson(5);
    let p = 2;
    let pm = partition_mesh(&mesh, p, PartitionMethod::Rcb);
    let mut iters = Vec::new();
    for method in [Method::Hymv, Method::MatFree, Method::Assembled] {
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8,
                PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm,
                part,
                kernel,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(method),
            );
            let (_, res) = sys.solve_with(
                comm,
                SolverKind::PipelinedCg,
                PrecondKind::Jacobi,
                1e-9,
                50_000,
            );
            assert!(res.converged);
            res.iterations
        });
        iters.push(out[0]);
    }
    assert_eq!(iters[0], iters[1]);
    assert_eq!(iters[0], iters[2]);
}

#[test]
fn gpu_resident_cg_through_full_stack() {
    use hymv::core::assemble::{assemble_rhs, jacobi_diagonal, owned_node_coords};
    use hymv::core::dirichlet_op::{owned_constraints, DirichletOp};
    use hymv::fem::dirichlet::constrained_dofs;

    let mesh = jittered_poisson(5);
    let p = 2;
    let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = PoissonKernel::with_body(ElementType::Hex8, PoissonProblem::body());
        let maps = HymvMaps::build(part);
        let exchange = GhostExchange::build(comm, &maps);
        let raw_rhs = assemble_rhs(comm, &maps, &exchange, part, &kernel);
        let spec = PoissonProblem::dirichlet();
        let constrained = owned_constraints(&maps, 1, &constrained_dofs(part, &spec));

        let (op, _) = HymvGpuOperator::setup(
            comm,
            part,
            &kernel,
            GpuModel::default(),
            4,
            GpuScheme::OverlapGpu,
            2,
        );
        let mut diag = jacobi_diagonal(comm, &maps, &exchange, op.store(), 1);
        let boxed: Box<dyn LinOp> = Box::new(op);
        let mut wrapped = DirichletOp::new(boxed, constrained);
        wrapped.mask_diagonal(&mut diag);
        let inv_diag: Vec<f64> = diag.iter().map(|d| 1.0 / d).collect();
        let rhs = wrapped.build_rhs(comm, &raw_rhs);

        let mut x = vec![0.0; wrapped.n_owned()];
        let mut blas = DeviceBlas::new(DeviceSim::new(GpuModel::default(), 1));
        let res = gpu_resident_cg(
            comm,
            &mut wrapped,
            &mut blas,
            &inv_diag,
            &rhs,
            &mut x,
            1e-10,
            50_000,
        );
        assert!(res.converged, "{res:?}");
        let coords = owned_node_coords(&maps, part);
        let err =
            hymv::fem::analytic::inf_error(&coords, &x, 1, |p| vec![PoissonProblem::exact(p)]);
        comm.allreduce_max_f64(err)
    });
    assert!(out[0] < 5e-3, "solution error {}", out[0]);
}

#[test]
fn pipelined_cg_elasticity_with_block_jacobi() {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = unstructured_hex_mesh(5, 5, 5, ElementType::Hex8, lo, hi, 0.15, 41);
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Rcb);
    let out = Universe::run(2, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(ElasticityKernel::new(
            ElementType::Hex8,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));
        let mut opts = BuildOptions::new(Method::Hymv);
        opts.want_block_jacobi = true;
        let mut sys = FemSystem::build(comm, part, kernel, &bar.dirichlet(), opts);
        let (u, res) = sys.solve_with(
            comm,
            SolverKind::PipelinedCg,
            PrecondKind::BlockJacobi,
            1e-10,
            50_000,
        );
        assert!(res.converged);
        sys.inf_error(comm, &u, |x| bar.exact(x).to_vec())
    });
    assert!(out[0] < 5e-3, "error {}", out[0]);
}

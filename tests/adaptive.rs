//! The adaptive-matrix path (XFEM/AMR): updating a subset of stored
//! element matrices must be exactly equivalent to a full rebuild with the
//! modified operator — at a fraction of the cost.

use std::sync::Arc;

use hymv::core::operator::HymvOperator;
use hymv::prelude::*;

/// A kernel that scales another kernel's matrices (a crude "enrichment").
struct Scaled {
    inner: Arc<dyn ElementKernel>,
    factor: f64,
}

impl ElementKernel for Scaled {
    fn ndof_per_node(&self) -> usize {
        self.inner.ndof_per_node()
    }
    fn elem_type(&self) -> ElementType {
        self.inner.elem_type()
    }
    fn compute_ke(
        &self,
        coords: &[[f64; 3]],
        ke: &mut [f64],
        scratch: &mut hymv::fem::kernel::KernelScratch,
    ) {
        self.inner.compute_ke(coords, ke, scratch);
        for v in ke {
            *v *= self.factor;
        }
    }
    fn compute_fe(
        &self,
        coords: &[[f64; 3]],
        fe: &mut [f64],
        scratch: &mut hymv::fem::kernel::KernelScratch,
    ) {
        self.inner.compute_fe(coords, fe, scratch);
    }
    fn ke_flops(&self) -> u64 {
        self.inner.ke_flops()
    }
}

#[test]
fn local_update_equals_full_rebuild() {
    let mesh = unstructured_tet_mesh(3, ElementType::Tet4, 0.1, 8);
    let p = 3;
    let pm = partition_mesh(&mesh, p, PartitionMethod::GreedyGraph);
    let ok = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let base: Arc<dyn ElementKernel> = Arc::new(PoissonKernel::new(ElementType::Tet4));
        let soft = Scaled {
            inner: Arc::clone(&base),
            factor: 0.01,
        };

        // Operator A: setup with base, then update a subset in place.
        let (mut a, _) = HymvOperator::setup(comm, part, &*base);
        // "Crack" every element whose original global id is divisible by 7.
        let cracked: Vec<usize> = (0..part.n_elems())
            .filter(|&le| part.elem_global_ids[le] % 7 == 0)
            .collect();
        a.update_elements(comm, part, &soft, &cracked);

        // Operator B: fresh setup with a kernel that is soft exactly on
        // those elements. (Per-element kernels are emulated by a manual
        // post-pass: recompute and scale.)
        let (mut b, _) = HymvOperator::setup(comm, part, &*base);
        for &le in &cracked {
            for v in b.ke_mut(le) {
                *v *= 0.01;
            }
        }

        let x: Vec<f64> = (0..a.n_owned())
            .map(|i| ((i * 5 % 13) as f64) - 6.0)
            .collect();
        let mut ya = vec![0.0; a.n_owned()];
        let mut yb = vec![0.0; b.n_owned()];
        a.matvec(comm, &x, &mut ya);
        b.matvec(comm, &x, &mut yb);
        ya.iter().zip(&yb).all(|(p, q)| (p - q).abs() < 1e-11)
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn update_cost_scales_with_touched_fraction() {
    let mesh = StructuredHexMesh::unit(8, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let out = Universe::run(1, |comm| {
        let part = &pm.parts[0];
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let (mut op, setup) = HymvOperator::setup(comm, part, &kernel);
        // Update 1% of elements; measure.
        let few: Vec<usize> = (0..part.n_elems()).step_by(100).collect();
        let t_few = op.update_elements(comm, part, &kernel, &few);
        // Update all elements; measure.
        let all: Vec<usize> = (0..part.n_elems()).collect();
        let t_all = op.update_elements(comm, part, &kernel, &all);
        (setup.emat_compute_s, t_few, t_all, few.len(), all.len())
    });
    let (_, t_few, t_all, n_few, n_all) = out[0];
    // Cost ratio tracks the element-count ratio (loosely: timer noise).
    let work_ratio = n_all as f64 / n_few as f64;
    let time_ratio = t_all / t_few.max(1e-12);
    assert!(
        time_ratio > work_ratio / 12.0,
        "updating all ({t_all}s) should cost far more than updating few ({t_few}s)"
    );
}

#[test]
fn solve_after_enrichment_changes_solution() {
    // Physical sanity: softening a region increases displacement there.
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = StructuredHexMesh::new(6, 6, 6, ElementType::Hex8, lo, hi).build();
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
    let out = Universe::run(2, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(ElasticityKernel::new(
            ElementType::Hex8,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));
        let mut sys = FemSystem::build(
            comm,
            part,
            Arc::clone(&kernel) as Arc<dyn ElementKernel>,
            &bar.dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (u0, r0) = sys.solve(comm, PrecondKind::Jacobi, 1e-10, 50_000);
        assert!(r0.converged);
        let max_u0 = u0.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        comm.allreduce_max_f64(max_u0)
    });
    assert!(out[0] > 0.0, "the bar must deform under its own weight");
}

//! Preconditioner behaviour (paper §V-F): Jacobi and block-Jacobi reduce
//! CG iterations, all methods agree under preconditioning, and HYMV's
//! locally-assembled diagonal block matches PETSc's.

use std::sync::Arc;

use hymv::prelude::*;

/// A jittered mesh (uniform grids make the sin-product rhs an exact
/// eigenvector of the discrete Laplacian — CG then converges in one
/// iteration and preconditioners cannot be compared).
fn jittered_poisson_mesh(n: usize) -> GlobalMesh {
    unstructured_hex_mesh(n, n, n, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.2, 17)
}

fn iterations(mesh: &GlobalMesh, p: usize, method: Method, precond: PrecondKind) -> (usize, f64) {
    let et = mesh.elem_type;
    let pm = partition_mesh(mesh, p, PartitionMethod::Rcb);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(PoissonKernel::with_body(et, PoissonProblem::body()));
        let mut opts = BuildOptions::new(method);
        opts.want_block_jacobi = precond == PrecondKind::BlockJacobi;
        let mut sys = FemSystem::build(comm, part, kernel, &PoissonProblem::dirichlet(), opts);
        let (u, res) = sys.solve(comm, precond, 1e-10, 50_000);
        assert!(res.converged, "{method:?}/{precond:?}: {res:?}");
        let err = sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)]);
        (res.iterations, err)
    });
    out[0]
}

#[test]
fn preconditioners_reduce_iterations_in_order() {
    let mesh = jittered_poisson_mesh(7);
    let (none, _) = iterations(&mesh, 2, Method::Hymv, PrecondKind::None);
    let (jacobi, _) = iterations(&mesh, 2, Method::Hymv, PrecondKind::Jacobi);
    let (block, _) = iterations(&mesh, 2, Method::Hymv, PrecondKind::BlockJacobi);
    assert!(jacobi <= none, "Jacobi {jacobi} vs none {none}");
    assert!(block < jacobi, "block-Jacobi {block} vs Jacobi {jacobi}");
}

#[test]
fn iteration_counts_identical_across_methods() {
    // The paper reports one iteration count per configuration because all
    // SPMV methods apply the same operator.
    let mesh = jittered_poisson_mesh(6);
    let (h, eh) = iterations(&mesh, 3, Method::Hymv, PrecondKind::Jacobi);
    let (m, em) = iterations(&mesh, 3, Method::MatFree, PrecondKind::Jacobi);
    let (a, ea) = iterations(&mesh, 3, Method::Assembled, PrecondKind::Jacobi);
    assert_eq!(h, m);
    assert_eq!(h, a);
    assert!((eh - em).abs() < 1e-9 && (eh - ea).abs() < 1e-9);
}

#[test]
fn hymv_block_jacobi_matches_assembled_block_jacobi() {
    // HYMV assembles its diagonal block from stored element matrices
    // (with cross-rank contributions gathered); it must behave exactly
    // like the assembled method's block.
    let mesh = jittered_poisson_mesh(6);
    let (h, _) = iterations(&mesh, 3, Method::Hymv, PrecondKind::BlockJacobi);
    let (a, _) = iterations(&mesh, 3, Method::Assembled, PrecondKind::BlockJacobi);
    assert_eq!(h, a, "block-Jacobi iteration counts must match: {h} vs {a}");
}

#[test]
fn block_jacobi_single_rank_is_ilu0_of_full_matrix() {
    // With p = 1 the "block" is the whole (constrained) matrix; ILU(0) is
    // a strong preconditioner and iterations drop a lot.
    let mesh = jittered_poisson_mesh(6);
    let (jac, _) = iterations(&mesh, 1, Method::Hymv, PrecondKind::Jacobi);
    let (blk, _) = iterations(&mesh, 1, Method::Hymv, PrecondKind::BlockJacobi);
    assert!(
        blk * 2 < jac,
        "ILU(0) {blk} should be far below Jacobi {jac}"
    );
}

#[test]
fn more_ranks_weaken_block_jacobi() {
    // Block-Jacobi discards cross-rank coupling, so iteration counts grow
    // with p (the effect behind the paper's Fig 11b iteration columns).
    let mesh = jittered_poisson_mesh(7);
    let (p1, _) = iterations(&mesh, 1, Method::Hymv, PrecondKind::BlockJacobi);
    let (p4, _) = iterations(&mesh, 4, Method::Hymv, PrecondKind::BlockJacobi);
    assert!(
        p4 >= p1,
        "p=4 iterations {p4} must be >= p=1 iterations {p1}"
    );
}

#[test]
fn elasticity_solve_with_block_jacobi() {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = unstructured_hex_mesh(5, 5, 5, ElementType::Hex8, lo, hi, 0.15, 23);
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Rcb);
    let out = Universe::run(2, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(ElasticityKernel::new(
            ElementType::Hex8,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));
        let mut opts = BuildOptions::new(Method::Hymv);
        opts.want_block_jacobi = true;
        let mut sys = FemSystem::build(comm, part, kernel, &bar.dirichlet(), opts);
        let (_, rj) = sys.solve(comm, PrecondKind::Jacobi, 1e-9, 50_000);
        let (u, rb) = sys.solve(comm, PrecondKind::BlockJacobi, 1e-9, 50_000);
        assert!(rj.converged && rb.converged);
        let err = sys.inf_error(comm, &u, |x| bar.exact(x).to_vec());
        (rj.iterations, rb.iterations, err)
    });
    let (j, b, err) = out[0];
    assert!(b < j, "block-Jacobi {b} should beat Jacobi {j}");
    assert!(err < 5e-3, "solution error {err}");
}

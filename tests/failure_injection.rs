//! Failure injection: malformed inputs must fail loudly and precisely, not
//! corrupt results. These tests pin the error behaviour documented on the
//! public API.

use std::sync::Arc;

use hymv::mesh::partition::partition_mesh_with;
use hymv::prelude::*;

#[test]
fn mesh_validation_catches_corruption() {
    let mut mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    assert!(mesh.validate().is_ok());
    // Out-of-range node reference.
    let saved = mesh.connectivity[0];
    mesh.connectivity[0] = 10_000;
    assert!(mesh.validate().is_err());
    mesh.connectivity[0] = saved;
    // Duplicate node within an element.
    mesh.connectivity[1] = mesh.connectivity[0];
    assert!(mesh.validate().is_err());
}

#[test]
fn partition_validation_catches_bad_ranges() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
    let mut part = pm.parts[0].clone();
    part.node_range = (10, 5);
    assert!(part.validate().is_err());
    let mut part = pm.parts[0].clone();
    part.node_range = (0, 1_000_000);
    assert!(part.validate().is_err());
}

#[test]
#[should_panic(expected = "part id out of range")]
fn partition_mesh_with_rejects_bad_assignment() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let bad = vec![9usize; mesh.n_elems()];
    let _ = partition_mesh_with(&mesh, &bad, 2);
}

#[test]
#[should_panic(expected = "one part id per element")]
fn partition_mesh_with_rejects_wrong_length() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let _ = partition_mesh_with(&mesh, &[0usize; 3], 1);
}

#[test]
#[should_panic(expected = "degenerate or inverted")]
fn inverted_element_detected_during_setup() {
    let mut mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    // Collapse an element: all nodes at the same point.
    let p0 = mesh.coords[mesh.connectivity[0] as usize];
    for i in 0..8 {
        let n = mesh.connectivity[i] as usize;
        mesh.coords[n] = p0;
    }
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8));
        let _ = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &DirichletSpec::none(1),
            BuildOptions::new(Method::Hymv),
        );
    });
}

#[test]
#[should_panic(expected = "dof count must match")]
fn mismatched_dirichlet_spec_rejected() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8)); // ndof = 1
        let spec = DirichletSpec::none(3); // ndof = 3 — wrong
        let _ = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &spec,
            BuildOptions::new(Method::Hymv),
        );
    });
}

#[test]
#[should_panic(expected = "positive-definite")]
fn cg_rejects_indefinite_operator() {
    // CG on a negative-definite operator must fail loudly, not loop.
    struct Negative;
    impl LinOp for Negative {
        fn n_owned(&self) -> usize {
            4
        }
        fn apply(&mut self, _c: &mut hymv::comm::Comm, x: &[f64], y: &mut [f64]) {
            for (a, b) in y.iter_mut().zip(x) {
                *a = -b;
            }
        }
    }
    let _ = Universe::run(1, |comm| {
        let mut op = Negative;
        let mut x = vec![0.0; 4];
        let _ = cg(comm, &mut op, &mut Identity, &[1.0; 4], &mut x, 1e-8, 100);
    });
}

#[test]
fn cg_reports_non_convergence_honestly() {
    let mesh = unstructured_hex_mesh(5, 5, 5, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.2, 1);
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let out = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::with_body(
            ElementType::Hex8,
            PoissonProblem::body(),
        ));
        let mut sys = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &PoissonProblem::dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (_, res) = sys.solve(comm, PrecondKind::None, 1e-30, 2);
        res
    });
    assert!(!out[0].converged);
    assert_eq!(out[0].iterations, 2);
    assert!(out[0].rel_residual > 1e-30);
}

#[test]
#[should_panic(expected = "element 999999 out of range")]
fn adaptive_update_bounds_checked() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let (mut op, _) = hymv::core::HymvOperator::setup(comm, &pm.parts[0], &kernel);
        op.update_elements(comm, &pm.parts[0], &kernel, &[999_999]);
    });
}

#[test]
#[should_panic(expected = "more partitions")]
fn too_many_ranks_rejected() {
    let mesh = StructuredHexMesh::unit(1, ElementType::Hex8).build();
    let _ = partition_mesh(&mesh, 50, PartitionMethod::Rcb);
}

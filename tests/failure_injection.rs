//! Failure injection: malformed inputs must fail loudly and precisely, not
//! corrupt results. These tests pin the error behaviour documented on the
//! public API.

use std::sync::Arc;

use hymv::mesh::partition::partition_mesh_with;
use hymv::prelude::*;

#[test]
fn mesh_validation_catches_corruption() {
    let mut mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    assert!(mesh.validate().is_ok());
    // Out-of-range node reference.
    let saved = mesh.connectivity[0];
    mesh.connectivity[0] = 10_000;
    assert!(mesh.validate().is_err());
    mesh.connectivity[0] = saved;
    // Duplicate node within an element.
    mesh.connectivity[1] = mesh.connectivity[0];
    assert!(mesh.validate().is_err());
}

#[test]
fn partition_validation_catches_bad_ranges() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
    let mut part = pm.parts[0].clone();
    part.node_range = (10, 5);
    assert!(part.validate().is_err());
    let mut part = pm.parts[0].clone();
    part.node_range = (0, 1_000_000);
    assert!(part.validate().is_err());
}

#[test]
#[should_panic(expected = "part id out of range")]
fn partition_mesh_with_rejects_bad_assignment() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let bad = vec![9usize; mesh.n_elems()];
    let _ = partition_mesh_with(&mesh, &bad, 2);
}

#[test]
#[should_panic(expected = "one part id per element")]
fn partition_mesh_with_rejects_wrong_length() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let _ = partition_mesh_with(&mesh, &[0usize; 3], 1);
}

#[test]
#[should_panic(expected = "degenerate or inverted")]
fn inverted_element_detected_during_setup() {
    let mut mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    // Collapse an element: all nodes at the same point.
    let p0 = mesh.coords[mesh.connectivity[0] as usize];
    for i in 0..8 {
        let n = mesh.connectivity[i] as usize;
        mesh.coords[n] = p0;
    }
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8));
        let _ = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &DirichletSpec::none(1),
            BuildOptions::new(Method::Hymv),
        );
    });
}

#[test]
#[should_panic(expected = "dof count must match")]
fn mismatched_dirichlet_spec_rejected() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8)); // ndof = 1
        let spec = DirichletSpec::none(3); // ndof = 3 — wrong
        let _ = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &spec,
            BuildOptions::new(Method::Hymv),
        );
    });
}

#[test]
#[should_panic(expected = "positive-definite")]
fn cg_rejects_indefinite_operator() {
    // CG on a negative-definite operator must fail loudly, not loop.
    struct Negative;
    impl LinOp for Negative {
        fn n_owned(&self) -> usize {
            4
        }
        fn apply(&mut self, _c: &mut hymv::comm::Comm, x: &[f64], y: &mut [f64]) {
            for (a, b) in y.iter_mut().zip(x) {
                *a = -b;
            }
        }
    }
    let _ = Universe::run(1, |comm| {
        let mut op = Negative;
        let mut x = vec![0.0; 4];
        let _ = cg(comm, &mut op, &mut Identity, &[1.0; 4], &mut x, 1e-8, 100);
    });
}

#[test]
fn cg_reports_non_convergence_honestly() {
    let mesh = unstructured_hex_mesh(5, 5, 5, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.2, 1);
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let out = Universe::run(1, |comm| {
        let kernel = Arc::new(PoissonKernel::with_body(
            ElementType::Hex8,
            PoissonProblem::body(),
        ));
        let mut sys = FemSystem::build(
            comm,
            &pm.parts[0],
            kernel,
            &PoissonProblem::dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (_, res) = sys.solve(comm, PrecondKind::None, 1e-30, 2);
        res
    });
    assert!(!out[0].converged);
    assert_eq!(out[0].iterations, 2);
    assert!(out[0].rel_residual > 1e-30);
}

#[test]
#[should_panic(expected = "element 999999 out of range")]
fn adaptive_update_bounds_checked() {
    let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let _ = Universe::run(1, |comm| {
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let (mut op, _) = hymv::core::HymvOperator::setup(comm, &pm.parts[0], &kernel);
        op.update_elements(comm, &pm.parts[0], &kernel, &[999_999]);
    });
}

#[test]
#[should_panic(expected = "more partitions")]
fn too_many_ranks_rejected() {
    let mesh = StructuredHexMesh::unit(1, ElementType::Hex8).build();
    let _ = partition_mesh(&mesh, 50, PartitionMethod::Rcb);
}

/// With the fault injector disabled (the default), the envelope wire
/// format is pure framing: the full HYMV SPMV stays bitwise deterministic
/// across 8 schedule-perturbation seeds (the `hymv-chaos` baseline
/// requirement — `certify_spmv_determinism` panics on any divergence).
#[test]
fn envelope_transport_is_deterministic_across_eight_seeds() {
    let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 3, PartitionMethod::GreedyGraph);
    let seeds: Vec<u64> = (1..=8).collect();
    let _ = hymv::check::certify_spmv_determinism(&pm, ParallelMode::Serial, &seeds);
}

/// Bench guard: the sequence-numbered/checksummed envelope on the
/// fault-free SPMV path must cost < 5% in max-over-ranks virtual time
/// against the raw pre-`hymv-chaos` wire format (`set_raw_exchange`).
/// Virtual time folds the modeled α–β cost of the 32-byte header and the
/// measured CPU cost of pack/checksum/unpack — both tiny next to the
/// elemental kernels.
#[test]
fn envelope_overhead_under_five_percent() {
    // 12³ elements: compute volume grows cubically against the quadratic
    // ghost surface, as in any production-size SPMV; on the tiny meshes
    // the unit tests favor, framing cost is inflated by the degenerate
    // surface-to-volume ratio.
    let mesh = StructuredHexMesh::unit(12, ElementType::Hex8).build();
    let p = 2;
    let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
    let rounds = 20;
    let ratios = Universe::run(p, |comm| {
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let (mut op, _) = hymv::core::HymvOperator::setup(comm, &pm.parts[comm.rank()], &kernel);
        let n = op.n_owned();
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.0).collect();
        let mut y = vec![0.0; n];
        let mut time = |op: &mut hymv::core::HymvOperator, comm: &mut hymv::comm::Comm| {
            // Warm caches and drain straggling traffic before the window.
            op.matvec(comm, &x, &mut y);
            comm.barrier();
            let t0 = comm.vt();
            for _ in 0..rounds {
                op.matvec(comm, &x, &mut y);
            }
            comm.barrier();
            comm.vt() - t0
        };
        // Interleaved repetitions, min per transport: virtual time folds
        // measured per-thread CPU, and concurrent test binaries add
        // cache-contention noise that stretches the envelope's larger
        // measured windows more in absolute terms — the minimum over
        // enough interleaved reps is the noise-robust estimator of the
        // true cost.
        let (mut env_min, mut raw_min) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..6 {
            op.set_raw_exchange(false);
            let env_s = time(&mut op, comm);
            op.set_raw_exchange(true);
            let raw_s = time(&mut op, comm);
            // Max-over-ranks: the solver's critical path.
            env_min = env_min.min(comm.allreduce_max_f64(env_s));
            raw_min = raw_min.min(comm.allreduce_max_f64(raw_s));
        }
        env_min / raw_min
    });
    let ratio = ratios[0];
    assert!(
        ratio < 1.05,
        "envelope transport costs {:.1}% over raw (budget 5%)",
        (ratio - 1.0) * 100.0
    );
}

//! Property-based end-to-end tests: over randomly generated meshes,
//! partitionings, and operators, the core invariants hold.

use std::sync::Arc;

use proptest::prelude::*;

use hymv::prelude::*;

fn any_partitioner() -> impl Strategy<Value = PartitionMethod> {
    prop_oneof![
        Just(PartitionMethod::Slabs),
        Just(PartitionMethod::Rcb),
        Just(PartitionMethod::GreedyGraph),
    ]
}

proptest! {
    // Universe-spawning cases are expensive; a handful of random cases per
    // property is plenty on top of the deterministic suites.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// HYMV == matrix-free == assembled on random jittered meshes with
    /// random partitionings — the paper's central claim of exactness.
    #[test]
    fn methods_agree_on_random_meshes(
        n in 2usize..5,
        p in 1usize..5,
        jitter in 0.0f64..0.25,
        seed in 0u64..1000,
        method in any_partitioner(),
    ) {
        let mesh = unstructured_hex_mesh(n, n, n, ElementType::Hex8, [0.0; 3], [1.0; 3], jitter, seed);
        let p = p.min(mesh.n_elems());
        let pm = partition_mesh(&mesh, p, method);
        let ys: Vec<Vec<Vec<f64>>> = [Method::Hymv, Method::MatFree, Method::Assembled]
            .iter()
            .map(|&m| {
                Universe::run(p, |comm| {
                    let part = &pm.parts[comm.rank()];
                    let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8));
                    let mut sys = FemSystem::build(
                        comm, part, kernel, &DirichletSpec::none(1), BuildOptions::new(m),
                    );
                    let lo = part.node_range.0 as usize;
                    let x: Vec<f64> =
                        (0..sys.n_owned()).map(|i| (((lo + i) * 7 % 11) as f64) - 5.0).collect();
                    let mut y = vec![0.0; sys.n_owned()];
                    sys.op.apply(comm, &x, &mut y);
                    y
                })
            })
            .collect();
        for m in 1..3 {
            for (a, b) in ys[0].iter().flatten().zip(ys[m].iter().flatten()) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// The operator is symmetric: xᵀ(Ky) == yᵀ(Kx) for random vectors —
    /// a global property that exercises ghost scatter AND gather.
    #[test]
    fn operator_is_symmetric(
        n in 2usize..5,
        p in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mesh = unstructured_tet_mesh(n, ElementType::Tet4, 0.15, seed);
        let pm = partition_mesh(&mesh, p, PartitionMethod::GreedyGraph);
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(ElasticityKernel::new(
                ElementType::Tet4, 10.0, 0.2, [0.0; 3],
            ));
            let mut sys = FemSystem::build(
                comm, part, kernel, &DirichletSpec::none(3), BuildOptions::new(Method::Hymv),
            );
            let lo = part.node_range.0 as usize;
            let nx = sys.n_owned();
            let x: Vec<f64> = (0..nx).map(|i| (((lo + i) * 13 % 29) as f64) * 0.1).collect();
            let y: Vec<f64> = (0..nx).map(|i| (((lo + i) * 17 % 31) as f64) * 0.1 - 1.0).collect();
            let mut kx = vec![0.0; nx];
            let mut ky = vec![0.0; nx];
            sys.op.apply(comm, &x, &mut kx);
            sys.op.apply(comm, &y, &mut ky);
            let xky: f64 = x.iter().zip(&ky).map(|(a, b)| a * b).sum();
            let ykx: f64 = y.iter().zip(&kx).map(|(a, b)| a * b).sum();
            (comm.allreduce_sum_f64(xky), comm.allreduce_sum_f64(ykx))
        });
        let (a, b) = out[0];
        prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// Constant fields are in the raw operator's null space (partition of
    /// unity + row sums of the Laplacian Ke), independent of partitioning.
    #[test]
    fn laplacian_annihilates_constants(
        n in 2usize..5,
        p in 1usize..5,
        method in any_partitioner(),
        seed in 0u64..1000,
    ) {
        let mesh = unstructured_hex_mesh(n, n, n, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.15, seed);
        let p = p.min(mesh.n_elems());
        let pm = partition_mesh(&mesh, p, method);
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8));
            let mut sys = FemSystem::build(
                comm, part, kernel, &DirichletSpec::none(1), BuildOptions::new(Method::Hymv),
            );
            let x = vec![3.25; sys.n_owned()];
            let mut y = vec![0.0; sys.n_owned()];
            sys.op.apply(comm, &x, &mut y);
            y.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
        });
        for m in out {
            prop_assert!(m < 1e-10, "residual {m}");
        }
    }

    /// CG solves random SPD FEM systems to the requested tolerance.
    #[test]
    fn cg_converges_on_random_systems(
        n in 3usize..6,
        p in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mesh = unstructured_hex_mesh(n, n, n, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.2, seed);
        let pm = partition_mesh(&mesh, p, PartitionMethod::Rcb);
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8, PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm, part, kernel, &PoissonProblem::dirichlet(), BuildOptions::new(Method::Hymv),
            );
            let (_, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-9, 20_000);
            res
        });
        prop_assert!(out[0].converged, "{:?}", out[0]);
        prop_assert!(out[0].rel_residual <= 1e-9);
    }
}

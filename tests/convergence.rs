//! End-to-end verification against the paper's analytic solutions (§V-B),
//! for all methods and several element types.

use std::sync::Arc;

use hymv::prelude::*;

fn solve_poisson(mesh: GlobalMesh, p: usize, method: Method, pmeth: PartitionMethod) -> f64 {
    let et = mesh.elem_type;
    let pm = partition_mesh(&mesh, p, pmeth);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(PoissonKernel::with_body(et, PoissonProblem::body()));
        let mut sys = FemSystem::build(
            comm,
            part,
            kernel,
            &PoissonProblem::dirichlet(),
            BuildOptions::new(method),
        );
        let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-11, 20_000);
        assert!(res.converged, "{res:?}");
        sys.inf_error(comm, &u, |x| vec![PoissonProblem::exact(x)])
    });
    out[0]
}

#[test]
fn poisson_hex8_second_order_convergence() {
    // 6³ is pre-asymptotic for the sin-product solution; the paper's own
    // sequence starts at 10³.
    let e1 = solve_poisson(
        StructuredHexMesh::unit(10, ElementType::Hex8).build(),
        2,
        Method::Hymv,
        PartitionMethod::Slabs,
    );
    let e2 = solve_poisson(
        StructuredHexMesh::unit(20, ElementType::Hex8).build(),
        2,
        Method::Hymv,
        PartitionMethod::Slabs,
    );
    let rate = (e1 / e2).log2();
    assert!(
        (1.6..2.4).contains(&rate),
        "expected second-order convergence, got rate {rate} ({e1} → {e2})"
    );
}

#[test]
fn poisson_hex27_superior_accuracy() {
    // Quadratic elements at the same node count beat linear ones.
    let lin = solve_poisson(
        StructuredHexMesh::unit(8, ElementType::Hex8).build(),
        2,
        Method::Hymv,
        PartitionMethod::Slabs,
    );
    let quad = solve_poisson(
        StructuredHexMesh::unit(4, ElementType::Hex27).build(),
        2,
        Method::Hymv,
        PartitionMethod::Slabs,
    );
    assert!(quad < lin / 3.0, "Hex27 {quad} should beat Hex8 {lin}");
}

#[test]
fn poisson_unstructured_tet10_converges() {
    let err = solve_poisson(
        unstructured_tet_mesh(6, ElementType::Tet10, 0.12, 3),
        3,
        Method::Hymv,
        PartitionMethod::GreedyGraph,
    );
    assert!(err < 2e-3, "Tet10 error {err}");
}

#[test]
fn poisson_matfree_and_assembled_converge_identically() {
    let mesh = StructuredHexMesh::unit(8, ElementType::Hex8).build();
    let a = solve_poisson(mesh.clone(), 2, Method::MatFree, PartitionMethod::Rcb);
    let b = solve_poisson(mesh, 2, Method::Assembled, PartitionMethod::Rcb);
    assert!((a - b).abs() < 1e-8, "{a} vs {b}");
}

#[test]
fn elastic_bar_hex20_exact_to_solver_precision() {
    // The Timoshenko field is quadratic; Hex20 reproduces it exactly
    // (paper: err < 1e-8 on every mesh).
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = StructuredHexMesh::new(4, 4, 4, ElementType::Hex20, lo, hi).build();
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
    let out = Universe::run(2, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(ElasticityKernel::new(
            ElementType::Hex20,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));
        let mut sys = FemSystem::build(
            comm,
            part,
            kernel,
            &bar.dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-13, 50_000);
        assert!(res.converged);
        sys.inf_error(comm, &u, |x| bar.exact(x).to_vec())
    });
    assert!(out[0] < 1e-8, "error {}", out[0]);
}

#[test]
fn elastic_bar_hex8_converges() {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let errs: Vec<f64> = [4usize, 8]
        .iter()
        .map(|&n| {
            let mesh = StructuredHexMesh::new(n, n, n, ElementType::Hex8, lo, hi).build();
            let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
            let out = Universe::run(2, |comm| {
                let part = &pm.parts[comm.rank()];
                let kernel = Arc::new(ElasticityKernel::new(
                    ElementType::Hex8,
                    bar.young,
                    bar.poisson,
                    bar.body_force(),
                ));
                let mut sys = FemSystem::build(
                    comm,
                    part,
                    kernel,
                    &bar.dirichlet(),
                    BuildOptions::new(Method::Hymv),
                );
                let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-12, 50_000);
                assert!(res.converged);
                sys.inf_error(comm, &u, |x| bar.exact(x).to_vec())
            });
            out[0]
        })
        .collect();
    assert!(errs[1] < errs[0] / 2.0, "no convergence: {errs:?}");
}

#[test]
fn gpu_solve_matches_cpu_solve() {
    use hymv_bench::{poisson_case, run_gpu_solve, run_solve, GpuConfig, GpuMethod};
    let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
    let case = poisson_case("gpu-vs-cpu", mesh);
    let exact: Arc<dyn Fn([f64; 3]) -> Vec<f64> + Send + Sync> =
        Arc::new(|x| vec![PoissonProblem::exact(x)]);
    let cpu = run_solve(
        &case,
        2,
        Method::Hymv,
        PrecondKind::Jacobi,
        1e-10,
        PartitionMethod::Slabs,
        Arc::clone(&exact),
    );
    let gpu = run_gpu_solve(
        &case,
        2,
        GpuMethod::Hymv,
        GpuConfig::default(),
        1e-10,
        PartitionMethod::Slabs,
        exact,
    );
    assert!(cpu.converged && gpu.converged);
    assert!((cpu.err_inf - gpu.err_inf).abs() < 1e-9);
    assert_eq!(cpu.iterations, gpu.iterations);
}

//! The paper-faithful bar loading (§V-B): a uniform traction
//! `t_z = ρ g L_z` on the top face balancing the bar's weight, with only
//! three pinned points for kinematics — not the Dirichlet substitution
//! used elsewhere. For quadratic elements the Timoshenko field lies in
//! the FEM space and both the stiffness *and* the consistent surface load
//! are integrated exactly, so the discrete solution must match the exact
//! one to solver precision. This is the strongest end-to-end validation
//! of the traction machinery.

use std::sync::Arc;

use hymv::prelude::*;

fn solve_traction_bar(et: ElementType, n: usize, p: usize, method: Method) -> (f64, bool) {
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = StructuredHexMesh::new(n, n, n, et, lo, hi).build();
    let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = Arc::new(ElasticityKernel::new(
            et,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));
        let mut opts = BuildOptions::new(method);
        opts.traction = Some(bar.traction());
        let mut sys = FemSystem::build(comm, part, kernel, &bar.pin_points(), opts);
        let (u, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-13, 100_000);
        let err = sys.inf_error(comm, &u, |x| bar.exact(x).to_vec());
        (err, res.converged)
    });
    out[0]
}

#[test]
fn pin_points_constrain_exactly_three_nodes() {
    // The 3-2-1-style pinning must find exactly 3 nodes (9 dofs) on even
    // meshes — enough to kill the 6 rigid modes, nothing more.
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let mesh = StructuredHexMesh::new(4, 4, 4, ElementType::Hex8, lo, hi).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let dofs = hymv::fem::dirichlet::constrained_dofs(&pm.parts[0], &bar.pin_points());
    assert_eq!(dofs.len(), 9, "three pinned nodes x three dofs");
}

#[test]
fn hex20_traction_bar_is_exact() {
    let (err, converged) = solve_traction_bar(ElementType::Hex20, 4, 2, Method::Hymv);
    assert!(converged);
    assert!(
        err < 1e-7,
        "quadratic elements must capture the field exactly: err {err}"
    );
}

#[test]
fn hex27_traction_bar_is_exact() {
    let (err, converged) = solve_traction_bar(ElementType::Hex27, 3, 2, Method::Hymv);
    assert!(converged);
    assert!(err < 1e-7, "err {err}");
}

#[test]
fn hex8_traction_bar_converges() {
    let (e1, c1) = solve_traction_bar(ElementType::Hex8, 4, 2, Method::Hymv);
    let (e2, c2) = solve_traction_bar(ElementType::Hex8, 8, 2, Method::Hymv);
    assert!(c1 && c2);
    assert!(
        e2 < e1 / 1.5,
        "refinement must reduce the error: {e1} → {e2}"
    );
}

#[test]
fn traction_variant_matches_dirichlet_variant() {
    // Two different, consistent formulations of the same physics must
    // agree in the interior (both converge to the Timoshenko field).
    let bar = BarProblem::default_unit();
    let (lo, hi) = bar.bbox();
    let et = ElementType::Hex20;
    let mesh = StructuredHexMesh::new(4, 4, 4, et, lo, hi).build();
    let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
    let out = Universe::run(2, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel: Arc<dyn ElementKernel> = Arc::new(ElasticityKernel::new(
            et,
            bar.young,
            bar.poisson,
            bar.body_force(),
        ));

        let mut opts = BuildOptions::new(Method::Hymv);
        opts.traction = Some(bar.traction());
        let mut sys_t = FemSystem::build(comm, part, Arc::clone(&kernel), &bar.pin_points(), opts);
        let (ut, rt) = sys_t.solve(comm, PrecondKind::Jacobi, 1e-13, 100_000);

        let mut sys_d = FemSystem::build(
            comm,
            part,
            kernel,
            &bar.dirichlet(),
            BuildOptions::new(Method::Hymv),
        );
        let (ud, rd) = sys_d.solve(comm, PrecondKind::Jacobi, 1e-13, 100_000);

        assert!(rt.converged && rd.converged);
        let max_diff = ut
            .iter()
            .zip(&ud)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        comm.allreduce_max_f64(max_diff)
    });
    assert!(out[0] < 1e-7, "formulations disagree by {}", out[0]);
}

#[test]
fn traction_and_methods_agree() {
    // The traction-loaded system solves identically under all three SPMV
    // methods (rhs assembly is shared; operators are equivalent).
    let mut errs = Vec::new();
    for method in [Method::Hymv, Method::MatFree, Method::Assembled] {
        let (err, converged) = solve_traction_bar(ElementType::Hex8, 4, 2, method);
        assert!(converged, "{method:?}");
        errs.push(err);
    }
    for e in &errs[1..] {
        assert!((e - errs[0]).abs() < 1e-9, "{errs:?}");
    }
}

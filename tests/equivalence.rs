//! The golden equivalence property, end-to-end: for every element type,
//! operator, partitioner, and rank count, the three SPMV methods (and the
//! GPU backend) apply the *same* global operator.

use std::sync::Arc;

use hymv::prelude::*;

/// Apply each method's operator to a deterministic vector and compare.
fn check_equivalence(
    mesh: &GlobalMesh,
    kernel_factory: &(dyn Fn() -> Arc<dyn ElementKernel> + Sync),
    p: usize,
    pm_method: PartitionMethod,
) {
    let pm = partition_mesh(mesh, p, pm_method);
    let outs: Vec<Vec<Vec<f64>>> = [Method::Hymv, Method::MatFree, Method::Assembled]
        .iter()
        .map(|&method| {
            Universe::run(p, |comm| {
                let part = &pm.parts[comm.rank()];
                let ndof = kernel_factory().ndof_per_node();
                let mut sys = FemSystem::build(
                    comm,
                    part,
                    kernel_factory(),
                    &DirichletSpec::none(ndof),
                    BuildOptions::new(method),
                );
                let n = sys.n_owned();
                let lo = part.node_range.0 as usize * ndof;
                let x: Vec<f64> = (0..n)
                    .map(|i| (((lo + i) * 31 % 101) as f64) * 0.02 - 1.0)
                    .collect();
                let mut y = vec![0.0; n];
                sys.op.apply(comm, &x, &mut y);
                y
            })
        })
        .collect();
    for m in 1..outs.len() {
        for (r, (a, b)) in outs[0].iter().zip(&outs[m]).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(
                    (x - y).abs() < 1e-8 * (1.0 + x.abs()),
                    "method {m} rank {r} dof {i}: {x} vs {y} (p={p}, {pm_method:?})"
                );
            }
        }
    }
}

#[test]
fn poisson_hex8_all_partitioners() {
    let mesh = StructuredHexMesh::unit(5, ElementType::Hex8).build();
    for method in [
        PartitionMethod::Slabs,
        PartitionMethod::Rcb,
        PartitionMethod::GreedyGraph,
    ] {
        check_equivalence(
            &mesh,
            &|| Arc::new(PoissonKernel::new(ElementType::Hex8)),
            3,
            method,
        );
    }
}

#[test]
fn poisson_hex20_and_hex27() {
    for et in [ElementType::Hex20, ElementType::Hex27] {
        let mesh = StructuredHexMesh::unit(3, et).build();
        check_equivalence(
            &mesh,
            &move || Arc::new(PoissonKernel::new(et)),
            2,
            PartitionMethod::Rcb,
        );
    }
}

#[test]
fn poisson_unstructured_tets() {
    for et in [ElementType::Tet4, ElementType::Tet10] {
        let mesh = unstructured_tet_mesh(3, et, 0.15, 99);
        check_equivalence(
            &mesh,
            &move || Arc::new(PoissonKernel::new(et)),
            4,
            PartitionMethod::GreedyGraph,
        );
    }
}

#[test]
fn elasticity_structured_and_jittered() {
    let cases = vec![
        StructuredHexMesh::unit(3, ElementType::Hex8).build(),
        unstructured_hex_mesh(3, 3, 3, ElementType::Hex20, [0.0; 3], [1.0; 3], 0.15, 5),
    ];
    for mesh in cases {
        let et = mesh.elem_type;
        check_equivalence(
            &mesh,
            &move || Arc::new(ElasticityKernel::new(et, 200.0, 0.3, [0.0, 0.0, -9.8])),
            3,
            PartitionMethod::GreedyGraph,
        );
    }
}

#[test]
fn gpu_backends_match_cpu() {
    let mesh = unstructured_hex_mesh(3, 3, 3, ElementType::Hex8, [0.0; 3], [1.0; 3], 0.1, 7);
    let p = 2;
    let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
    let out = Universe::run(p, |comm| {
        let part = &pm.parts[comm.rank()];
        let kernel = ElasticityKernel::new(ElementType::Hex8, 100.0, 0.25, [0.0, 0.0, -1.0]);
        let (mut cpu, _) = hymv::core::HymvOperator::setup(comm, part, &kernel);
        let x: Vec<f64> = (0..cpu.n_owned())
            .map(|i| (i as f64 * 0.13).sin())
            .collect();
        let mut y_ref = vec![0.0; cpu.n_owned()];
        cpu.matvec(comm, &x, &mut y_ref);

        let mut all_match = true;
        for scheme in [
            GpuScheme::Blocking,
            GpuScheme::OverlapCpu,
            GpuScheme::OverlapGpu,
        ] {
            let (mut gpu, _) =
                HymvGpuOperator::setup(comm, part, &kernel, GpuModel::default(), 4, scheme, 2);
            let mut y = vec![0.0; gpu.n_owned()];
            gpu.matvec(comm, &x, &mut y);
            all_match &= y.iter().zip(&y_ref).all(|(a, b)| (a - b).abs() < 1e-11);
        }
        let (mut pg, _) = PetscGpuOperator::setup(comm, part, &kernel, GpuModel::default());
        let mut y = vec![0.0; pg.n_owned()];
        pg.apply(comm, &x, &mut y);
        all_match &= y.iter().zip(&y_ref).all(|(a, b)| (a - b).abs() < 1e-9);
        all_match
    });
    assert!(out.iter().all(|&b| b));
}

#[test]
fn solution_independent_of_rank_count() {
    // The discrete solution (gathered globally) must not depend on p.
    let mesh = StructuredHexMesh::unit(5, ElementType::Hex8).build();
    let mut reference: Option<Vec<f64>> = None;
    for p in [1usize, 2, 5] {
        let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8,
                PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm,
                part,
                kernel,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            let (x, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-12, 10_000);
            assert!(res.converged);
            x
        });
        // With slab partitioning the renumbering is the identity, so
        // concatenation by rank reconstructs the global vector.
        let flat: Vec<f64> = out.into_iter().flatten().collect();
        match &reference {
            None => reference = Some(flat),
            Some(r) => {
                for (a, b) in r.iter().zip(&flat) {
                    assert!((a - b).abs() < 1e-8, "p={p}: {a} vs {b}");
                }
            }
        }
    }
}

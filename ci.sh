#!/usr/bin/env bash
# The repo's CI gate, runnable locally: formatting, lints (warnings are
# errors), the full test suite, and the hymv-check analysis passes.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== hymv-check analysis passes"
cargo run -q -p hymv-check --bin hymv-check -- --n 4 --p 4 --method rcb --seeds 8

echo "== hymv-check batched-path determinism (B=8)"
cargo run -q -p hymv-check --bin hymv-check -- --n 4 --p 4 --method rcb --seeds 8 --batch 8

echo "== hymv-check multivector SpMM determinism (B=8, nvec=8)"
cargo run -q -p hymv-check --bin hymv-check -- --n 4 --p 3 --method greedy --seeds 8 --batch 8 --nvec 8

echo "== hymv-verify static passes (model check, alias proof, lint)"
cargo run -q -p hymv-verify --bin hymv-verify -- --n 4 --p 1,2,4,8
cargo run -q -p hymv-verify --bin hymv-verify -- --n 4 --p 1,2,4,8 --method greedy --skip-lint

echo "== hymv-verify parameterized exchange proof at scale (p=64,512,1024; <30s budget)"
# Build outside the timed window: the budget asserts proof time, not
# compile time.
cargo build -q --release -p hymv-verify
param_start=$SECONDS
cargo run -q --release -p hymv-verify --bin hymv-verify -- \
    --n 16 --p 64,512,1024 --method rcb --skip-lint
param_dur=$((SECONDS - param_start))
test "$param_dur" -lt 30 || {
    echo "parameterized proof sweep took ${param_dur}s (budget 30s)"
    exit 1
}

echo "== hymv-verify effects (interprocedural phase effects, kernel bounds proofs, slab contract, collective order)"
cargo run -q -p hymv-verify --bin hymv-verify -- effects

echo "== hymv-verify collective-order pass (standalone)"
cargo run -q -p hymv-verify --bin hymv-verify -- collectives

echo "== sanitize feature: la/core test suites with checked SIMD lane access"
cargo test -q -p hymv-la --features sanitize
cargo test -q -p hymv-core --features hymv-la/sanitize

echo "== hymv-chaos smoke sweep (recoverable faults heal bitwise; crash aborts typed)"
cargo run -q --release -p hymv-check --bin hymv-chaos -- \
    --n 3 --p 2 --seeds 2 --scenarios drop,corrupt,crash

echo "== hymv-lflr crash-recovery gate (armed crashes heal bitwise at p=8 and p=32; <60s budget)"
lflr_start=$SECONDS
cargo run -q --release -p hymv-check --bin hymv-lflr -- --n 3 --p 8 --seeds 2
cargo run -q --release -p hymv-check --bin hymv-lflr -- \
    --n 4 --p 32 --seeds 1 --windows allreduce,block-refresh --drivers cg,service
lflr_dur=$((SECONDS - lflr_start))
test "$lflr_dur" -lt 60 || {
    echo "crash-recovery gate took ${lflr_dur}s (budget 60s)"
    exit 1
}

echo "== emv_batch bench smoke"
HYMV_BENCH_SMOKE=1 cargo bench -q -p hymv-bench --bench emv_batch
cargo run -q --release -p hymv-bench --bin bench_emv_batch -- --smoke

echo "== emv_multivec (SpMM + solve-service) bench smoke"
cargo run -q --release -p hymv-bench --bin bench_emv_multivec -- --smoke

echo "== hymv-prof traced-solve smoke (12^3 Poisson, 4 ranks, 8 seeds, live snapshot file)"
HYMV_OBS_FILE=target/experiments/prof/live.prom \
    cargo run -q --release -p hymv-prof -- --n 12 --p 4 --seeds 8 --out target/experiments/prof
for f in trace.json metrics.prom summary.json; do
    test -s "target/experiments/prof/$f" || { echo "missing artifact $f"; exit 1; }
done
# The analysis fields must be present with finite numeric values (the
# binary itself exits nonzero on non-finite analysis or a determinism
# violation; these greps guard the artifact schema).
grep -qE '"overlap_efficiency": [0-9.]+' target/experiments/prof/summary.json
grep -qE '"max_phase_imbalance": [0-9.]+' target/experiments/prof/summary.json
grep -q '^hymv_vt_seconds' target/experiments/prof/metrics.prom
grep -q '^# HELP hymv_' target/experiments/prof/metrics.prom
# The live snapshot-file transport (HYMV_OBS_FILE, the no-network CI
# fallback of the HTTP endpoint) must have published the registry.
test -s target/experiments/prof/live.prom || { echo "missing live snapshot"; exit 1; }
grep -q '^hymv_rank_utilization' target/experiments/prof/live.prom

echo "== hymv-prof diff self-comparison smoke (identical artifacts, zero delta)"
cargo run -q --release -p hymv-prof -- diff \
    target/experiments/prof/summary.json target/experiments/prof/summary.json --threshold 0
cargo run -q --release -p hymv-prof -- diff \
    target/experiments/prof/metrics.prom target/experiments/prof/metrics.prom --threshold 0

echo "== flight-recorder postmortem smoke (forced rank crash dumps a schema'd artifact)"
rm -f target/experiments/postmortem.json
HYMV_FLIGHT_OUT=target/experiments/postmortem.json \
    HYMV_FAULT_CRASH_RANK=3 HYMV_FAULT_CRASH_AFTER=10 \
    cargo run -q --release -p hymv-prof -- --n 6 --p 4 --seeds 1 \
    --out target/experiments/prof-crash >/dev/null 2>&1 || true
test -s target/experiments/postmortem.json || { echo "missing postmortem artifact"; exit 1; }
grep -q '"schema":"hymv-postmortem-v1"' target/experiments/postmortem.json
grep -q '"reason":"' target/experiments/postmortem.json
grep -q '"kind":"span"' target/experiments/postmortem.json
grep -qE '"kind":"(send|recv)"' target/experiments/postmortem.json

echo "== serve SLO bench smoke (latency percentiles through the batched service)"
cargo run -q --release -p hymv-bench --bin bench_serve_slo -- --smoke

echo "== trace_overhead bench smoke (disabled-path <3% + flight-recorder <2% guards)"
HYMV_BENCH_SMOKE=1 cargo bench -q -p hymv-bench --bench trace_overhead

echo "CI green"

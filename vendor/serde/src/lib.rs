//! Offline stand-in for `serde`: a JSON-only `Serialize` trait.
//!
//! The workspace serializes a handful of plain records (trace events,
//! experiment tables) to JSON via `serde_json::to_string_pretty`. This
//! shim collapses serde's data model to "write yourself into a JSON
//! serializer", which the vendored `serde_derive` and `serde_json`
//! implement against. Deserialization is provided only for
//! `serde_json::Value` (in that crate).

pub use serde_derive::Serialize;

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `s`.
    fn serialize(&self, s: &mut JsonSerializer);
}

/// The JSON writer handed to [`Serialize`] implementations.
#[derive(Debug)]
pub struct JsonSerializer {
    out: String,
    pretty: bool,
    indent: usize,
    /// Per-container flag: whether an element/key was already emitted (for
    /// comma placement). One entry per open container.
    first_stack: Vec<bool>,
}

impl JsonSerializer {
    /// A compact writer.
    pub fn new() -> Self {
        JsonSerializer {
            out: String::new(),
            pretty: false,
            indent: 0,
            first_stack: Vec::new(),
        }
    }

    /// A pretty writer (2-space indentation, like `serde_json`).
    pub fn pretty() -> Self {
        JsonSerializer {
            pretty: true,
            ..Self::new()
        }
    }

    /// The accumulated JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn before_element(&mut self) {
        if let Some(first) = self.first_stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
            self.newline_indent();
        }
    }

    fn open(&mut self, c: char) {
        self.out.push(c);
        self.indent += 1;
        self.first_stack.push(true);
    }

    fn close(&mut self, c: char) {
        self.indent -= 1;
        let was_empty = self.first_stack.pop().unwrap_or(true);
        if !was_empty {
            self.newline_indent();
        }
        self.out.push(c);
    }

    /// Starts a JSON object (as a container element or a key's value).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.open('{');
    }

    /// Emits an object key; the value's `serialize` call must follow.
    pub fn object_key(&mut self, key: &str) {
        self.before_element();
        self.emit_quoted(key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Ends a JSON object.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Starts a JSON array (as a container element or a key's value).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.open('[');
    }

    /// Ends a JSON array.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Emits a string scalar.
    pub fn emit_str(&mut self, s: &str) {
        self.string_scalar(s);
    }

    /// Emits a raw (already-JSON) scalar token.
    pub fn emit_raw(&mut self, token: &str) {
        self.scalar(token);
    }

    fn emit_quoted(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl Default for JsonSerializer {
    fn default() -> Self {
        Self::new()
    }
}

// A quirk of the key/value split above: `object_key` must *not* leave the
// following value emission to also run `before_element` (the comma was
// already placed with the key). Values therefore check whether the writer
// just emitted a key: the last output char is ':' or the pretty "': '".
impl JsonSerializer {
    fn value_pending(&self) -> bool {
        let t = self.out.trim_end_matches(' ');
        t.ends_with(':')
    }

    fn before_value(&mut self) {
        if !self.value_pending() {
            self.before_element();
        }
    }

    /// Emits a scalar, comma-managed as an element unless it completes a
    /// pending `key:`.
    fn scalar(&mut self, token: &str) {
        self.before_value();
        self.out.push_str(token);
    }

    /// Emits a string scalar, comma-managed like [`Self::scalar`].
    fn string_scalar(&mut self, s: &str) {
        self.before_value();
        self.emit_quoted(s);
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut JsonSerializer) {
                s.scalar(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, s: &mut JsonSerializer) {
        s.scalar(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut JsonSerializer) {
        if self.is_finite() {
            s.scalar(&format!("{self}"));
        } else {
            // serde_json refuses non-finite floats; emit null like its
            // lossy writers do.
            s.scalar("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut JsonSerializer) {
        (*self as f64).serialize(s);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut JsonSerializer) {
        s.string_scalar(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut JsonSerializer) {
        s.string_scalar(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut JsonSerializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut JsonSerializer) {
        s.begin_array();
        for x in self {
            x.serialize(s);
        }
        s.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut JsonSerializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut JsonSerializer) {
        match self {
            Some(x) => x.serialize(s),
            None => s.scalar("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_seqs() {
        let mut s = JsonSerializer::new();
        vec![1u32, 2, 3].serialize(&mut s);
        assert_eq!(s.into_string(), "[1,2,3]");

        let mut s = JsonSerializer::new();
        "a\"b".serialize(&mut s);
        assert_eq!(s.into_string(), "\"a\\\"b\"");
    }

    #[test]
    fn empty_array_pretty_is_compact() {
        let mut s = JsonSerializer::pretty();
        Vec::<u32>::new().serialize(&mut s);
        assert_eq!(s.into_string(), "[]");
    }

    #[test]
    fn manual_object() {
        let mut s = JsonSerializer::new();
        s.begin_object();
        s.object_key("x");
        1.5f64.serialize(&mut s);
        s.object_key("y");
        "z".serialize(&mut s);
        s.end_object();
        assert_eq!(s.into_string(), "{\"x\":1.5,\"y\":\"z\"}");
    }
}

//! Offline stand-in for `rayon`: the parallel-iterator API subset used by
//! the elemental loops, executed **sequentially** on the calling thread.
//!
//! This matches the production configuration on the reproduction host: the
//! per-rank pools are built with `num_threads(1).use_current_thread()`, so
//! real rayon degenerates to exactly this behaviour (see
//! `hymv_core::hybrid`); multi-thread speedup is modeled by the
//! virtual-time ledger, not measured. Code written against this shim stays
//! valid, data-race-free rayon code.

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// providing the rayon combinators the workspace calls.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// `ParallelIterator::for_each`.
    pub fn for_each(self, mut f: impl FnMut(I::Item)) {
        for x in self.inner {
            f(x);
        }
    }

    /// `ParallelIterator::for_each_init`: one init value per worker — a
    /// single worker here, so `init` runs once.
    pub fn for_each_init<T>(self, mut init: impl FnMut() -> T, mut f: impl FnMut(&mut T, I::Item)) {
        let mut state = init();
        for x in self.inner {
            f(&mut state, x);
        }
    }

    /// `ParallelIterator::map`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// `ParallelIterator::collect`.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// `ParallelIterator::sum`.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }
}

/// `rayon::iter::IntoParallelRefIterator` stand-in (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing "parallel" iterator.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `rayon::slice::ParallelSlice` stand-in (`.par_chunks()`).
pub trait ParallelSlice<T> {
    /// Chunked "parallel" iterator.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            inner: self.chunks(chunk_size),
        }
    }
}

pub mod prelude {
    //! The rayon prelude: the traits that add `par_*` methods.
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

/// Number of worker threads in the current pool (always 1 here).
pub fn current_num_threads() -> usize {
    1
}

/// A sequential "thread pool".
#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `f` in the pool — on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder;

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        ThreadPoolBuilder
    }

    /// Requested worker count (ignored: always one).
    pub fn num_threads(self, _n: usize) -> Self {
        self
    }

    /// Use the calling thread as a worker (the only mode provided).
    pub fn use_current_thread(self) -> Self {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_combinators() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut acc = 0;
        v.par_iter().for_each(|&x| acc += x);
        assert_eq!(acc, 10);

        let mut inits = 0;
        v.par_iter().for_each_init(
            || {
                inits += 1;
                0
            },
            |state, &x| *state += x,
        );
        assert_eq!(inits, 1);
    }

    #[test]
    fn par_chunks_cover() {
        let v: Vec<usize> = (0..10).collect();
        let sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn pool_installs_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .use_current_thread()
            .build()
            .expect("pool");
        assert_eq!(pool.install(|| super::current_num_threads()), 1);
    }
}

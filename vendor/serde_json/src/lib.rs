//! Offline stand-in for `serde_json`: `to_string`/`to_string_pretty` over
//! the vendored `serde::Serialize` trait, plus a self-describing [`Value`]
//! with a recursive-descent parser (`from_str::<Value>`), which is the
//! only deserialization the workspace performs.

use std::fmt;

use serde::{JsonSerializer, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding of any [`Serialize`] value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = JsonSerializer::new();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// Pretty (2-space indented) JSON encoding.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = JsonSerializer::pretty();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy view).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Object member lookup (`None` on misses and non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Types constructible by [`from_str`] (only [`Value`] here — typed
/// deserialization is out of scope for the shim).
pub trait FromJson: Sized {
    /// Builds Self from a parsed document.
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parses a JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("non-ascii \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_record() {
        #[derive(serde::Serialize)]
        struct Rec {
            name: String,
            xs: Vec<f64>,
            n: u32,
        }
        let rec = Rec {
            name: "a\"b".into(),
            xs: vec![1.0, 2.5],
            n: 7,
        };
        let text = to_string_pretty(&rec).expect("serializes");
        let v: Value = from_str(&text).expect("parses");
        assert_eq!(v["name"], "a\"b");
        assert_eq!(v["xs"][1], 2.5);
        assert_eq!(v["n"], 7u64);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn parses_document_shapes() {
        let v: Value = from_str(r#"{"a": [1, -2.5e3, true, null], "b": {"c": "d"}}"#).expect("ok");
        assert_eq!(v["a"].as_array().expect("array").len(), 4);
        assert_eq!(v["a"][1], -2500.0);
        assert_eq!(v["a"][2], true);
        assert_eq!(v["b"]["c"], "d");
    }

    #[test]
    fn empty_array_compact() {
        assert_eq!(to_string_pretty(&Vec::<u32>::new()).expect("ok"), "[]");
    }

    #[test]
    fn unit_enum_variant_as_string() {
        #[derive(serde::Serialize)]
        enum Kind {
            H2D,
            #[allow(dead_code)]
            D2H,
        }
        let text = to_string(&vec![Kind::H2D]).expect("ok");
        assert_eq!(text, "[\"H2D\"]");
    }
}

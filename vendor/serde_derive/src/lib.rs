//! Offline stand-in for `serde_derive`: a dependency-free
//! `#[derive(Serialize)]` targeting the vendored JSON-only `serde` shim.
//!
//! Supported shapes — exactly what the workspace derives:
//! * structs with named fields (including a single lifetime parameter),
//!   serialized as a JSON object keyed by field name;
//! * enums whose variants are all unit-like, serialized as the variant
//!   name string (serde's default unit-variant representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("derive(Serialize): expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;

    // Capture raw generics (`<...>`) verbatim; the derived types use at
    // most a plain lifetime parameter, so reusing the list for both the
    // impl generics and the type suffix is sound.
    let mut generics = String::new();
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        let mut depth = 0i32;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            generics.push_str(&tokens[i].to_string());
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }

    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("derive(Serialize): unit/tuple structs are not supported")
            }
            _ => i += 1, // where-clauses etc. (not present in-tree)
        }
    };

    let serialize_body = if kind == "struct" {
        let fields = named_fields(body);
        let mut code = String::from("__s.begin_object();\n");
        for f in &fields {
            code.push_str(&format!(
                "__s.object_key({f:?});\nserde::Serialize::serialize(&self.{f}, __s);\n"
            ));
        }
        code.push_str("__s.end_object();");
        code
    } else {
        let variants = unit_variants(body);
        let arms: String = variants
            .iter()
            .map(|v| format!("{name}::{v} => __s.emit_str({v:?}),\n"))
            .collect();
        format!("match *self {{\n{arms}}}")
    };

    format!(
        "impl{generics} serde::Serialize for {name}{generics} {{\n\
         fn serialize(&self, __s: &mut serde::JsonSerializer) {{\n{serialize_body}\n}}\n}}"
    )
    .parse()
    .expect("derive(Serialize): generated impl parses")
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc: a parenthesized group follows.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        // First ident of the field is its name.
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("derive(Serialize): expected field name, found {other}"),
        }
        // Skip to the comma separating fields, tracking `<...>` depth so
        // commas inside generic types don't split fields.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variant names of an all-unit-variant enum body.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("derive(Serialize): expected variant name, found {other}"),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                panic!("derive(Serialize): only unit enum variants are supported, found {other}")
            }
        }
    }
    variants
}

//! Offline stand-in for `rand` 0.8: `StdRng::seed_from_u64` plus
//! `Rng::gen_range` / `Rng::gen` over the primitive types the workspace
//! draws. The generator is SplitMix64 — statistically fine for test-data
//! and mesh-jitter purposes; it is **not** the real crate's ChaCha12, so
//! seeded streams differ from upstream `rand` (nothing in-tree depends on
//! the exact stream, only on determinism per seed).

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: mixes `state + golden gamma` into an output word.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Named generators (`StdRng` only).

    /// The workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so nearby seeds diverge immediately.
            let mut state = seed ^ 0x6A09_E667_F3BC_C909;
            super::splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }
}

/// Types drawable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range called with empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — immaterial for test data.
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// High-level drawing interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `[start, end)`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Standard-distribution draw.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool called with p outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..10).all(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(!same, "distinct seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&x));
            let n = rng.gen_range(3usize..7);
            assert!((3..7).contains(&n));
        }
        let b: bool = rng.gen();
        let _ = b;
    }
}

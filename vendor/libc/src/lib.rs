//! Offline stand-in for the `libc` crate: exactly the bindings
//! `hymv_comm::thread_cpu_time` uses (`clock_gettime` with
//! `CLOCK_THREAD_CPUTIME_ID`), declared with the same names and shapes as
//! the real crate so the two are interchangeable.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

/// Linux `CLOCK_THREAD_CPUTIME_ID`.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_readable() {
        let mut ts = timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid writable timespec; the clock id is a
        // Linux constant; the pointer is not retained.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0 && ts.tv_nsec >= 0);
    }
}

//! Offline stand-in for `criterion`: enough of the group/bencher API for
//! the workspace's benches to compile and run under `cargo bench`. Each
//! benchmark does a short warm-up, then a fixed batch of timed iterations,
//! and prints the mean per-iteration wall time — no statistics, HTML
//! reports, or CLI filtering.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level bench context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration (flops, entries, ...).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark label (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A label from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Timed sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn run_one(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run single-iteration batches until the budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(&mut b);
        }
        // Calibrate a batch size targeting measurement_time / sample_size
        // per sample, from the last warm-up batch's per-iter time.
        let per_iter = (b.elapsed.as_secs_f64() / b.iters as f64).max(1e-9);
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter) as u64).clamp(1, 1_000_000_000);

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            b.iters = batch;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let mean_s = total.as_secs_f64() / total_iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / mean_s),
            Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / mean_s),
            None => String::new(),
        };
        println!(
            "{label}: {:.3} us/iter ({total_iters} iters){rate}",
            mean_s * 1e6
        );
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time
    /// (for benchmarks that must time an inner region themselves).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Elements(8));
        let mut hits = 0u64;
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_custom(|iters| {
                hits += 1;
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box((0..n).sum::<usize>());
                }
                t0.elapsed()
            });
        });
        group.finish();
        assert!(hits > 0);
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }
}

//! Offline stand-in for `proptest`: a deterministic property-testing
//! harness exposing the strategy surface the workspace uses — numeric
//! ranges, tuples, `Just`, `prop_oneof!`, `collection::vec`,
//! `array::uniform3`/`uniform6`, `any::<bool>()` — and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failure reports the
//! case seed and the generated arguments instead), and case seeds are
//! derived deterministically from the test name so failures reproduce
//! run-to-run. `PROPTEST_CASES` overrides the per-test case count.

use std::ops::Range;

pub mod test_runner {
    //! Config, error type and the case-loop driver behind `proptest!`.

    /// Per-test configuration (`cases` is the only knob the shim honors).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case (what `prop_assert!` returns early with).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runs `cfg.cases` deterministic cases of one property; panics (failing
    /// the enclosing `#[test]`) on the first case whose body errors.
    pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut crate::TestRng) -> (Result<(), TestCaseError>, String),
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cfg.cases);
        // FNV-1a over the test name makes per-test streams independent.
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..cases {
            let seed = base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
            let mut rng = crate::TestRng::from_seed(seed);
            let (result, args) = body(&mut rng);
            if let Err(e) = result {
                panic!(
                    "property `{name}` failed at case {case}/{cases} (seed {seed:#018x})\n\
                     \x20 inputs: {args}\n\x20 {e}"
                );
            }
        }
    }
}

/// Deterministic splitmix64 generator threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator at `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 uniform mantissa bits in [0,1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn uniform_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Modulo draw: bias is ~2^-64 per case for the small spans tests use.
        self.next_u64() % n
    }
}

/// A generator of values of one type. The shim keeps proptest's name and
/// associated `Value`, but a strategy is just a seeded sampler — no
/// shrinking tree.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (the element form `prop_oneof!` unifies on).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.uniform_f64(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// A length bound: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Vectors of `element` draws with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.0.clone()).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// The strategy behind `uniform3`/`uniform6`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// `[T; 3]` of independent draws.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    /// `[T; 6]` of independent draws.
    pub fn uniform6<S: Strategy>(element: S) -> UniformArray<S, 6> {
        UniformArray { element }
    }
}

pub mod prelude {
    //! The glob-import surface tests use.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Declares deterministic property tests. Each `fn name(arg in strategy, ...)
/// { body }` becomes a `#[test]` (the attribute is written inside the macro
/// invocation, matching real proptest) running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut *__rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__result, __inputs)
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// In a `proptest!` body: fail the case (with an optional format message)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// In a `proptest!` body: fail the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Uniform choice among strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($option)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = Strategy::generate(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = crate::TestRng::from_seed(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro plumbing end-to-end: params, tuples, vec, arrays.
        #[test]
        fn macro_generates_and_checks(
            n in 1usize..5,
            pair in (0u32..10, -1.0f64..1.0),
            xs in crate::collection::vec(0u64..100, 2..6),
            arr in crate::array::uniform3(-1.0f64..1.0),
            flip in any::<bool>(),
        ) {
            prop_assert!(n >= 1 && n < 5);
            prop_assert!(pair.0 < 10);
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len {}", xs.len());
            prop_assert!(arr.iter().all(|x| x.abs() < 1.0));
            prop_assert_eq!(flip as u8 * 2, if flip { 2 } else { 0 });
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failure_reports_case_and_inputs() {
        let cfg = ProptestConfig {
            cases: 4,
            ..ProptestConfig::default()
        };
        crate::test_runner::run_cases(&cfg, "always_fails", |rng| {
            let x = Strategy::generate(&(0u32..10), rng);
            (
                Err(crate::test_runner::TestCaseError::fail("nope")),
                format!("x = {x:?}"),
            )
        });
    }
}

//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny API subset it uses: `Mutex` with an
//! infallible `lock()`, and `Condvar::wait(&mut guard)` taking the guard
//! by reference. Poisoning is swallowed (parking_lot has none): a panic
//! while holding a lock propagates to `Universe::run`'s join anyway.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex with parking_lot's infallible `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard; holds the std guard in an `Option` so `Condvar::wait` can
/// temporarily take ownership through a `&mut` borrow.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        t.join().expect("waiter exits");
    }
}

//! End-to-end chaos tests of the reliable envelope transport: seeded
//! drop/duplicate/corrupt/reorder/delay faults must be healed bit-exactly
//! by the recovery protocol, and unrecoverable faults must terminate every
//! rank with a typed report — never a hang, never damaged data.

use hymv_comm::{
    envelope_pack, envelope_unpack, AuditMode, CostModel, FaultKind, FaultPlan, Payload,
    RetryPolicy, RunConfig, Universe,
};

fn chaos_cfg(fault: FaultPlan) -> RunConfig {
    RunConfig {
        model: CostModel::default(),
        perturb_seed: None,
        // Chaos runs legitimately leave tombstones, duplicates, and
        // retransmissions behind; the audit teardown sweep would flag them.
        audit: AuditMode::Disabled,
        fault: Some(fault),
        retry: RetryPolicy::default(),
        trace: false,
    }
}

/// Ring traffic: each rank streams `rounds` enveloped vectors to its right
/// neighbour and returns everything received from its left, with an
/// allreduce separating rounds (as CG separates matvecs with dots).
fn ring_program(comm: &mut hymv_comm::Comm, rounds: usize) -> Vec<f64> {
    let next = (comm.rank() + 1) % comm.size();
    let prev = (comm.rank() + comm.size() - 1) % comm.size();
    let mut got = Vec::new();
    for round in 0..rounds {
        let data: Vec<f64> = (0..5)
            .map(|i| (comm.rank() * 1000 + round * 10 + i) as f64 + 0.5)
            .collect();
        comm.send_enveloped(next, 0x0C07, &data);
        got.extend(comm.recv_enveloped(prev, 0x0C07));
        let s = comm.allreduce_sum_f64(got[got.len() - 1]);
        assert!(s.is_finite());
    }
    got
}

fn expected_ring(rank: usize, size: usize, rounds: usize) -> Vec<f64> {
    let prev = (rank + size - 1) % size;
    (0..rounds)
        .flat_map(|round| (0..5).map(move |i| (prev * 1000 + round * 10 + i) as f64 + 0.5))
        .collect()
}

#[test]
fn drops_are_healed_bit_exactly() {
    let cfg = chaos_cfg(FaultPlan::new(11).with_drop(0.2));
    let (results, _) = Universe::run_chaos(cfg, 3, |comm| {
        let got = ring_program(comm, 12);
        (got, comm.stats())
    });
    let mut timeouts = 0;
    let mut retries = 0;
    for (rank, res) in results.into_iter().enumerate() {
        let (got, stats) = res.expect("20% drop is within the retry budget");
        assert_eq!(got, expected_ring(rank, 3, 12), "rank {rank} data damaged");
        timeouts += stats.timeouts;
        retries += stats.retries;
    }
    assert!(timeouts > 0, "a 20% drop plan must fire at least once");
    assert!(retries >= timeouts, "every timeout charges a retry");
}

#[test]
fn duplicates_are_suppressed() {
    let cfg = chaos_cfg(FaultPlan::new(5).with_duplicate(0.5));
    let (results, _) = Universe::run_chaos(cfg, 2, |comm| {
        let got = ring_program(comm, 16);
        (got, comm.stats())
    });
    let mut dups = 0;
    for (rank, res) in results.into_iter().enumerate() {
        let (got, stats) = res.expect("duplication alone never exhausts retries");
        assert_eq!(got, expected_ring(rank, 2, 16), "rank {rank} data damaged");
        dups += stats.dups_suppressed;
    }
    assert!(dups > 0, "a 50% duplication plan must trip dedup");
}

#[test]
fn corruption_is_detected_and_healed() {
    let cfg = chaos_cfg(FaultPlan::new(23).with_corrupt(0.3));
    let (results, _) = Universe::run_chaos(cfg, 2, |comm| {
        let got = ring_program(comm, 14);
        (got, comm.stats())
    });
    let mut caught = 0;
    for (rank, res) in results.into_iter().enumerate() {
        let (got, stats) = res.expect("30% corruption is within the retry budget");
        assert_eq!(
            got,
            expected_ring(rank, 2, 14),
            "rank {rank}: corrupted bits leaked through"
        );
        caught += stats.corrupt_detected;
    }
    assert!(caught > 0, "a 30% corruption plan must trip the checksum");
}

#[test]
fn reorder_and_delay_are_healed() {
    let cfg = chaos_cfg(
        FaultPlan::new(31)
            .with_reorder(0.6)
            .with_delay(0.3, 8.0)
            .with_duplicate(0.2),
    );
    let (results, _) = Universe::run_chaos(cfg, 3, |comm| ring_program(comm, 10));
    for (rank, res) in results.into_iter().enumerate() {
        let got = res.expect("reorder/delay/dup never exhaust retries");
        assert_eq!(
            got,
            expected_ring(rank, 3, 10),
            "rank {rank}: sequence numbers failed to restore order"
        );
    }
}

/// The negative satellite: a crashed rank produces the typed diagnostic on
/// every rank — this test *completing* is the no-hang proof.
#[test]
fn crash_yields_typed_reports_on_every_rank() {
    let cfg = chaos_cfg(FaultPlan::new(1).with_crash(1, 2));
    let (results, _) = Universe::run_chaos(cfg, 3, |comm| ring_program(comm, 12));
    let mut exhausted = 0;
    let mut peer_aborts = 0;
    for res in results {
        match res.expect_err("a crashed data plane cannot converge").kind {
            FaultKind::RetryBudgetExhausted { peer, .. } => {
                assert_eq!(peer, 1, "only rank 1's data plane died");
                exhausted += 1;
            }
            FaultKind::PeerAborted { .. } => peer_aborts += 1,
            other => panic!("unexpected fault kind without LFLR armed: {other:?}"),
        }
    }
    assert!(exhausted >= 1, "someone must observe the exhausted budget");
    assert_eq!(exhausted + peer_aborts, 3, "all ranks terminate typed");
}

/// Raw (non-envelope) traffic — including `recv_any` — rides the reliable
/// fabric: an active duplication/reorder plan must not touch it, because
/// injection is scoped to `isend_unreliable` (the envelope path).
#[test]
fn recv_any_unaffected_while_faults_active() {
    let cfg = chaos_cfg(FaultPlan::new(9).with_duplicate(0.9).with_reorder(0.9));
    let (results, _) = Universe::run_chaos(cfg, 4, |comm| {
        // Envelope traffic under heavy dup/reorder in the background...
        let got = ring_program(comm, 4);
        assert_eq!(got, expected_ring(comm.rank(), 4, 4));
        // ...while a raw wildcard gather stays exact (three messages, each
        // delivered exactly once).
        if comm.rank() == 0 {
            let mut vals: Vec<u64> = (0..3).map(|_| comm.recv_any(6).1.into_u64()[0]).collect();
            vals.sort_unstable();
            vals
        } else {
            comm.isend(0, 6, Payload::from_u64(vec![comm.rank() as u64 * 100]));
            Vec::new()
        }
    });
    let vals = results[0].as_ref().expect("raw traffic is reliable");
    assert_eq!(vals, &vec![100, 200, 300]);
}

/// With the injector disabled the envelope path is pure framing: bitwise
/// the same data, zero recovery events, and no tombstones anywhere.
#[test]
fn envelope_path_is_transparent_without_faults() {
    let out = Universe::run(2, |comm| {
        let other = 1 - comm.rank();
        let data = vec![0.1, 0.2, 0.3];
        comm.send_enveloped(other, 0x0C07, &data);
        let got = comm.recv_enveloped(other, 0x0C07);
        let stats = comm.stats();
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.dups_suppressed, 0);
        assert_eq!(stats.corrupt_detected, 0);
        assert_eq!(stats.sends_confirmed, 1);
        got
    });
    assert_eq!(out[0], vec![0.1, 0.2, 0.3]);
    assert_eq!(out[1], vec![0.1, 0.2, 0.3]);
}

/// Exhaustive single-bit coverage: flipping ANY one bit of a packed
/// envelope — magic, sequence, length, checksum, or data — must fail
/// validation. The FNV-1a checksum covers every header and data word (the
/// checksum word hashes as zero), so the injector's `corrupt` fault can
/// never slip an envelope past `envelope_unpack`: 100% detection.
#[test]
fn checksum_catches_every_single_bit_flip() {
    let data = [1.5, -2.25, 3.0e-7, f64::MAX, 0.0];
    let packed = envelope_pack(3, &data);
    let (seq, roundtrip) = envelope_unpack(&packed).expect("clean envelope validates");
    assert_eq!(seq, 3);
    assert_eq!(roundtrip, data);
    let Payload::U64(words) = &packed else {
        panic!("envelopes are U64 payloads");
    };
    for word in 0..words.len() {
        for bit in 0..64 {
            let mut corrupted = words.clone();
            corrupted[word] ^= 1u64 << bit;
            assert!(
                envelope_unpack(&Payload::U64(corrupted)).is_err(),
                "flip of word {word} bit {bit} slipped through"
            );
        }
    }
}

/// The same fault seed must produce the same recovery trace and the same
/// bits, run after run (the determinism argument of DESIGN.md §10).
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let run = || {
        let cfg = chaos_cfg(FaultPlan::new(77).with_drop(0.15).with_duplicate(0.2));
        let (results, _) = Universe::run_chaos(cfg, 3, |comm| {
            let got = ring_program(comm, 8);
            let s = comm.stats();
            (got, s.timeouts, s.retries, s.dups_suppressed)
        });
        results
            .into_iter()
            .map(|r| r.expect("recoverable plan"))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same recovery trace, same bits");
}

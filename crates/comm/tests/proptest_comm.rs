//! Property-based tests of the message-passing substrate: arbitrary
//! communication patterns must deliver exactly, collectives must agree
//! across ranks, and the virtual-time ledger must stay consistent.

use proptest::prelude::*;

use hymv_comm::{CostModel, Payload, Universe};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random sparse point-to-point pattern: every sent message arrives,
    /// with per-(src,tag) FIFO order.
    #[test]
    fn arbitrary_patterns_deliver_exactly(
        p in 1usize..6,
        // message plan: (src, dst, payload value) triples
        plan in proptest::collection::vec((0usize..6, 0usize..6, 0u64..1000), 0..40),
    ) {
        let plan: Vec<(usize, usize, u64)> = plan
            .into_iter()
            .map(|(s, d, v)| (s % p, d % p, v))
            .collect();
        let plan_ref = &plan;
        let out = Universe::run(p, move |comm| {
            let me = comm.rank();
            // Send my messages in plan order.
            for &(_s, d, v) in plan_ref.iter().filter(|&&(s, _, _)| s == me) {
                comm.isend(d, 7, Payload::from_u64(vec![v]));
            }
            // Receive exactly the messages addressed to me, per-source in
            // plan order.
            let mut got: Vec<(usize, u64)> = Vec::new();
            for src in 0..comm.size() {
                let expected: Vec<u64> = plan_ref
                    .iter()
                    .filter(|&&(s, d, _)| s == src && d == me)
                    .map(|&(_, _, v)| v)
                    .collect();
                for _ in 0..expected.len() {
                    let v = comm.recv(src, 7).into_u64()[0];
                    got.push((src, v));
                }
            }
            got
        });
        // Verify FIFO per (src, dst).
        for (me, got) in out.iter().enumerate() {
            for src in 0..p {
                let expected: Vec<u64> = plan
                    .iter()
                    .filter(|&&(s, d, _)| s == src && d == me)
                    .map(|&(_, _, v)| v)
                    .collect();
                let received: Vec<u64> =
                    got.iter().filter(|&&(s, _)| s == src).map(|&(_, v)| v).collect();
                prop_assert_eq!(expected, received, "rank {} from {}", me, src);
            }
        }
    }

    /// Reductions agree with a serial fold on every rank, for any sizes.
    #[test]
    fn reductions_match_serial_fold(
        p in 1usize..7,
        values in proptest::collection::vec(-1e6f64..1e6, 7),
    ) {
        let vals = &values;
        let out = Universe::run(p, move |comm| {
            let mine = vals[comm.rank()];
            (
                comm.allreduce_sum_f64(mine),
                comm.allreduce_max_f64(mine),
                comm.allreduce_min_f64(mine),
            )
        });
        let sum: f64 = values[..p].iter().sum();
        let max = values[..p].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = values[..p].iter().copied().fold(f64::INFINITY, f64::min);
        for (s, mx, mn) in out {
            prop_assert!((s - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
            prop_assert_eq!(mx, max);
            prop_assert_eq!(mn, min);
        }
    }

    /// exchange_sparse round trip: arbitrary dest multiset, every payload
    /// arrives at its destination exactly once.
    #[test]
    fn exchange_sparse_exactness(
        p in 1usize..6,
        dests in proptest::collection::vec(0usize..6, 0..12),
    ) {
        let dests: Vec<usize> = dests.into_iter().map(|d| d % p).collect();
        let dests_ref = &dests;
        let out = Universe::run(p, move |comm| {
            let me = comm.rank();
            // Rank r sends to each dest a tagged value (me*1000 + index).
            let msgs: Vec<(usize, Payload)> = dests_ref
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, Payload::from_u64(vec![(me * 1000 + i) as u64])))
                .collect();
            let recv = comm.exchange_sparse(msgs, 9);
            recv.into_iter().map(|(src, pay)| (src, pay.into_u64()[0])).collect::<Vec<_>>()
        });
        // Each rank receives exactly p copies of each (i) where dests[i]
        // points at it — one per sender.
        for (me, got) in out.iter().enumerate() {
            let expected_count = dests.iter().filter(|&&d| d == me).count() * p;
            prop_assert_eq!(got.len(), expected_count, "rank {}", me);
            for &(src, v) in got {
                let idx = (v % 1000) as usize;
                prop_assert_eq!(v / 1000, src as u64);
                prop_assert_eq!(dests[idx], me);
            }
        }
    }

    /// Virtual time never decreases and the ledger's components are
    /// self-consistent under random work/communication interleavings.
    #[test]
    fn ledger_monotone_and_consistent(
        p in 2usize..5,
        ops in proptest::collection::vec(0u8..3, 1..20),
    ) {
        let ops_ref = &ops;
        let out = Universe::run_with(CostModel::default(), p, move |comm| {
            let mut last_vt = 0.0f64;
            let mut ok = true;
            for (i, &op) in ops_ref.iter().enumerate() {
                match op {
                    0 => {
                        comm.work(|| std::hint::black_box((0..500).sum::<usize>()));
                    }
                    1 => {
                        let _ = comm.allreduce_sum_f64(i as f64);
                    }
                    _ => {
                        // Ring exchange.
                        let next = (comm.rank() + 1) % comm.size();
                        let prev = (comm.rank() + comm.size() - 1) % comm.size();
                        comm.isend(next, 3, Payload::from_f64(vec![i as f64]));
                        let _ = comm.recv(prev, 3);
                    }
                }
                ok &= comm.vt() >= last_vt;
                last_vt = comm.vt();
            }
            let st = comm.stats();
            ok &= st.compute_s >= 0.0 && st.comm_wait_s >= 0.0;
            ok &= st.vt + 1e-12 >= st.comm_wait_s;
            (ok, st.msgs_sent, st.msgs_recv)
        });
        let sent: u64 = out.iter().map(|&(_, s, _)| s).sum();
        let recv: u64 = out.iter().map(|&(_, _, r)| r).sum();
        prop_assert!(out.iter().all(|&(ok, _, _)| ok));
        prop_assert_eq!(sent, recv, "messages conserved");
    }
}

//! Per-rank virtual-time accounting.
//!
//! Each rank tracks a virtual clock `vt` combining *measured* compute time
//! (per-thread CPU clock, immune to the host's time-sharing) with *modeled*
//! communication time (α-β model). See the crate docs for the rationale.

/// Parameters of the communication / shared-memory cost model.
///
/// Defaults approximate the paper's testbed fabric (Mellanox HDR100 to the
/// node): ~2 µs short-message latency and ~12 GB/s effective point-to-point
/// bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency in seconds (α).
    pub alpha: f64,
    /// Bandwidth in bytes/second (β).
    pub beta: f64,
    /// Sender-side injection overhead per message, in seconds.
    pub send_overhead: f64,
    /// Serial fraction used by the Amdahl model for `work_smp` — shared
    /// memory ("OpenMP") sections are modeled because the host has a single
    /// core. The paper's elemental loops are embarrassingly parallel, so the
    /// serial fraction is small.
    pub smp_serial_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 2.0e-6,
            beta: 12.0e9,
            send_overhead: 0.4e-6,
            smp_serial_fraction: 0.05,
        }
    }
}

impl CostModel {
    /// Modeled transit time of one message carrying `bytes`.
    pub fn transit(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }

    /// Modeled speedup of a perfectly-balanced elemental loop on `t` threads.
    pub fn smp_speedup(&self, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        1.0 / (self.smp_serial_fraction + (1.0 - self.smp_serial_fraction) / t)
    }
}

/// Read the calling thread's CPU time in seconds.
///
/// Uses `CLOCK_THREAD_CPUTIME_ID` so that concurrent thread-ranks
/// time-sharing one physical core each still observe only their own work.
#[allow(unsafe_code)] // sole FFI call in the crate; SAFETY argument below
pub fn thread_cpu_time() -> f64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable timespec; the clock id is a Linux
    // constant. clock_gettime never retains the pointer.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Per-tag traffic breakdown kept alongside the scalar counters. The
/// aggregate [`CommStats`] stays a flat `Copy` snapshot; tag-resolved
/// numbers live in this side table (see [`Ledger::tag_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages sent under this tag.
    pub msgs_sent: u64,
    /// Bytes received under this tag.
    pub bytes_recv: u64,
    /// Messages received under this tag.
    pub msgs_recv: u64,
}

/// Virtual-time ledger of a single rank.
#[derive(Debug, Clone)]
pub struct Ledger {
    model: CostModel,
    /// Virtual clock, seconds since `Universe::run` entry.
    vt: f64,
    compute_s: f64,
    comm_wait_s: f64,
    bytes_sent: u64,
    bytes_recv: u64,
    msgs_sent: u64,
    msgs_recv: u64,
    sends_confirmed: u64,
    retries: u64,
    timeouts: u64,
    dups_suppressed: u64,
    corrupt_detected: u64,
    tags: std::collections::BTreeMap<u32, TagStats>,
}

impl Ledger {
    pub(crate) fn new(model: CostModel) -> Self {
        Ledger {
            model,
            vt: 0.0,
            compute_s: 0.0,
            comm_wait_s: 0.0,
            bytes_sent: 0,
            bytes_recv: 0,
            msgs_sent: 0,
            msgs_recv: 0,
            sends_confirmed: 0,
            retries: 0,
            timeouts: 0,
            dups_suppressed: 0,
            corrupt_detected: 0,
            tags: std::collections::BTreeMap::new(),
        }
    }

    /// Current virtual time in seconds.
    pub fn vt(&self) -> f64 {
        self.vt
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Advance the clock by a measured compute duration.
    pub fn add_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= -1e-9, "negative compute duration {seconds}");
        let s = seconds.max(0.0);
        self.vt += s;
        self.compute_s += s;
    }

    /// Record a send of `bytes` under `tag`: pays sender overhead, returns
    /// the modeled arrival timestamp to stamp on the message.
    pub(crate) fn on_send(&mut self, tag: u32, bytes: usize) -> f64 {
        self.vt += self.model.send_overhead;
        self.bytes_sent += bytes as u64;
        self.msgs_sent += 1;
        let t = self.tags.entry(tag).or_default();
        t.bytes_sent += bytes as u64;
        t.msgs_sent += 1;
        self.vt + self.model.transit(bytes)
    }

    /// Record the completion of a receive under `tag` whose message arrives
    /// (in virtual time) at `arrival_vt`.
    pub(crate) fn on_recv_complete(&mut self, arrival_vt: f64, tag: u32, bytes: usize) {
        if arrival_vt > self.vt {
            self.comm_wait_s += arrival_vt - self.vt;
            self.vt = arrival_vt;
        }
        self.bytes_recv += bytes as u64;
        self.msgs_recv += 1;
        let t = self.tags.entry(tag).or_default();
        t.bytes_recv += bytes as u64;
        t.msgs_recv += 1;
    }

    /// Synchronize with a collective whose participants' maximum virtual
    /// time is `max_vt`, over `size` ranks (costed as a binomial tree).
    pub(crate) fn on_collective(&mut self, max_vt: f64, size: usize) {
        let depth = (usize::BITS - (size.max(1) - 1).leading_zeros()) as f64;
        let t = max_vt + depth * self.model.alpha;
        if t > self.vt {
            self.comm_wait_s += t - self.vt;
            self.vt = t;
        }
    }

    /// Record the confirmed completion of a buffered send
    /// (`SendHandle::wait`).
    pub(crate) fn on_send_confirmed(&mut self) {
        self.sends_confirmed += 1;
    }

    /// Record one retransmission request plus its virtual-time backoff
    /// (charged as communication wait — the rank is stalled on recovery).
    pub(crate) fn on_retry(&mut self, backoff_s: f64) {
        debug_assert!(backoff_s >= 0.0, "negative backoff {backoff_s}");
        self.retries += 1;
        self.vt += backoff_s;
        self.comm_wait_s += backoff_s;
    }

    /// Record an observed message-loss timeout (a tombstone arrival).
    pub(crate) fn on_timeout(&mut self) {
        self.timeouts += 1;
    }

    /// Record a suppressed duplicate envelope.
    pub(crate) fn on_dup_suppressed(&mut self) {
        self.dups_suppressed += 1;
    }

    /// Record a detected in-flight payload corruption.
    pub(crate) fn on_corrupt_detected(&mut self) {
        self.corrupt_detected += 1;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CommStats {
        CommStats {
            vt: self.vt,
            compute_s: self.compute_s,
            comm_wait_s: self.comm_wait_s,
            bytes_sent: self.bytes_sent,
            bytes_recv: self.bytes_recv,
            msgs_sent: self.msgs_sent,
            msgs_recv: self.msgs_recv,
            sends_confirmed: self.sends_confirmed,
            retries: self.retries,
            timeouts: self.timeouts,
            dups_suppressed: self.dups_suppressed,
            corrupt_detected: self.corrupt_detected,
        }
    }

    /// Per-tag traffic breakdown, keyed by message tag.
    pub fn tag_stats(&self) -> &std::collections::BTreeMap<u32, TagStats> {
        &self.tags
    }

    /// Reset all counters and the clock to zero (used between timed phases).
    pub fn reset(&mut self) {
        *self = Ledger::new(self.model);
    }
}

/// A snapshot of one rank's communication/computation counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommStats {
    /// Virtual time (seconds).
    pub vt: f64,
    /// Measured compute seconds (thread CPU time).
    pub compute_s: f64,
    /// Modeled seconds spent waiting for messages/collectives.
    pub comm_wait_s: f64,
    /// Bytes sent by this rank.
    pub bytes_sent: u64,
    /// Bytes received by this rank.
    pub bytes_recv: u64,
    /// Messages sent by this rank.
    pub msgs_sent: u64,
    /// Messages received by this rank.
    pub msgs_recv: u64,
    /// Sends whose completion was confirmed via `SendHandle::wait`.
    pub sends_confirmed: u64,
    /// Retransmission requests issued by the reliable envelope layer.
    pub retries: u64,
    /// Message-loss timeouts observed (tombstone arrivals).
    pub timeouts: u64,
    /// Duplicate envelopes suppressed by sequence numbers.
    pub dups_suppressed: u64,
    /// In-flight payload corruptions caught by the envelope checksum.
    pub corrupt_detected: u64,
}

impl CommStats {
    /// Fold another rank's stats into an aggregate: `vt`, compute and wait
    /// take the max (critical path); byte/message counters add.
    pub fn fold_max(&mut self, other: &CommStats) {
        self.vt = self.vt.max(other.vt);
        self.compute_s = self.compute_s.max(other.compute_s);
        self.comm_wait_s = self.comm_wait_s.max(other.comm_wait_s);
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.sends_confirmed += other.sends_confirmed;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.dups_suppressed += other.dups_suppressed;
        self.corrupt_detected += other.corrupt_detected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_is_monotone_and_advances_under_work() {
        let t0 = thread_cpu_time();
        // Burn a little CPU.
        let mut acc = 0.0f64;
        for i in 0..200_000 {
            acc += (i as f64).sqrt();
        }
        assert!(acc > 0.0);
        let t1 = thread_cpu_time();
        assert!(t1 >= t0);
        assert!(t1 - t0 < 5.0, "implausibly long: {}", t1 - t0);
    }

    #[test]
    fn cost_model_transit() {
        let m = CostModel {
            alpha: 1e-6,
            beta: 1e9,
            send_overhead: 0.0,
            smp_serial_fraction: 0.05,
        };
        let t = m.transit(1_000_000);
        assert!((t - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn smp_speedup_amdahl() {
        let m = CostModel {
            smp_serial_fraction: 0.0,
            ..Default::default()
        };
        assert!((m.smp_speedup(8) - 8.0).abs() < 1e-12);
        let m = CostModel {
            smp_serial_fraction: 1.0,
            ..Default::default()
        };
        assert!((m.smp_speedup(8) - 1.0).abs() < 1e-12);
        let m = CostModel::default();
        let s = m.smp_speedup(14);
        assert!(s > 1.0 && s < 14.0);
    }

    #[test]
    fn ledger_send_recv_overlap() {
        let model = CostModel {
            alpha: 1e-3,
            beta: 1e9,
            send_overhead: 0.0,
            smp_serial_fraction: 0.0,
        };
        let mut sender = Ledger::new(model);
        let arrival = sender.on_send(7, 8_000); // transit = 1e-3 + 8e-6
        assert!(arrival > 1e-3);

        // Receiver that waits immediately pays the latency...
        let mut idle = Ledger::new(model);
        idle.on_recv_complete(arrival, 7, 8_000);
        assert!(idle.stats().comm_wait_s > 0.0);
        assert!((idle.vt() - arrival).abs() < 1e-15);

        // ...while a receiver that computed past the arrival pays nothing.
        let mut busy = Ledger::new(model);
        busy.add_compute(1.0);
        busy.on_recv_complete(arrival, 7, 8_000);
        assert_eq!(busy.stats().comm_wait_s, 0.0);
        assert!((busy.vt() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn collective_sync_takes_max() {
        let model = CostModel::default();
        let mut a = Ledger::new(model);
        a.add_compute(0.5);
        a.on_collective(2.0, 4);
        assert!(a.vt() >= 2.0);
        let behind_by = a.stats().comm_wait_s;
        assert!(behind_by >= 1.5);
    }

    #[test]
    fn stats_fold() {
        let model = CostModel::default();
        let mut a = Ledger::new(model);
        a.add_compute(1.0);
        let _ = a.on_send(3, 100);
        let mut b = Ledger::new(model);
        b.add_compute(2.0);
        let mut agg = a.stats();
        agg.fold_max(&b.stats());
        assert!((agg.compute_s - 2.0).abs() < 1e-15);
        assert_eq!(agg.msgs_sent, 1);
    }

    #[test]
    fn reset_clears_counters() {
        let mut l = Ledger::new(CostModel::default());
        l.add_compute(1.0);
        let _ = l.on_send(64, 64);
        l.reset();
        assert_eq!(l.stats(), CommStats::default());
        assert!(l.tag_stats().is_empty());
    }

    #[test]
    fn per_tag_breakdown_tracks_both_directions() {
        let model = CostModel::default();
        let mut l = Ledger::new(model);
        let a1 = l.on_send(0x0C01, 100);
        let _ = l.on_send(0x0C01, 50);
        let a2 = l.on_send(0x0C02, 8);
        l.on_recv_complete(a1, 0x0C01, 100);
        l.on_recv_complete(a2, 0x0C02, 8);
        let tags = l.tag_stats();
        let scatter = tags[&0x0C01];
        assert_eq!(scatter.bytes_sent, 150);
        assert_eq!(scatter.msgs_sent, 2);
        assert_eq!(scatter.bytes_recv, 100);
        assert_eq!(scatter.msgs_recv, 1);
        let gather = tags[&0x0C02];
        assert_eq!(gather.msgs_sent, 1);
        assert_eq!(gather.msgs_recv, 1);
        // The flat aggregate still matches the tag totals.
        let s = l.stats();
        assert_eq!(s.bytes_sent, 158);
        assert_eq!(s.msgs_recv, 2);
    }
}

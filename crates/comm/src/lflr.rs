//! Local-failure local-recovery (LFLR): crash detection, buddy
//! checkpoints, and world repair.
//!
//! PR 4 treated a rank crash as terminal: the first retry budget to run
//! out poisoned the world and every rank unwound with a typed abort. This
//! module replaces that with a ULFM-style local protocol:
//!
//! 1. **Detection** — when a retry budget runs out and LFLR is armed, the
//!    accuser sends a heartbeat probe on the control plane; the accused
//!    answers with `hb_pongs` pongs through its *data plane*. A crashed
//!    data plane tombstones the pongs, so tombstoned pongs are positive,
//!    deterministic evidence of death (silence or live pongs mean "slow" —
//!    the accuser re-grants the retry budget up to `hb_grace` times).
//! 2. **Agreement + revocation** — the accuser *revokes* the world: every
//!    armed rank unwinds from its next blocking point with a [`Revoked`]
//!    payload (after first draining any already-satisfiable operation, so
//!    completed collectives are consumed consistently). The solver catches
//!    it with [`catch_revoked`] and calls [`Comm::lflr_recover`], whose
//!    first rendezvous OR-combines the suspect sets — the agreement round.
//! 3. **Checkpoints** — every `k` solver iterations each rank packs its
//!    solver state, wraps it in the PR 4 FNV-checksummed envelope, and
//!    sends it to its buddy `(rank+1) % p` over the control plane while
//!    blocking (revoke-blind) on its ward's checkpoint. The control plane
//!    plus the "if any rank reaches checkpoint round K, all do" lemma
//!    (the previous iteration's final collective completed, and no
//!    blocking point separates it from the loop head) guarantee the
//!    exchange completes globally, so the set of committed checkpoint
//!    rounds is identical on every rank.
//! 4. **Repair** — [`Comm::lflr_recover`] heals the injector (the dead
//!    rank is "respawned" with working hardware), clears the revocation,
//!    purges half-completed collective slots, drains stale mailbox
//!    traffic, resets the reliable transport and collective sequence
//!    numbers to a fresh epoch, ships the dead rank its buddy-held
//!    checkpoint (checksum-verified on receipt), and barriers on a
//!    consistency check of the restore round. The solver then rolls every
//!    rank back to that round and continues.
//!
//! Determinism: all ranks roll back to the same globally-consistent
//! round and recompute with bitwise-identical arithmetic, so a recovered
//! solve produces the same solution bits as a fault-free run.

use crate::comm::Comm;
use crate::fault::{FaultKind, FaultReport};
use crate::payload::Payload;
use crate::reliable::{envelope_pack, envelope_unpack};
use crate::world::Message;

/// Control tag: buddy checkpoint payload (rank → its buddy).
pub const TAG_CKPT: u32 = crate::CTRL_TAG_BASE | 0x02;
/// Control tag: checkpoint restore (buddy → resurrected rank).
pub const TAG_CKPT_RESTORE: u32 = crate::CTRL_TAG_BASE | 0x03;
/// Control tag: heartbeat probe (accuser → accused).
pub const TAG_HB_PROBE: u32 = crate::CTRL_TAG_BASE | 0x04;
/// Data-plane tag: heartbeat pong (accused → accuser, through the
/// injector's crash state so a dead data plane tombstones it).
pub const TAG_HB_PONG: u32 = crate::CTRL_TAG_BASE | 0x05;

/// Collective sequence numbers at or above this value belong to recovery
/// rendezvous, which survive the slot purge and ignore the normal
/// per-rank collective counter (ranks may have diverged before revoking).
const RECOVERY_SEQ_BASE: u64 = 1 << 63;

/// Restore-round marker meaning "no checkpoint was ever committed":
/// every rank restarts the solve from scratch instead of rolling back.
const NO_CKPT_ROUND: u64 = u64::MAX;

/// Unwind payload of a world revocation. Armed ranks throw it from their
/// blocking comm points once a peer has been declared dead; the solver
/// catches it with [`catch_revoked`] and runs [`Comm::lflr_recover`].
#[derive(Debug, Clone)]
pub struct Revoked {
    /// Ranks declared dead by the accusers so far.
    pub suspects: Vec<usize>,
}

/// Run `f`, converting a [`Revoked`] unwind into `Err` (any other panic
/// keeps unwinding). This is the solver-side boundary of the LFLR
/// protocol: the closure is the solve attempt, the `Err` arm runs
/// [`Comm::lflr_recover`] and retries from the restored checkpoint.
pub fn catch_revoked<R>(f: impl FnOnce() -> R) -> Result<R, Revoked> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<Revoked>() {
            Ok(r) => Err(*r),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// What [`Comm::lflr_recover`] hands back to the solver.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Ranks that were declared dead and resurrected this round.
    pub dead: Vec<usize>,
    /// The globally-consistent checkpoint to roll back to: `(round,
    /// flattened solver state)`. `None` means the crash predated the
    /// first checkpoint — restart the solve from scratch.
    pub checkpoint: Option<(u64, Vec<f64>)>,
}

/// Per-rank LFLR state (lives inside [`Comm`]).
#[derive(Debug, Default)]
pub(crate) struct LflrState {
    /// Detection + recovery only run while a resilient solver has armed
    /// them; unarmed runs keep the exact PR 4 poison-and-abort contract.
    pub(crate) armed: bool,
    /// Retry-budget re-grants consumed on slow-but-alive peers.
    pub(crate) graces_used: u32,
    /// Monotone count of recoveries completed (keys the recovery
    /// rendezvous sequence numbers; never reset so sequence numbers stay
    /// unique across solves).
    pub(crate) recovery_round: u64,
    /// This rank's own last committed checkpoint.
    pub(crate) local_ckpt: Option<(u64, Vec<f64>)>,
    /// The last committed checkpoint of this rank's ward `(rank-1) % p`,
    /// held for the ward's resurrection.
    pub(crate) ward_ckpt: Option<(u64, Vec<f64>)>,
}

impl Comm {
    /// True when this universe runs under an active fault injector (the
    /// precondition for arming LFLR — without an injector there is
    /// nothing to detect or recover from).
    pub fn fault_active(&self) -> bool {
        self.world.fault.is_some()
    }

    /// Arm crash detection and recovery for the current solve. Returns
    /// `false` (and stays disarmed) without an active fault injector.
    /// Clears checkpoints from any previous solve — a rollback must never
    /// resurrect stale state.
    pub fn lflr_arm(&mut self) -> bool {
        if !self.fault_active() {
            return false;
        }
        // Expected Revoked unwinds should not spray backtraces even when
        // the run was not launched through `run_chaos`.
        crate::world::install_fault_abort_hook();
        self.lflr.armed = true;
        self.lflr.graces_used = 0;
        self.lflr.local_ckpt = None;
        self.lflr.ward_ckpt = None;
        true
    }

    /// Disarm LFLR (solver exit): blocking points go back to the PR 4
    /// poison-only contract.
    pub fn lflr_disarm(&mut self) {
        self.lflr.armed = false;
    }

    /// Whether LFLR detection/recovery is currently armed.
    pub fn lflr_armed(&self) -> bool {
        self.lflr.armed
    }

    /// Unwind with [`Revoked`] if an accuser has revoked the world and
    /// this rank is armed to handle it. Callers check *after* testing
    /// their own operation for satisfiability (drain-before-revoke):
    /// an already-completed collective or delivered message is consumed
    /// first, which is what keeps the set of committed checkpoint rounds
    /// globally consistent.
    pub(crate) fn check_revoked(&self) {
        if self.lflr.armed && self.world.revoked() {
            std::panic::panic_any(Revoked {
                suspects: self.world.revoke_suspects(),
            });
        }
    }

    /// Probe `peer` for liveness after its retry budget ran out. Returns
    /// `true` to re-grant the budget (peer is slow, grace remains),
    /// `false` to fall through to the typed abort (grace exhausted), or
    /// unwinds with [`Revoked`] after declaring the peer dead.
    pub(crate) fn probe_peer_liveness(&mut self, peer: usize) -> bool {
        let policy = self.reliable.policy;
        // Stale pongs from an earlier probe of the same peer would
        // short-circuit the verdict; drain them first (probes from this
        // rank are strictly sequential).
        while self
            .world
            .try_receive(self.rank, peer, TAG_HB_PONG)
            .is_some()
        {}
        let _ = self.isend_internal(peer, TAG_HB_PROBE, Payload::from_u64(vec![]));
        let want = policy.hb_pongs.max(1);
        let (mut live, mut dead) = (0u32, 0u32);
        let mut spins = 0u64;
        while live + dead < want && spins < policy.hb_spin {
            if let Some(msg) = self.world.try_receive(self.rank, peer, TAG_HB_PONG) {
                self.ledger
                    .on_recv_complete(msg.arrival_vt, TAG_HB_PONG, msg.payload.len_bytes());
                if msg.dropped {
                    dead += 1;
                } else {
                    live += 1;
                }
                continue;
            }
            self.world.check_poison(self.rank);
            // A concurrent accuser may already have revoked: join its
            // recovery instead of finishing this probe.
            self.check_revoked();
            self.service_resend_requests();
            spins += 1;
            std::thread::yield_now();
        }
        if dead > 0 {
            // Tombstoned pongs: the peer's data plane is dead. Declare it
            // and revoke the world so every rank enters recovery.
            self.world.revoke(&[peer]);
            std::panic::panic_any(Revoked {
                suspects: vec![peer],
            });
        }
        // Live pongs or silence: slow, not dead.
        if self.lflr.graces_used < policy.hb_grace {
            self.lflr.graces_used += 1;
            true
        } else {
            false
        }
    }

    /// Answer pending heartbeat probes: reply `hb_pongs` pongs through
    /// the data plane. A crashed data plane delivers them as tombstones —
    /// the deterministic death confession the accuser is waiting for.
    /// Called from `service_resend_requests`, i.e. from every blocking
    /// comm point, so a rank parked anywhere still answers.
    pub(crate) fn answer_liveness_probes(&mut self) {
        while let Some(msg) = self.world.try_receive_any(self.rank, TAG_HB_PROBE) {
            let pongs = self.reliable.policy.hb_pongs.max(1);
            let plane_dead = self
                .world
                .fault
                .as_ref()
                .is_some_and(|f| f.data_plane_dead(self.rank));
            for _ in 0..pongs {
                if plane_dead {
                    // The pong dies on the wire, deterministically: no
                    // random draw, so probe traffic never perturbs the
                    // per-link fault streams.
                    let arrival_vt = self.stamp_arrival(TAG_HB_PONG, 0);
                    self.world.deliver(
                        msg.src,
                        Message {
                            src: self.rank,
                            tag: TAG_HB_PONG,
                            payload: Payload::Bytes(Vec::new()),
                            arrival_vt,
                            dropped: true,
                        },
                    );
                } else {
                    let _ = self.isend_internal(msg.src, TAG_HB_PONG, Payload::from_u64(vec![1]));
                }
            }
        }
    }

    /// Take a buddy checkpoint of `data` at checkpoint round `round`:
    /// send it (FNV-checksummed envelope, control plane) to the buddy
    /// `(rank+1) % p`, block — revoke-blind — on the ward's symmetric
    /// checkpoint, then commit both. The blind wait is safe: if any rank
    /// reached this round's loop head, every rank does (see module docs),
    /// and checkpoint traffic rides the control plane, which a crash
    /// never touches. No-op unless LFLR is armed.
    pub fn checkpoint_exchange(&mut self, round: u64, data: &[f64]) {
        if !self.lflr.armed {
            return;
        }
        let guard = hymv_trace::SpanGuard::open(hymv_trace::Phase::Checkpoint, self.vt());
        hymv_trace::counter_add("hymv_ckpt_bytes_total", &[], (data.len() * 8) as u64);
        hymv_trace::counter_add("hymv_ckpt_taken_total", &[], 1);
        let p = self.size();
        if p == 1 {
            self.lflr.local_ckpt = Some((round, data.to_vec()));
            guard.close(self.vt());
            return;
        }
        let buddy = (self.rank + 1) % p;
        let ward = (self.rank + p - 1) % p;
        let h = self.isend_internal(buddy, TAG_CKPT, envelope_pack(round, data));
        self.confirm_send(h);
        let msg = loop {
            if let Some(m) = self.world.try_receive(self.rank, ward, TAG_CKPT) {
                break m;
            }
            self.world.check_poison(self.rank);
            self.service_resend_requests();
            std::thread::yield_now();
        };
        self.ledger
            .on_recv_complete(msg.arrival_vt, TAG_CKPT, msg.payload.len_bytes());
        match envelope_unpack(&msg.payload) {
            Ok((r, ward_data)) if r == round => {
                self.lflr.ward_ckpt = Some((round, ward_data));
                self.lflr.local_ckpt = Some((round, data.to_vec()));
            }
            // The control plane is reliable, so a mismatched or damaged
            // checkpoint is a protocol violation, not recoverable noise.
            _ => self.fault_abort(FaultReport {
                rank: self.rank,
                kind: FaultKind::CheckpointLost { dead: ward },
            }),
        }
        guard.close(self.vt());
    }

    /// The last checkpoint round this rank committed (testing hook).
    pub fn checkpoint_round(&self) -> Option<u64> {
        self.lflr.local_ckpt.as_ref().map(|(r, _)| *r)
    }

    /// Recovery rendezvous: a collective on a sequence number outside the
    /// normal epoch, polled without the revoke check (revocation is what
    /// brought us here).
    fn recovery_rendezvous(
        &mut self,
        seq: u64,
        contribution: Payload,
        combine: impl FnOnce(&mut Vec<Option<Payload>>) -> Vec<Payload>,
    ) -> Payload {
        self.world
            .rendezvous_post(self.rank, seq, self.vt(), Some(contribution), combine);
        loop {
            if let Some((max_vt, payload)) = self.world.try_rendezvous_result(self.rank, seq) {
                let size = self.size();
                self.ledger.on_collective(max_vt, size);
                return payload;
            }
            self.world.check_poison(self.rank);
            self.service_resend_requests();
            std::thread::yield_now();
        }
    }

    /// Repair the world after a revocation: agree on the dead set, heal
    /// the injector, resynchronize transport state, resurrect the dead
    /// rank from its buddy checkpoint, and verify the restore round is
    /// globally consistent. Collective — every armed rank calls this from
    /// its [`catch_revoked`] handler. Returns the dead set and the
    /// checkpoint this rank must roll back to.
    pub fn lflr_recover(&mut self) -> Recovery {
        let guard = hymv_trace::SpanGuard::open(hymv_trace::Phase::Recovery, self.vt());
        let round = self.lflr.recovery_round;
        self.lflr.recovery_round += 1;
        let p = self.size();
        let words = p.div_ceil(64);

        // Agreement round: OR-combine every rank's suspect bitmask. All
        // ranks reaching this rendezvous is also the signal that nobody
        // still polls a pre-revocation operation.
        let mut mask = vec![0u64; words];
        for s in self.world.revoke_suspects() {
            mask[s / 64] |= 1 << (s % 64);
        }
        let combined = self
            .recovery_rendezvous(
                RECOVERY_SEQ_BASE | (round * 2),
                Payload::from_u64(mask),
                move |contrib| {
                    let mut acc = vec![0u64; words];
                    for c in contrib.iter() {
                        if let Some(Payload::U64(w)) = c {
                            for (a, b) in acc.iter_mut().zip(w) {
                                *a |= b;
                            }
                        }
                    }
                    vec![Payload::from_u64(acc); contrib.len()]
                },
            )
            .into_u64();
        let dead: Vec<usize> = (0..p)
            .filter(|r| combined[r / 64] >> (r % 64) & 1 == 1)
            .collect();

        // Resurrect: heal the injector (the dead rank gets fresh
        // hardware), lift the revocation, and purge the half-completed
        // collective slots of the aborted epoch (their sequence numbers
        // will be reused after the reset below). Clearing and purging are
        // idempotent, and no rank can accuse again before the repaired
        // solve resumes, so every rank doing both here is safe.
        if let Some(f) = &self.world.fault {
            f.revive();
        }
        self.world.clear_revoke();
        self.world.purge_collective_slots_below(RECOVERY_SEQ_BASE);

        // Fresh transport epoch: drop stale in-flight traffic (keeping
        // only restore payloads, which a buddy may post before this rank
        // drains) and restart sequence numbers on every rank.
        self.world.drain_mailbox(self.rank, TAG_CKPT_RESTORE);
        self.reliable.reset();
        self.coll_seq = 0;
        self.lflr.graces_used = 0;

        // Restore shipping. A dead buddy of a dead rank would leave no
        // checkpoint replica — typed abort, not a wrong answer.
        for &d in &dead {
            let buddy = (d + 1) % p;
            if dead.contains(&buddy) {
                self.fault_abort(FaultReport {
                    rank: self.rank,
                    kind: FaultKind::CheckpointLost { dead: d },
                });
            }
            if self.rank == buddy {
                let env = match &self.lflr.ward_ckpt {
                    Some((r, data)) => envelope_pack(*r, data),
                    None => envelope_pack(NO_CKPT_ROUND, &[]),
                };
                let h = self.isend_internal(d, TAG_CKPT_RESTORE, env);
                self.confirm_send(h);
            }
        }
        let me_dead = dead.contains(&self.rank);
        let restored: Option<(u64, Vec<f64>)> = if me_dead {
            let buddy = (self.rank + 1) % p;
            let msg = loop {
                if let Some(m) = self.world.try_receive(self.rank, buddy, TAG_CKPT_RESTORE) {
                    break m;
                }
                self.world.check_poison(self.rank);
                self.service_resend_requests();
                std::thread::yield_now();
            };
            self.ledger
                .on_recv_complete(msg.arrival_vt, TAG_CKPT_RESTORE, msg.payload.len_bytes());
            hymv_trace::counter_add("hymv_restores_total", &[], 1);
            match envelope_unpack(&msg.payload) {
                Ok((NO_CKPT_ROUND, _)) => None,
                Ok((r, data)) => Some((r, data)),
                Err(_) => self.fault_abort(FaultReport {
                    rank: self.rank,
                    kind: FaultKind::CheckpointLost { dead: self.rank },
                }),
            }
        } else {
            self.lflr.local_ckpt.clone()
        };
        if me_dead {
            // The restored state is now this rank's committed checkpoint.
            self.lflr.local_ckpt = restored.clone();
        }

        // Consistency barrier: every rank must restore the same round.
        let my_round = restored.as_ref().map_or(NO_CKPT_ROUND, |(r, _)| *r);
        let rounds = self
            .recovery_rendezvous(
                RECOVERY_SEQ_BASE | (round * 2 + 1),
                Payload::from_u64(vec![my_round]),
                move |contrib| {
                    let (mut lo, mut hi) = (u64::MAX, u64::MIN);
                    for c in contrib.iter() {
                        if let Some(Payload::U64(w)) = c {
                            lo = lo.min(w[0]);
                            hi = hi.max(w[0]);
                        }
                    }
                    vec![Payload::from_u64(vec![lo, hi]); contrib.len()]
                },
            )
            .into_u64();
        if rounds[0] != rounds[1] {
            self.fault_abort(FaultReport {
                rank: self.rank,
                kind: FaultKind::CheckpointLost {
                    dead: dead.first().copied().unwrap_or(self.rank),
                },
            });
        }
        hymv_trace::counter_add("hymv_recoveries_total", &[], 1);
        guard.close(self.vt());
        Recovery {
            dead,
            checkpoint: restored,
        }
    }
}

//! The per-rank communicator handle.

use std::sync::Arc;

use crate::audit::AuditEventKind;
use crate::fault::{DeliverAs, FaultAbort, FaultReport, RetryPolicy};
use crate::ledger::{thread_cpu_time, CommStats, Ledger};
use crate::lflr::LflrState;
use crate::payload::Payload;
use crate::reliable::ReliableState;
use crate::world::{mix64, next_rand, Message, World};

/// A completed-immediately send token (sends are buffered: the payload is
/// moved into the receiver's mailbox at `isend` time, matching MPI's
/// buffered-send semantics which the paper's algorithms rely on).
#[derive(Debug, Clone, Copy)]
pub struct SendHandle {
    pub(crate) dst: usize,
    pub(crate) tag: u32,
}

impl SendHandle {
    /// Destination rank of the send.
    pub fn dst(&self) -> usize {
        self.dst
    }

    /// Tag of the send.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Waits for completion. Sends are buffered so there is nothing to
    /// block on, but completion is *recorded*: the ledger counts the send
    /// as confirmed and the protocol auditor sees its full lifetime
    /// (`SendPosted` … `SendCompleted`) instead of a fire-and-forget.
    pub fn wait(self, comm: &mut Comm) {
        comm.confirm_send(self);
    }
}

/// A posted non-blocking receive. Completing it (`wait`) blocks until a
/// matching message exists and advances the rank's virtual clock to the
/// message's modeled arrival time.
#[derive(Debug, Clone, Copy)]
pub struct RecvHandle {
    pub(crate) src: usize,
    pub(crate) tag: u32,
}

impl RecvHandle {
    /// Block until the matching message arrives; returns its payload.
    pub fn wait(self, comm: &mut Comm) -> Payload {
        comm.complete_recv(self.src, self.tag)
    }

    /// Non-blocking test; returns the payload if the message is already in
    /// the mailbox.
    pub fn test(self, comm: &mut Comm) -> Option<Payload> {
        comm.try_complete_recv(self.src, self.tag)
    }
}

/// A posted non-blocking allreduce (see [`Comm::iallreduce_sum_vec`]).
#[derive(Debug, Clone, Copy)]
pub struct IallreduceHandle {
    pub(crate) seq: u64,
}

impl IallreduceHandle {
    /// Block until every rank has contributed; returns the element-wise
    /// sums and synchronizes the virtual clock.
    pub fn wait(self, comm: &mut Comm) -> Vec<f64> {
        comm.iallreduce_wait(self)
    }
}

/// One rank's communicator: point-to-point, collectives, the virtual-time
/// ledger, and the reliable envelope layer's per-rank state.
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) world: Arc<World>,
    pub(crate) ledger: Ledger,
    /// Reset to 0 by LFLR world repair (a fresh collective epoch), so it
    /// lives behind a crate-visible field rather than a local.
    pub(crate) coll_seq: u64,
    /// Per-rank jitter stream under schedule perturbation (None otherwise).
    jitter: Option<u64>,
    /// Sequence numbers, retransmit window, and dedup state of the
    /// reliable envelope transport (see `crate::reliable`).
    pub(crate) reliable: ReliableState,
    /// Local-failure local-recovery state (see `crate::lflr`).
    pub(crate) lflr: LflrState,
}

impl Comm {
    pub(crate) fn new(rank: usize, world: Arc<World>) -> Self {
        let ledger = Ledger::new(world.model);
        let jitter = world
            .perturb_seed
            .map(|s| mix64(s.wrapping_add(mix64(rank as u64 + 1))));
        let reliable = ReliableState::new(world.retry);
        Comm {
            rank,
            world,
            ledger,
            coll_seq: 0,
            jitter,
            reliable,
            lflr: LflrState::default(),
        }
    }

    /// Records this rank's clean exit in the audit log (called by the
    /// universe after the SPMD closure returns).
    pub(crate) fn note_exit(&self) {
        if let Some(log) = &self.world.audit {
            log.record(self.rank, AuditEventKind::RankExited);
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Immutable view of the virtual-time ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Current virtual time, seconds.
    pub fn vt(&self) -> f64 {
        self.ledger.vt()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CommStats {
        self.ledger.stats()
    }

    /// Reset the ledger (between timed phases of an experiment). Collective:
    /// internally barriers first so no rank resets while messages from the
    /// previous phase are in flight.
    pub fn reset_ledger(&mut self) {
        self.barrier();
        self.ledger.reset();
    }

    // ---------------------------------------------------------------- p2p

    /// Non-blocking (buffered) send on the **reliable** fabric: never
    /// fault-injected, mirroring MPI's guaranteed delivery. Fault studies
    /// go through [`Comm::isend_unreliable`] (via the envelope API).
    pub fn isend(&mut self, dst: usize, tag: u32, payload: Payload) -> SendHandle {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        crate::assert_tag_valid(tag);
        self.isend_internal(dst, tag, payload)
    }

    /// Non-blocking send through the fault injector (when one is active):
    /// the message may be dropped (delivered as a tombstone), duplicated,
    /// reordered, delayed, or bit-flipped according to the world's
    /// [`FaultPlan`](crate::FaultPlan). Payloads sent here **must** be
    /// protected by the envelope layer — a tombstone reaching a raw
    /// receive is a panic, because raw receives cannot recover.
    pub fn isend_unreliable(&mut self, dst: usize, tag: u32, payload: Payload) -> SendHandle {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        crate::assert_tag_valid(tag);
        let Some(decision) = self.world.fault.as_ref().map(|f| f.decide(self.rank, dst)) else {
            return self.isend_internal(dst, tag, payload);
        };
        let base_arrival = self.stamp_arrival(tag, payload.len_bytes());
        let vt = self.ledger.vt();
        hymv_trace::flight::record_send(dst, tag, payload.len_bytes(), vt);
        // A straggler link stretches the modeled transit only; the payload
        // and its eventual position in the residual history are untouched.
        let arrival_vt = vt + (base_arrival - vt) * decision.delay_mult;
        let (payload, dropped) = match decision.deliver {
            DeliverAs::Data => (payload, false),
            DeliverAs::Tombstone => (Payload::Bytes(Vec::new()), true),
            DeliverAs::Corrupt { bit } => {
                let mut p = payload;
                p.corrupt_bit(bit);
                (p, false)
            }
        };
        let duplicate = decision.duplicate.then(|| Message {
            src: self.rank,
            tag,
            payload: payload.clone(),
            // The copy trails the original by one latency unit.
            arrival_vt: arrival_vt + self.ledger.model().alpha,
            dropped,
        });
        let msg = Message {
            src: self.rank,
            tag,
            payload,
            arrival_vt,
            dropped,
        };
        match decision.reorder_pos {
            Some(pos) => self.world.deliver_shuffled(dst, msg, pos),
            None => self.world.deliver(dst, msg),
        }
        if let Some(dup) = duplicate {
            self.world.deliver(dst, dup);
        }
        SendHandle { dst, tag }
    }

    /// Unchecked-tag send on the reliable fabric (internal: also carries
    /// the control-band traffic of the reliable layer).
    pub(crate) fn isend_internal(&mut self, dst: usize, tag: u32, payload: Payload) -> SendHandle {
        let bytes = payload.len_bytes();
        let arrival_vt = self.stamp_arrival(tag, bytes);
        hymv_trace::flight::record_send(dst, tag, bytes, self.ledger.vt());
        self.world.deliver(
            dst,
            Message {
                src: self.rank,
                tag,
                payload,
                arrival_vt,
                dropped: false,
            },
        );
        SendHandle { dst, tag }
    }

    /// Charge a send to the ledger and compute its modeled arrival stamp
    /// (with the perturbation jitter applied when enabled).
    pub(crate) fn stamp_arrival(&mut self, tag: u32, bytes: usize) -> f64 {
        hymv_trace::histogram_record("hymv_msg_bytes", &[], bytes as u64);
        let mut arrival_vt = self.ledger.on_send(tag, bytes);
        if let Some(state) = &mut self.jitter {
            // Stretch the modeled transit by a random factor in [1, 2).
            // Only the virtual-time stamp moves — payloads are untouched —
            // so a schedule-deterministic program produces bitwise-equal
            // results while wait/overlap orderings get shaken.
            let unit = (next_rand(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let vt = self.ledger.vt();
            arrival_vt = vt + (arrival_vt - vt) * (1.0 + unit);
        }
        arrival_vt
    }

    /// Record a send's completion in the ledger and audit log (the body of
    /// [`SendHandle::wait`]).
    pub(crate) fn confirm_send(&mut self, h: SendHandle) {
        self.ledger.on_send_confirmed();
        if let Some(log) = &self.world.audit {
            log.record(
                self.rank,
                AuditEventKind::SendCompleted {
                    dst: h.dst,
                    tag: h.tag,
                },
            );
        }
    }

    /// Post a non-blocking receive from `src` with `tag`.
    pub fn irecv(&mut self, src: usize, tag: u32) -> RecvHandle {
        assert!(src < self.size(), "source rank {src} out of range");
        crate::assert_tag_valid(tag);
        RecvHandle { src, tag }
    }

    /// Blocking send (buffered, so identical to `isend`).
    pub fn send(&mut self, dst: usize, tag: u32, payload: Payload) {
        let _ = self.isend(dst, tag, payload);
    }

    /// Blocking receive.
    pub fn recv(&mut self, src: usize, tag: u32) -> Payload {
        assert!(src < self.size(), "source rank {src} out of range");
        crate::assert_tag_valid(tag);
        self.complete_recv(src, tag)
    }

    /// Blocking wildcard receive: the first available message with `tag`
    /// from any source; returns `(src, payload)`. **Order-sensitive**: with
    /// several senders the matching order is a property of the schedule,
    /// not the program — any reduction folded in `recv_any` arrival order
    /// must be order-insensitive (or bitwise-checked under
    /// `hymv_check::run_perturbed`).
    pub fn recv_any(&mut self, tag: u32) -> (usize, Payload) {
        crate::assert_tag_valid(tag);
        let msg = if self.world.fault.is_some() {
            self.serviced_receive_any(tag)
        } else {
            self.world.receive_any(self.rank, tag)
        };
        self.expect_live(&msg);
        self.ledger
            .on_recv_complete(msg.arrival_vt, tag, msg.payload.len_bytes());
        hymv_trace::flight::record_recv(msg.src, tag, msg.payload.len_bytes(), msg.arrival_vt);
        (msg.src, msg.payload)
    }

    fn complete_recv(&mut self, src: usize, tag: u32) -> Payload {
        let msg = self.blocking_receive(src, tag);
        self.expect_live(&msg);
        self.ledger
            .on_recv_complete(msg.arrival_vt, tag, msg.payload.len_bytes());
        hymv_trace::flight::record_recv(msg.src, tag, msg.payload.len_bytes(), msg.arrival_vt);
        msg.payload
    }

    fn try_complete_recv(&mut self, src: usize, tag: u32) -> Option<Payload> {
        self.world.try_receive(self.rank, src, tag).map(|msg| {
            self.expect_live(&msg);
            self.ledger
                .on_recv_complete(msg.arrival_vt, tag, msg.payload.len_bytes());
            hymv_trace::flight::record_recv(msg.src, tag, msg.payload.len_bytes(), msg.arrival_vt);
            msg.payload
        })
    }

    /// Blocking matched receive that may return a tombstone. With no
    /// injector this is the plain condvar wait; under fault injection it
    /// polls, so the rank keeps servicing reliable-layer retransmission
    /// requests (and notices a poisoned world) while "blocked" — a rank
    /// stuck in a plain wait could otherwise deadlock a neighbour whose
    /// recovery needs this rank to resend.
    pub(crate) fn blocking_receive(&mut self, src: usize, tag: u32) -> Message {
        if self.world.fault.is_none() {
            return self.world.receive(self.rank, src, tag);
        }
        loop {
            // Satisfiability first, revoke second: an already-delivered
            // message is consumed even mid-revocation (see `crate::lflr`).
            if let Some(msg) = self.world.try_receive(self.rank, src, tag) {
                return msg;
            }
            self.world.check_poison(self.rank);
            self.check_revoked();
            self.service_resend_requests();
            std::thread::yield_now();
        }
    }

    /// Wildcard counterpart of [`Comm::blocking_receive`].
    fn serviced_receive_any(&mut self, tag: u32) -> Message {
        loop {
            if let Some(msg) = self.world.try_receive_any(self.rank, tag) {
                return msg;
            }
            self.world.check_poison(self.rank);
            self.check_revoked();
            self.service_resend_requests();
            std::thread::yield_now();
        }
    }

    /// Raw receives have no recovery protocol, so a tombstone reaching one
    /// is a programming error (traffic sent through the injector without
    /// the envelope API).
    fn expect_live(&self, msg: &Message) {
        assert!(
            !msg.dropped,
            "rank {}: dropped message (src {}, tag {:#x}) reached a raw receive; \
             fault-injected traffic must go through the envelope API \
             (send_enveloped/recv_enveloped)",
            self.rank, msg.src, msg.tag
        );
    }

    /// True once the reliable layer has seen enough timeouts to give up on
    /// overlap (see `RetryPolicy::degrade_after`); operators consult this
    /// to fall back from the overlapped to the blocking exchange schedule.
    pub fn degraded(&self) -> bool {
        self.reliable.degraded
    }

    /// The retry/backoff policy this rank runs under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.reliable.policy
    }

    /// Fault-scoped sends the injector's crash rank has posted so far
    /// (`None` without an injector or a crash spec). Calibration hook for
    /// crash-window tests: a run with an unreachable `after_sends` reads
    /// this at phase boundaries to place real triggers inside a phase.
    pub fn crash_sends_posted(&self) -> Option<u64> {
        self.world
            .fault
            .as_ref()
            .and_then(|f| f.crash_sends_posted())
    }

    /// Record the typed report, poison the world so every other rank
    /// unwinds from its blocking waits, and abort this rank.
    pub(crate) fn fault_abort(&self, report: FaultReport) -> ! {
        self.world.poison(report.clone());
        std::panic::panic_any(FaultAbort(report));
    }

    // ------------------------------------------------------------ compute

    /// Run a compute section, charging its thread-CPU duration to the
    /// virtual clock. Returns the closure's value.
    ///
    /// The `work`/`traced` wrappers are the *sanctioned* timing APIs: their
    /// ledger/clock reads are the cost model itself, not stray
    /// nondeterminism, so effect inference pins them pure. Closure bodies
    /// are not hidden by the pin — their call sites are textually in the
    /// caller and are attributed there.
    // verify: pure
    pub fn work<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = thread_cpu_time();
        let out = f();
        self.ledger.add_compute(thread_cpu_time() - t0);
        out
    }

    /// Run a shared-memory-parallel ("OpenMP") compute section. The section
    /// executes on the calling thread; its measured CPU time is divided by
    /// the cost model's Amdahl speedup for `threads` threads. On a
    /// many-core host this models what `#pragma omp parallel for` over the
    /// elemental loop achieves; the host here has one core (see crate docs).
    // verify: pure
    pub fn work_smp<R>(&mut self, threads: usize, f: impl FnOnce() -> R) -> R {
        let t0 = thread_cpu_time();
        let out = f();
        let dt = thread_cpu_time() - t0;
        let speedup = self.ledger.model().smp_speedup(threads);
        self.ledger.add_compute(dt / speedup);
        out
    }

    /// Advance the virtual clock by an externally-modeled duration (e.g. a
    /// simulated GPU phase whose timeline is produced by `hymv-gpu`).
    pub fn add_modeled_time(&mut self, seconds: f64) {
        self.ledger.add_compute(seconds);
    }

    /// Like [`Comm::work`], but the closure also gets the communicator, so
    /// compute that is interleaved with sends (packing a buffer, then
    /// posting it) still charges its CPU time without the caller reading
    /// the thread clock directly. Time spent *inside* nested comm calls is
    /// measured CPU time too — which is what the sender actually burns on
    /// this substrate, where "the network" is memcpy into a mailbox.
    // verify: pure
    pub fn work_with<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = thread_cpu_time();
        let out = f(self);
        self.ledger.add_compute(thread_cpu_time() - t0);
        out
    }

    /// [`Comm::work_with`] that also returns the charged duration in
    /// seconds — for callers that keep their own phase breakdowns (e.g.
    /// operator setup timings).
    // verify: pure
    pub fn timed_work<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, f64) {
        let t0 = thread_cpu_time();
        let out = f(self);
        let dt = (thread_cpu_time() - t0).max(0.0);
        self.ledger.add_compute(dt);
        (out, dt)
    }

    // ------------------------------------------------------------- tracing

    /// Run `f` inside a trace span of `phase`, stamped with this rank's
    /// virtual time on entry and exit. A no-op wrapper (two relaxed atomic
    /// loads) when tracing is disabled. Spans nest. Pinned pure like the
    /// `work` family: span bookkeeping (including the tracer's node
    /// allocation on close) is observability plumbing, not algorithm
    /// effects.
    // verify: pure
    pub fn traced<R>(&mut self, phase: hymv_trace::Phase, f: impl FnOnce(&mut Self) -> R) -> R {
        let guard = hymv_trace::SpanGuard::open(phase, self.vt());
        let out = f(self);
        guard.close(self.vt());
        out
    }

    /// Publish this rank's ledger counters into the open trace session's
    /// metrics registry (called by the universe once the SPMD closure
    /// returns on a traced run). Per-tag traffic becomes labeled counters;
    /// clocks become gauges.
    pub(crate) fn publish_trace_metrics(&self) {
        let s = self.ledger.stats();
        hymv_trace::gauge_set("hymv_vt_seconds", &[], s.vt);
        hymv_trace::gauge_set("hymv_compute_seconds", &[], s.compute_s);
        hymv_trace::gauge_set("hymv_comm_wait_seconds", &[], s.comm_wait_s);
        hymv_trace::counter_add("hymv_sends_confirmed_total", &[], s.sends_confirmed);
        hymv_trace::counter_add("hymv_retries_total", &[], s.retries);
        hymv_trace::counter_add("hymv_timeouts_total", &[], s.timeouts);
        hymv_trace::counter_add("hymv_dups_suppressed_total", &[], s.dups_suppressed);
        hymv_trace::counter_add("hymv_corrupt_detected_total", &[], s.corrupt_detected);
        for (&tag, t) in self.ledger.tag_stats() {
            let label = hymv_trace::tag_label(tag);
            let labels: &[(&str, &str)] = &[("tag", label.as_str())];
            hymv_trace::counter_add("hymv_bytes_sent_total", labels, t.bytes_sent);
            hymv_trace::counter_add("hymv_msgs_sent_total", labels, t.msgs_sent);
            hymv_trace::counter_add("hymv_bytes_recv_total", labels, t.bytes_recv);
            hymv_trace::counter_add("hymv_msgs_recv_total", labels, t.msgs_recv);
        }
    }

    /// Refresh this rank's live telemetry: set the clock/utilization
    /// gauges and publish a *replacement* copy of the rank's current
    /// metrics registry to the configured live transports (HTTP
    /// endpoint / snapshot file). Unlike [`Comm::publish_trace_metrics`]
    /// this re-folds no counters, so calling it at every batch boundary
    /// is safe. One relaxed atomic load when no transport is configured.
    pub fn publish_live(&self) {
        if !hymv_trace::live::live_enabled() {
            return;
        }
        let s = self.ledger.stats();
        hymv_trace::gauge_set("hymv_vt_seconds", &[], s.vt);
        hymv_trace::gauge_set("hymv_compute_seconds", &[], s.compute_s);
        hymv_trace::gauge_set("hymv_comm_wait_seconds", &[], s.comm_wait_s);
        let util = if s.vt > 0.0 { s.compute_s / s.vt } else { 0.0 };
        hymv_trace::gauge_set("hymv_rank_utilization", &[], util);
        hymv_trace::rank_live_publish();
    }

    /// Collective flight-recorder postmortem for a run that *survives*
    /// its incident (a failed batch, as opposed to a typed abort): every
    /// rank snapshots its ring while still alive, and after the barrier
    /// rank 0 renders and stores the artifact. Returns the JSON on rank
    /// 0, `None` elsewhere. The trailing barrier keeps a later
    /// incident's snapshots from racing this dump.
    // verify: collective-entry
    pub fn flight_postmortem(&mut self, reason: &str) -> Option<String> {
        hymv_trace::flight::rank_snapshot();
        self.barrier();
        let out = (self.rank == 0).then(|| hymv_trace::flight::dump(self.world.flight_run, reason));
        self.barrier();
        out
    }

    // -------------------------------------------------------- collectives

    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    /// Post + await a rendezvous. The await is serviced: under fault
    /// injection a rank parked in a collective still answers its
    /// neighbours' retransmission requests and notices a poisoned world —
    /// without this, a sender sitting in an allreduce while its neighbour
    /// retries a lost ghost message would deadlock the pair.
    fn rendezvous_serviced(
        &mut self,
        seq: u64,
        contribution: Option<Payload>,
        combine: impl FnOnce(&mut Vec<Option<Payload>>) -> Vec<Payload>,
    ) -> (f64, Payload) {
        self.world
            .rendezvous_post(self.rank, seq, self.vt(), contribution, combine);
        self.coll_await(seq)
    }

    /// Blocking half of a collective, fault-aware (see
    /// [`Comm::rendezvous_serviced`]).
    fn coll_await(&mut self, seq: u64) -> (f64, Payload) {
        if self.world.fault.is_none() {
            return self.world.rendezvous_await(self.rank, seq);
        }
        loop {
            // Completed collectives are consumed before the revoke check
            // so every rank that can consume a result does — the
            // drain-before-revoke ordering the checkpoint-consistency
            // lemma in `crate::lflr` relies on.
            if let Some(out) = self.world.try_rendezvous_result(self.rank, seq) {
                return out;
            }
            self.world.check_poison(self.rank);
            self.check_revoked();
            self.service_resend_requests();
            std::thread::yield_now();
        }
    }

    /// Synchronize all ranks (virtual clocks advance to the global max).
    pub fn barrier(&mut self) {
        let seq = self.next_seq();
        let size = self.size();
        let (max_vt, _) =
            self.rendezvous_serviced(seq, None, |_| vec![Payload::Bytes(Vec::new()); size]);
        self.ledger.on_collective(max_vt, size);
    }

    /// Global sum of one f64.
    pub fn allreduce_sum_f64(&mut self, x: f64) -> f64 {
        self.allreduce_f64(x, |a, b| a + b)
    }

    /// Global max of one f64.
    pub fn allreduce_max_f64(&mut self, x: f64) -> f64 {
        self.allreduce_f64(x, f64::max)
    }

    /// Global min of one f64.
    pub fn allreduce_min_f64(&mut self, x: f64) -> f64 {
        self.allreduce_f64(x, f64::min)
    }

    fn allreduce_f64(&mut self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let seq = self.next_seq();
        let size = self.size();
        let (max_vt, result) =
            self.rendezvous_serviced(seq, Some(Payload::from_f64(vec![x])), move |contrib| {
                let acc = contrib
                    .iter()
                    .map(|c| match c {
                        Some(Payload::F64(v)) => v[0],
                        _ => unreachable!("allreduce contributions are F64"),
                    })
                    .reduce(&op)
                    .expect("size >= 1");
                vec![Payload::from_f64(vec![acc]); size]
            });
        self.ledger.on_collective(max_vt, size);
        result.into_f64()[0]
    }

    /// Global sum of one u64.
    pub fn allreduce_sum_u64(&mut self, x: u64) -> u64 {
        self.allreduce_u64(x, |a, b| a + b)
    }

    /// Global max of one u64.
    pub fn allreduce_max_u64(&mut self, x: u64) -> u64 {
        self.allreduce_u64(x, u64::max)
    }

    fn allreduce_u64(&mut self, x: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let seq = self.next_seq();
        let size = self.size();
        let (max_vt, result) =
            self.rendezvous_serviced(seq, Some(Payload::from_u64(vec![x])), move |contrib| {
                let acc = contrib
                    .iter()
                    .map(|c| match c {
                        Some(Payload::U64(v)) => v[0],
                        _ => unreachable!("allreduce contributions are U64"),
                    })
                    .reduce(&op)
                    .expect("size >= 1");
                vec![Payload::from_u64(vec![acc]); size]
            });
        self.ledger.on_collective(max_vt, size);
        result.into_u64()[0]
    }

    /// Post a non-blocking element-wise vector sum-allreduce (MPI's
    /// `MPI_Iallreduce`). Complete it with [`IallreduceHandle::wait`];
    /// computation in between absorbs the collective's latency — the
    /// mechanism pipelined Krylov methods exploit.
    pub fn iallreduce_sum_vec(&mut self, vals: Vec<f64>) -> IallreduceHandle {
        let seq = self.next_seq();
        let size = self.size();
        let len = vals.len();
        self.world.rendezvous_post(
            self.rank,
            seq,
            self.vt(),
            Some(Payload::from_f64(vals)),
            move |contrib| {
                let mut acc = vec![0.0f64; len];
                for c in contrib.iter() {
                    match c {
                        Some(Payload::F64(v)) => {
                            debug_assert_eq!(v.len(), len, "mismatched iallreduce lengths");
                            for (a, b) in acc.iter_mut().zip(v) {
                                *a += b;
                            }
                        }
                        _ => unreachable!("iallreduce contributions are F64"),
                    }
                }
                vec![Payload::from_f64(acc); size]
            },
        );
        IallreduceHandle { seq }
    }

    /// Complete a posted non-blocking allreduce.
    pub(crate) fn iallreduce_wait(&mut self, h: IallreduceHandle) -> Vec<f64> {
        let size = self.size();
        let (max_vt, result) = self.coll_await(h.seq);
        self.ledger.on_collective(max_vt, size);
        result.into_f64()
    }

    /// Every rank contributes a `u64` list; all ranks receive all lists,
    /// ordered by rank.
    pub fn allgather_u64(&mut self, mine: Vec<u64>) -> Vec<Vec<u64>> {
        let seq = self.next_seq();
        let size = self.size();
        let (max_vt, result) =
            self.rendezvous_serviced(seq, Some(Payload::from_u64(mine)), move |contrib| {
                // Flatten with length prefixes so one payload carries all.
                let mut flat = Vec::new();
                for c in contrib.iter() {
                    match c {
                        Some(Payload::U64(v)) => {
                            flat.push(v.len() as u64);
                            flat.extend_from_slice(v);
                        }
                        _ => unreachable!("allgather contributions are U64"),
                    }
                }
                vec![Payload::from_u64(flat); size]
            });
        self.ledger.on_collective(max_vt, size);
        let flat = result.into_u64();
        let mut out = Vec::with_capacity(size);
        let mut i = 0;
        for _ in 0..size {
            let n = flat[i] as usize;
            out.push(flat[i + 1..i + 1 + n].to_vec());
            i += 1 + n;
        }
        out
    }

    /// Broadcast a payload from `root` to all ranks.
    pub fn bcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        assert!(root < self.size(), "broadcast root {root} out of range");
        debug_assert_eq!(
            self.rank == root,
            payload.is_some(),
            "exactly the root supplies the broadcast payload"
        );
        let seq = self.next_seq();
        let size = self.size();
        let (max_vt, result) = self.rendezvous_serviced(seq, payload, move |contrib| {
            let p = contrib[root].take().expect("root contributed");
            vec![p; size]
        });
        self.ledger.on_collective(max_vt, size);
        result
    }

    /// Sparse all-to-all: each rank sends `(dest, payload)` pairs; returns
    /// the `(src, payload)` pairs addressed to this rank, sorted by source.
    ///
    /// Receivers do not know their senders a priori (the situation during
    /// LNSM/GNGM construction), so a lightweight rendezvous first exchanges
    /// the sender→receiver incidence, then payloads move point-to-point.
    pub fn exchange_sparse(
        &mut self,
        msgs: Vec<(usize, Payload)>,
        tag: u32,
    ) -> Vec<(usize, Payload)> {
        crate::assert_tag_valid(tag);
        for (dst, _) in &msgs {
            assert!(*dst < self.size(), "destination rank {dst} out of range");
        }
        let dests: Vec<u64> = msgs.iter().map(|(d, _)| *d as u64).collect();
        let incidence = self.allgather_u64(dests);

        // Who will send to me, in rank order (duplicates allowed).
        let mut senders: Vec<usize> = Vec::new();
        for (src, dests) in incidence.iter().enumerate() {
            for d in dests {
                if *d as usize == self.rank {
                    senders.push(src);
                }
            }
        }
        senders.sort_unstable();

        for (dst, payload) in msgs {
            let _ = self.isend(dst, tag, payload);
        }

        let mut out = Vec::with_capacity(senders.len());
        for src in senders {
            let payload = self.complete_recv(src, tag);
            out.push((src, payload));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Universe;

    #[test]
    fn allreduce_sum_and_max() {
        let out = Universe::run(5, |c| {
            let s = c.allreduce_sum_f64(c.rank() as f64);
            let m = c.allreduce_max_f64(c.rank() as f64);
            let su = c.allreduce_sum_u64(1);
            let mu = c.allreduce_max_u64(c.rank() as u64 * 10);
            (s, m, su, mu)
        });
        for (s, m, su, mu) in out {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
            assert_eq!(su, 5);
            assert_eq!(mu, 40);
        }
    }

    #[test]
    fn allreduce_min() {
        let out = Universe::run(4, |c| c.allreduce_min_f64(10.0 - c.rank() as f64));
        assert!(out.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn allgather_roundtrip() {
        let out = Universe::run(4, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            c.allgather_u64(mine)
        });
        for gathered in out {
            assert_eq!(gathered.len(), 4);
            for (r, v) in gathered.iter().enumerate() {
                assert_eq!(v, &(0..r as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = Universe::run(3, |c| {
            let p = if c.rank() == 2 {
                Some(Payload::from_f64(vec![3.25]))
            } else {
                None
            };
            c.bcast(2, p).into_f64()
        });
        assert!(out.iter().all(|v| v == &vec![3.25]));
    }

    #[test]
    fn nonblocking_overlap_absorbs_latency() {
        // Rank 1 computes while the message is in flight; its comm wait must
        // be (nearly) zero while an eager waiter would pay latency.
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 1, Payload::from_f64(vec![1.0; 1024]));
                0.0
            } else {
                let h = c.irecv(0, 1);
                c.work(|| {
                    let mut acc = 0.0f64;
                    for i in 0..200_000 {
                        acc += (i as f64).sin();
                    }
                    acc
                });
                let _ = h.wait(c);
                c.stats().comm_wait_s
            }
        });
        // The compute section should exceed the modeled microseconds of
        // transit, so wait time is zero.
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn exchange_sparse_delivers_all() {
        // Every rank sends its rank id to every even rank.
        let out = Universe::run(4, |c| {
            let msgs: Vec<(usize, Payload)> = (0..c.size())
                .filter(|d| d % 2 == 0)
                .map(|d| (d, Payload::from_u64(vec![c.rank() as u64])))
                .collect();
            c.exchange_sparse(msgs, 3)
        });
        // Even ranks received from everyone, odd ranks from no one.
        assert_eq!(out[0].len(), 4);
        assert_eq!(out[1].len(), 0);
        assert_eq!(out[2].len(), 4);
        assert_eq!(out[3].len(), 0);
        let srcs: Vec<usize> = out[0].iter().map(|(s, _)| *s).collect();
        assert_eq!(srcs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_send_works() {
        let out = Universe::run(2, |c| {
            let me = c.rank();
            c.isend(me, 4, Payload::from_u64(vec![me as u64]));
            c.recv(me, 4).into_u64()[0]
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn reset_ledger_is_collective_and_clears() {
        let out = Universe::run(3, |c| {
            c.allreduce_sum_f64(1.0);
            c.reset_ledger();
            c.stats().msgs_sent
        });
        assert!(out.iter().all(|&m| m == 0));
    }

    #[test]
    fn barrier_syncs_virtual_clocks() {
        let out = Universe::run(3, |c| {
            if c.rank() == 0 {
                c.add_modeled_time(1.0);
            }
            c.barrier();
            c.vt()
        });
        for vt in out {
            assert!(vt >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected() {
        let _ = Universe::run(1, |c| {
            c.isend(0, crate::RESERVED_TAG_BASE + 1, Payload::from_f64(vec![]));
        });
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected_irecv() {
        let _ = Universe::run(1, |c| {
            let _ = c.irecv(0, crate::RESERVED_TAG_BASE);
        });
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected_recv() {
        let _ = Universe::run(1, |c| {
            let _ = c.recv(0, u32::MAX);
        });
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected_recv_any() {
        let _ = Universe::run(1, |c| {
            let _ = c.recv_any(crate::RESERVED_TAG_BASE + 42);
        });
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected_send() {
        let _ = Universe::run(1, |c| {
            c.send(0, crate::RESERVED_TAG_BASE + 3, Payload::from_u64(vec![1]));
        });
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected_exchange_sparse() {
        let _ = Universe::run(1, |c| {
            let _ = c.exchange_sparse(Vec::new(), crate::RESERVED_TAG_BASE + 9);
        });
    }

    #[test]
    fn recv_any_collects_all_sources() {
        let out = Universe::run(4, |c| {
            if c.rank() == 0 {
                let mut got: Vec<u64> = (0..3).map(|_| c.recv_any(6).1.into_u64()[0]).collect();
                got.sort_unstable();
                got
            } else {
                c.isend(0, 6, Payload::from_u64(vec![c.rank() as u64 * 100]));
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![100, 200, 300]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_rejected() {
        let _ = Universe::run(2, |c| {
            c.isend(5, 0, Payload::from_f64(vec![]));
        });
    }

    #[test]
    fn iallreduce_overlaps_and_sums() {
        let out = Universe::run(3, |c| {
            let h = c.iallreduce_sum_vec(vec![c.rank() as f64, 1.0]);
            // Compute while the reduction is in flight.
            let local = c.work(|| (0..10_000).map(|i| (i as f64).sqrt()).sum::<f64>());
            assert!(local > 0.0);
            h.wait(c)
        });
        for v in out {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn iallreduce_multiple_in_flight() {
        let out = Universe::run(2, |c| {
            let h1 = c.iallreduce_sum_vec(vec![1.0]);
            let h2 = c.iallreduce_sum_vec(vec![10.0]);
            let a = h1.wait(c);
            let b = h2.wait(c);
            (a[0], b[0])
        });
        assert!(out.iter().all(|&(a, b)| a == 2.0 && b == 20.0));
    }

    #[test]
    fn irecv_test_polls() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.barrier(); // ensure rank 1 polled once before the send
                c.isend(1, 8, Payload::from_u64(vec![42]));
                c.barrier();
                0
            } else {
                let h = c.irecv(0, 8);
                assert!(h.test(c).is_none());
                c.barrier();
                c.barrier();
                h.test(c).map_or(0, |p| p.into_u64()[0])
            }
        });
        assert_eq!(out[1], 42);
    }
}

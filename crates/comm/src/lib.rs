//! # hymv-comm — an MPI-like message-passing substrate
//!
//! HYMV (the adaptive-matrix SPMV of Tran et al., IPDPS 2022) was evaluated
//! with MPI on TACC Frontera. This crate provides the distributed-memory
//! runtime the library is written against, as an *in-process* substrate:
//! every MPI **rank is an OS thread** with a blocking mailbox, and the API
//! mirrors the subset of MPI the paper's algorithms need —
//! non-blocking point-to-point sends/receives (for the LNSM scatter and GNGM
//! gather with computation/communication overlap), barriers, reductions,
//! gathers, and a sparse all-to-all used during map construction.
//!
//! ## Virtual time
//!
//! The reproduction host is a single-core machine, so `p` thread-ranks
//! time-share one core and raw wall-clock tells you nothing a real cluster
//! would show. Instead every rank keeps a [`Ledger`] of **virtual time**:
//!
//! * compute sections are measured with the per-thread CPU clock
//!   (`CLOCK_THREAD_CPUTIME_ID`), which is immune to time-sharing, and
//! * communication is costed with a classic α-β model — each message is
//!   stamped with `arrival = sender_vt + α + bytes/β` at send time, and a
//!   receive wait advances the receiver to `max(receiver_vt, arrival)`.
//!
//! This rewards exactly the behaviour the paper engineers for: computation
//! that overlaps a pending receive absorbs the message latency. Reported
//! experiment times are `max` over ranks of virtual time; the benches also
//! print raw wall time for transparency.
//!
//! ## Quick example
//!
//! ```
//! use hymv_comm::{Universe, Payload};
//!
//! // Ring shift across 4 ranks.
//! let results = Universe::run(4, |comm| {
//!     let next = (comm.rank() + 1) % comm.size();
//!     let prev = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.isend(next, 7, Payload::from_f64(vec![comm.rank() as f64]));
//!     let got = comm.recv(prev, 7).into_f64();
//!     got[0] as usize
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

// Unsafe is confined to audited, SAFETY-commented sites (`#[allow]`ed
// per item); everything else is checked.
#![deny(unsafe_code)]

mod audit;
mod comm;
mod fault;
mod ledger;
mod lflr;
mod payload;
mod reliable;
mod world;

pub use audit::{AuditEvent, AuditEventKind, AuditMode, AuditReport, AuditViolation};
pub use comm::{Comm, IallreduceHandle, RecvHandle, SendHandle};
pub use fault::{CrashSpec, FaultKind, FaultPlan, FaultReport, RetryPolicy};
pub use ledger::{thread_cpu_time, CommStats, CostModel, Ledger, TagStats};
pub use lflr::{
    catch_revoked, Recovery, Revoked, TAG_CKPT, TAG_CKPT_RESTORE, TAG_HB_PONG, TAG_HB_PROBE,
};
pub use payload::Payload;
pub use reliable::{envelope_pack, envelope_unpack, EnvelopeError, ENVELOPE_MAGIC, TAG_RESEND};
pub use world::{RunConfig, Universe};

/// Tags at or above this value are reserved for internal collectives.
///
/// This is the **single authoritative definition** of the reserved range:
/// `assert_tag_valid` (the runtime guard), the protocol auditor, and the
/// `hymv-verify` static passes all read this constant — do not copy the
/// value anywhere else.
pub const RESERVED_TAG_BASE: u32 = 0xF000_0000;

/// Tags in `[CTRL_TAG_BASE, RESERVED_TAG_BASE)` carry the reliable
/// envelope layer's control traffic (retransmission requests). Like the
/// collective band above it, the range is closed to user code — control
/// messages ride the reliable fabric and are exempt from fault injection,
/// so a user message in this band would dodge the injector and confuse
/// the recovery protocol.
pub const CTRL_TAG_BASE: u32 = 0xE000_0000;

/// Returns true if a user-supplied tag is valid (below every reserved
/// range).
pub fn tag_is_valid(tag: u32) -> bool {
    tag < CTRL_TAG_BASE
}

/// The single checked guard every user-tag entry point goes through
/// (`isend`/`irecv`/`recv`/`recv_any`/`exchange_sparse`). A plain
/// `assert!`, so it fires in release builds too: a reserved-range tag
/// would silently collide with internal protocol traffic, which is never
/// recoverable.
pub(crate) fn assert_tag_valid(tag: u32) {
    assert!(
        tag_is_valid(tag),
        "tag {tag:#x} is in the reserved range (>= {CTRL_TAG_BASE:#x})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_validity() {
        assert!(tag_is_valid(0));
        assert!(tag_is_valid(12345));
        assert!(tag_is_valid(CTRL_TAG_BASE - 1));
        assert!(!tag_is_valid(CTRL_TAG_BASE));
        assert!(!tag_is_valid(TAG_RESEND));
        assert!(!tag_is_valid(RESERVED_TAG_BASE));
        assert!(!tag_is_valid(u32::MAX));
    }
}

//! The shared "world": mailboxes, collective rendezvous state, and the
//! [`Universe`] entry point that spawns one thread per rank.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::audit::{self, AuditEventKind, AuditLog, AuditMode, AuditReport};
use crate::comm::Comm;
use crate::fault::{FaultAbort, FaultKind, FaultPlan, FaultReport, FaultState, RetryPolicy};
use crate::ledger::CostModel;
use crate::lflr::Revoked;
use crate::payload::Payload;

/// SplitMix64 step shared by the perturbation machinery (mailbox shuffle,
/// send-latency jitter).
#[inline]
pub(crate) fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One finalization mix (decorrelates seed-derived streams).
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut state = x ^ 0x6A09_E667_F3BC_C909;
    next_rand(&mut state)
}

/// One in-flight message.
pub(crate) struct Message {
    pub src: usize,
    pub tag: u32,
    pub payload: Payload,
    /// Modeled (virtual-time) arrival timestamp, stamped at send.
    pub arrival_vt: f64,
    /// Tombstone: the fault injector dropped this message, and what the
    /// receiver observes at `arrival_vt` is its timeout firing instead of
    /// data. Only the reliable envelope layer may consume tombstones; raw
    /// receives panic on them (they have no recovery protocol).
    pub dropped: bool,
}

/// A rank's mailbox: FIFO per (src, tag), implemented as one queue searched
/// in order (message volumes per rank are small; ghost exchanges post a few
/// dozen messages at most).
///
/// Under schedule perturbation (`shuffle_state` set) an arriving message is
/// inserted at a *random* queue position instead of the back — constrained
/// to stay behind earlier messages of the same `(src, tag)`, so matched
/// receives still observe MPI's non-overtaking order while wildcard
/// receives ([`World::receive_any`]) see a randomized arrival order.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: VecDeque<Message>,
    shuffle_state: Option<u64>,
}

pub(crate) struct MailSlot {
    pub mailbox: Mutex<Mailbox>,
    pub cond: Condvar,
}

/// Rendezvous state for one collective operation instance.
pub(crate) struct CollSlot {
    arrived: usize,
    max_vt: f64,
    /// Per-rank contributions (used by reductions/gathers).
    contrib: Vec<Option<Payload>>,
    /// Result, computed by the last arriver.
    result: Option<Arc<Vec<Payload>>>,
    departed: usize,
}

impl CollSlot {
    fn new(size: usize) -> Self {
        CollSlot {
            arrived: 0,
            max_vt: 0.0,
            contrib: vec![None; size],
            result: None,
            departed: 0,
        }
    }
}

pub(crate) struct CollState {
    pub slots: Mutex<HashMap<u64, CollSlot>>,
    pub cond: Condvar,
}

/// Shared state for one run: `size` mailboxes plus collective slots, and
/// the optional correctness-tooling state (audit log, perturbation seed).
pub(crate) struct World {
    pub size: usize,
    pub model: CostModel,
    pub mail: Vec<MailSlot>,
    pub coll: CollState,
    /// Event log when the protocol auditor is enabled.
    pub audit: Option<AuditLog>,
    /// Schedule-perturbation seed (None = deterministic FIFO delivery).
    pub perturb_seed: Option<u64>,
    /// Fault injector (None = perfect transport, the default).
    pub fault: Option<FaultState>,
    /// Retry/backoff policy the reliable envelope layer runs under.
    pub retry: RetryPolicy,
    /// Whether rank threads record into the open trace session.
    pub trace: bool,
    /// Flight-recorder run id: keys this run's per-rank postmortem
    /// rings so concurrent universes (parallel tests) never mix dumps.
    pub flight_run: u64,
    /// First fault report of the run; set once, then every blocking wait
    /// unwinds with a typed abort instead of hanging on a dead peer.
    poison: Mutex<Option<FaultReport>>,
    poisoned: AtomicBool,
    /// Ranks declared dead by LFLR accusers. Unlike poison, a revocation
    /// is *recoverable*: armed ranks unwind to their solver's recovery
    /// handler, repair the world, and clear it.
    revoke_suspects: Mutex<Vec<usize>>,
    revoked: AtomicBool,
}

impl World {
    fn new(
        size: usize,
        model: CostModel,
        audit: bool,
        perturb_seed: Option<u64>,
        fault: Option<FaultPlan>,
        retry: RetryPolicy,
        trace: bool,
    ) -> Arc<Self> {
        let mail = (0..size)
            .map(|dst| {
                let shuffle_state = perturb_seed.map(|s| mix64(s ^ mix64(dst as u64)));
                MailSlot {
                    mailbox: Mutex::new(Mailbox {
                        queue: VecDeque::new(),
                        shuffle_state,
                    }),
                    cond: Condvar::new(),
                }
            })
            .collect();
        Arc::new(World {
            size,
            model,
            mail,
            coll: CollState {
                slots: Mutex::new(HashMap::new()),
                cond: Condvar::new(),
            },
            audit: audit.then(AuditLog::default),
            perturb_seed,
            fault: fault.filter(FaultPlan::is_active).map(FaultState::new),
            retry,
            trace,
            flight_run: hymv_trace::flight::next_run_id(),
            poison: Mutex::new(None),
            poisoned: AtomicBool::new(false),
            revoke_suspects: Mutex::new(Vec::new()),
            revoked: AtomicBool::new(false),
        })
    }

    /// Declare `suspects` dead and revoke the world: every armed rank
    /// unwinds from its next blocking point with a [`Revoked`] payload
    /// (after draining already-satisfiable operations). Concurrent
    /// accusations merge their suspect sets.
    pub(crate) fn revoke(&self, suspects: &[usize]) {
        {
            let mut set = self.revoke_suspects.lock();
            for &s in suspects {
                if !set.contains(&s) {
                    set.push(s);
                }
            }
        }
        self.revoked.store(true, Ordering::Release);
        for slot in &self.mail {
            slot.cond.notify_all();
        }
        self.coll.cond.notify_all();
    }

    pub(crate) fn revoked(&self) -> bool {
        self.revoked.load(Ordering::Acquire)
    }

    pub(crate) fn revoke_suspects(&self) -> Vec<usize> {
        self.revoke_suspects.lock().clone()
    }

    /// Lift the revocation (idempotent). Called during recovery, strictly
    /// after the agreement rendezvous — by then every rank has stopped
    /// accusing, so no new revocation can race the clear.
    pub(crate) fn clear_revoke(&self) {
        self.revoke_suspects.lock().clear();
        self.revoked.store(false, Ordering::Release);
    }

    /// Drop every message pending for rank `me` except those with
    /// `keep_tag` (restore payloads a buddy may post before this rank
    /// reaches its drain step). Part of the world-repair transport reset:
    /// pre-revocation traffic must not leak into the fresh epoch.
    pub(crate) fn drain_mailbox(&self, me: usize, keep_tag: u32) {
        self.mail[me]
            .mailbox
            .lock()
            .queue
            .retain(|m| m.tag == keep_tag);
    }

    /// Remove half-completed collective slots with `seq < bound` (the
    /// aborted epoch; recovery rendezvous live at or above `bound`).
    /// Their sequence numbers are reused after the epoch reset, and a
    /// stale partial slot would corrupt the reused collective.
    pub(crate) fn purge_collective_slots_below(&self, bound: u64) {
        self.coll.slots.lock().retain(|&seq, _| seq >= bound);
    }

    /// Record the first fault report and wake every blocked rank so each
    /// unwinds with a typed [`FaultAbort`] instead of waiting forever.
    pub(crate) fn poison(&self, report: FaultReport) {
        {
            let mut slot = self.poison.lock();
            if slot.is_none() {
                *slot = Some(report);
            }
        }
        self.poisoned.store(true, Ordering::Release);
        for slot in &self.mail {
            slot.cond.notify_all();
        }
        self.coll.cond.notify_all();
    }

    pub(crate) fn poison_report(&self) -> Option<FaultReport> {
        if self.poisoned.load(Ordering::Acquire) {
            self.poison.lock().clone()
        } else {
            None
        }
    }

    /// Unwind rank `me` if another rank has already aborted the run.
    pub(crate) fn check_poison(&self, me: usize) {
        if let Some(origin) = self.poison_report() {
            std::panic::panic_any(FaultAbort(FaultReport {
                rank: me,
                kind: FaultKind::PeerAborted {
                    origin: origin.rank,
                },
            }));
        }
    }

    fn record(&self, rank: usize, kind: AuditEventKind) {
        if let Some(log) = &self.audit {
            log.record(rank, kind);
        }
    }

    /// Deposit a message into `dst`'s mailbox (buffered send).
    pub(crate) fn deliver(&self, dst: usize, msg: Message) {
        self.record(
            msg.src,
            AuditEventKind::SendPosted {
                dst,
                tag: msg.tag,
                bytes: msg.payload.len_bytes(),
            },
        );
        let slot = &self.mail[dst];
        let mut mb = slot.mailbox.lock();
        let pos = if mb.shuffle_state.is_some() {
            // Random position, but never ahead of an earlier same-(src,tag)
            // message: per-pair FIFO is part of the contract programs may
            // rely on (MPI non-overtaking), so only inter-pair order is
            // perturbed.
            let lo = mb
                .queue
                .iter()
                .rposition(|m| m.src == msg.src && m.tag == msg.tag)
                .map_or(0, |i| i + 1);
            let len = mb.queue.len();
            let state = mb.shuffle_state.as_mut().expect("checked above");
            lo + (next_rand(state) as usize) % (len - lo + 1)
        } else {
            mb.queue.len()
        };
        mb.queue.insert(pos, msg);
        drop(mb);
        slot.cond.notify_all();
    }

    /// Fault-injected delivery at an arbitrary queue position derived from
    /// `rand` — unlike the perturbation shuffle this deliberately ignores
    /// the per-(src, tag) FIFO; the envelope sequence numbers restore order.
    pub(crate) fn deliver_shuffled(&self, dst: usize, msg: Message, rand: u64) {
        self.record(
            msg.src,
            AuditEventKind::SendPosted {
                dst,
                tag: msg.tag,
                bytes: msg.payload.len_bytes(),
            },
        );
        let slot = &self.mail[dst];
        let mut mb = slot.mailbox.lock();
        let pos = (rand as usize) % (mb.queue.len() + 1);
        mb.queue.insert(pos, msg);
        drop(mb);
        slot.cond.notify_all();
    }

    /// Blocking matched receive for rank `me` from `src` with `tag`.
    pub(crate) fn receive(&self, me: usize, src: usize, tag: u32) -> Message {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        let msg = loop {
            if let Some(pos) = mb.queue.iter().position(|m| m.src == src && m.tag == tag) {
                break mb.queue.remove(pos).expect("position just found");
            }
            self.check_poison(me);
            slot.cond.wait(&mut mb);
        };
        drop(mb);
        self.record(
            me,
            AuditEventKind::RecvCompleted {
                src,
                tag,
                bytes: msg.payload.len_bytes(),
            },
        );
        msg
    }

    /// Blocking wildcard receive for rank `me`: the first queued message
    /// with `tag` from *any* source. Order-sensitive by design — under
    /// schedule perturbation the arrival order is randomized, which is how
    /// the race detector exposes code that depends on it.
    pub(crate) fn receive_any(&self, me: usize, tag: u32) -> Message {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        let msg = loop {
            if let Some(pos) = mb.queue.iter().position(|m| m.tag == tag) {
                break mb.queue.remove(pos).expect("position just found");
            }
            self.check_poison(me);
            slot.cond.wait(&mut mb);
        };
        drop(mb);
        self.record(
            me,
            AuditEventKind::RecvCompleted {
                src: msg.src,
                tag,
                bytes: msg.payload.len_bytes(),
            },
        );
        msg
    }

    /// Non-blocking probe: take a matching message if present.
    pub(crate) fn try_receive(&self, me: usize, src: usize, tag: u32) -> Option<Message> {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        let msg = mb
            .queue
            .iter()
            .position(|m| m.src == src && m.tag == tag)
            .map(|pos| mb.queue.remove(pos).expect("position just found"));
        drop(mb);
        if let Some(m) = &msg {
            self.record(
                me,
                AuditEventKind::RecvCompleted {
                    src,
                    tag,
                    bytes: m.payload.len_bytes(),
                },
            );
        }
        msg
    }

    /// Non-blocking wildcard probe: take the first queued message with
    /// `tag` from any source, if present (used to service reliable-layer
    /// control traffic from inside other blocking waits).
    pub(crate) fn try_receive_any(&self, me: usize, tag: u32) -> Option<Message> {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        let msg = mb
            .queue
            .iter()
            .position(|m| m.tag == tag)
            .map(|pos| mb.queue.remove(pos).expect("position just found"));
        drop(mb);
        if let Some(m) = &msg {
            self.record(
                me,
                AuditEventKind::RecvCompleted {
                    src: m.src,
                    tag,
                    bytes: m.payload.len_bytes(),
                },
            );
        }
        msg
    }

    /// Number of messages pending in rank `me`'s mailbox.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(&self, me: usize) -> usize {
        self.mail[me].mailbox.lock().queue.len()
    }

    /// Non-blocking posting half of a collective rendezvous.
    ///
    /// Every rank calls this with the same `seq` (a per-rank monotonically
    /// increasing collective counter — SPMD code issues collectives in the
    /// same order on all ranks). Each rank deposits its virtual time and an
    /// optional contribution; the last depositor runs `combine` over all
    /// contributions to produce a per-rank result vector. No waiting; pair
    /// with [`Self::rendezvous_await`] or [`Self::try_rendezvous_result`].
    pub(crate) fn rendezvous_post(
        &self,
        me: usize,
        seq: u64,
        vt: f64,
        contribution: Option<Payload>,
        combine: impl FnOnce(&mut Vec<Option<Payload>>) -> Vec<Payload>,
    ) {
        self.record(me, AuditEventKind::CollectivePosted { seq });
        let mut slots = self.coll.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| CollSlot::new(self.size));
        slot.arrived += 1;
        slot.max_vt = slot.max_vt.max(vt);
        slot.contrib[me] = contribution;
        if slot.arrived == self.size {
            let results = combine(&mut slot.contrib);
            debug_assert_eq!(results.len(), self.size);
            slot.result = Some(Arc::new(results));
            self.coll.cond.notify_all();
        }
    }

    /// Blocking half: wait for the result of a posted rendezvous.
    pub(crate) fn rendezvous_await(&self, me: usize, seq: u64) -> (f64, Payload) {
        let mut slots = self.coll.slots.lock();
        while slots.get(&seq).is_some_and(|s| s.result.is_none()) {
            self.check_poison(me);
            self.coll.cond.wait(&mut slots);
        }
        let out = Self::take_rendezvous_result(&mut slots, self.size, me, seq);
        drop(slots);
        self.record(me, AuditEventKind::CollectiveCompleted { seq });
        out
    }

    /// Non-blocking half: the result of a posted rendezvous if every rank
    /// has arrived, `None` otherwise (lets a rank service reliable-layer
    /// control traffic while "inside" a collective).
    pub(crate) fn try_rendezvous_result(&self, me: usize, seq: u64) -> Option<(f64, Payload)> {
        let mut slots = self.coll.slots.lock();
        if slots.get(&seq).is_some_and(|s| s.result.is_none()) {
            return None;
        }
        let out = Self::take_rendezvous_result(&mut slots, self.size, me, seq);
        drop(slots);
        self.record(me, AuditEventKind::CollectiveCompleted { seq });
        Some(out)
    }

    /// Departure bookkeeping shared by the blocking and polling awaits;
    /// call only once the result is known to be set.
    fn take_rendezvous_result(
        slots: &mut HashMap<u64, CollSlot>,
        size: usize,
        me: usize,
        seq: u64,
    ) -> (f64, Payload) {
        let slot = slots
            .get_mut(&seq)
            .expect("slot exists until last departer");
        let max_vt = slot.max_vt;
        let result = slot.result.as_ref().expect("result set before wake")[me].clone();
        slot.departed += 1;
        if slot.departed == size {
            slots.remove(&seq);
        }
        (max_vt, result)
    }

    /// Teardown inspection (all ranks joined): drain the event log, sweep
    /// leftover mailbox messages and open collective slots, and run every
    /// auditor check. `None` when auditing is disabled.
    fn audit_report(&self) -> Option<AuditReport> {
        let log = self.audit.as_ref()?;
        let events = log.take_events();
        let mut leftover_msgs = Vec::new();
        for (dst, slot) in self.mail.iter().enumerate() {
            for m in &slot.mailbox.lock().queue {
                leftover_msgs.push(audit::LeftoverMessage {
                    dst,
                    src: m.src,
                    tag: m.tag,
                    bytes: m.payload.len_bytes(),
                });
            }
        }
        let leftover_colls: Vec<_> = self
            .coll
            .slots
            .lock()
            .iter()
            .map(|(&seq, s)| audit::LeftoverCollective {
                seq,
                posted: s.arrived,
                completed: s.departed,
            })
            .collect();
        Some(audit::verify(
            self.size,
            events,
            leftover_msgs,
            leftover_colls,
        ))
    }
}

/// Full configuration of one universe run: cost model plus the
/// correctness-tooling knobs (protocol audit, schedule perturbation,
/// fault injection).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// α-β communication cost model.
    pub model: CostModel,
    /// When set, randomize mailbox delivery order and jitter modeled send
    /// latencies from this seed (see `hymv-check`'s race detector).
    pub perturb_seed: Option<u64>,
    /// Whether to record and verify protocol events.
    pub audit: AuditMode,
    /// Seeded transport-fault injection (None = perfect transport). The
    /// default picks up `HYMV_FAULT_*` from the environment, so faults stay
    /// off unless explicitly requested.
    pub fault: Option<FaultPlan>,
    /// Retry/backoff policy of the reliable envelope layer (default reads
    /// `HYMV_RETRY_*`).
    pub retry: RetryPolicy,
    /// Record spans/metrics into the open `hymv_trace::TraceSession`.
    /// Off by default so concurrently running untraced universes (e.g.
    /// parallel tests) never pollute someone else's session; recording
    /// additionally requires a session to actually be open.
    pub trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            model: CostModel::default(),
            perturb_seed: None,
            audit: AuditMode::default(),
            fault: FaultPlan::from_env(),
            retry: RetryPolicy::from_env(),
            trace: false,
        }
    }
}

/// Entry point: spawns `size` thread-ranks running the same SPMD closure.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks with the default cost model; returns each
    /// rank's result, ordered by rank.
    ///
    /// In debug/test builds the protocol auditor runs at teardown and this
    /// call panics with a per-rank event trace on any violation
    /// (`HYMV_AUDIT=0` disables, `HYMV_AUDIT=1` forces it in release).
    ///
    /// # Panics
    /// Panics if `size == 0`, on a protocol violation when auditing, or
    /// propagates a panic from any rank.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_with(CostModel::default(), size, f)
    }

    /// Run `f` on `size` ranks with an explicit [`CostModel`]. Audits like
    /// [`Universe::run`].
    pub fn run_with<T, F>(model: CostModel, size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let cfg = RunConfig {
            model,
            ..RunConfig::default()
        };
        let (results, report) = Self::run_configured(cfg, size, f);
        if let Some(report) = report {
            assert!(report.is_clean(), "communication audit failed:\n{report}");
        }
        results
    }

    /// Run `f` on `size` ranks under an explicit [`RunConfig`]; returns
    /// each rank's result plus the audit report (None when auditing is
    /// off). Unlike [`Universe::run`], protocol violations do **not**
    /// panic — the caller inspects the report (this is the entry point the
    /// `hymv-check` passes drive).
    pub fn run_configured<T, F>(cfg: RunConfig, size: usize, f: F) -> (Vec<T>, Option<AuditReport>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(size > 0, "a universe needs at least one rank");
        let world = World::new(
            size,
            cfg.model,
            cfg.audit.is_enabled(),
            cfg.perturb_seed,
            cfg.fault,
            cfg.retry,
            cfg.trace,
        );
        let f = &f;
        let flight_run = world.flight_run;
        let results: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let world = Arc::clone(&world);
                    scope.spawn(move || {
                        let traced = world.trace && hymv_trace::enabled();
                        if traced {
                            hymv_trace::rank_begin(rank);
                        }
                        hymv_trace::flight::rank_begin(world.flight_run, rank);
                        let _flight = FlightDepositGuard;
                        let mut comm = Comm::new(rank, world);
                        let out = f(&mut comm);
                        if traced {
                            comm.publish_trace_metrics();
                            comm.publish_live();
                            hymv_trace::rank_flush();
                        }
                        comm.note_exit();
                        out
                    })
                })
                .collect();
            // Join everything before deciding the flight outcome so every
            // rank's ring (crashed or not) has been deposited.
            let joined: Vec<_> = handles
                .into_iter()
                .map(std::thread::ScopedJoinHandle::join)
                .collect();
            let any_dead = joined.iter().any(Result::is_err);
            if any_dead {
                let reason = joined
                    .iter()
                    .find_map(|r| r.as_ref().err())
                    .and_then(|p| p.downcast_ref::<FaultAbort>())
                    .map_or_else(
                        || "rank panic".to_string(),
                        |abort| format!("{:?}", abort.0),
                    );
                hymv_trace::flight::dump(flight_run, &reason);
            } else {
                hymv_trace::flight::discard(flight_run);
            }
            joined
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let report = world.audit_report();
        (results, report)
    }

    /// Run `f` on `size` ranks under fault injection and harvest typed
    /// outcomes: each rank yields `Ok(T)` or the [`FaultReport`] it aborted
    /// with. Any non-fault panic still propagates. This is the chaos-test
    /// entry point — unlike [`Universe::run`], an unrecoverable fault is an
    /// *expected* result, not a test failure, and is guaranteed by the
    /// poison protocol to terminate every rank (no hangs).
    pub fn run_chaos<T, F>(
        cfg: RunConfig,
        size: usize,
        f: F,
    ) -> (Vec<Result<T, FaultReport>>, Option<AuditReport>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(size > 0, "a universe needs at least one rank");
        install_fault_abort_hook();
        let world = World::new(
            size,
            cfg.model,
            cfg.audit.is_enabled(),
            cfg.perturb_seed,
            cfg.fault,
            cfg.retry,
            cfg.trace,
        );
        let f = &f;
        let flight_run = world.flight_run;
        let results: Vec<Result<T, FaultReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let world = Arc::clone(&world);
                    scope.spawn(move || {
                        let traced = world.trace && hymv_trace::enabled();
                        if traced {
                            hymv_trace::rank_begin(rank);
                        }
                        hymv_trace::flight::rank_begin(world.flight_run, rank);
                        let _flight = FlightDepositGuard;
                        let mut comm = Comm::new(rank, world);
                        let out = f(&mut comm);
                        if traced {
                            comm.publish_trace_metrics();
                            comm.publish_live();
                            hymv_trace::rank_flush();
                        }
                        comm.note_exit();
                        out
                    })
                })
                .collect();
            let typed: Vec<Result<T, FaultReport>> = handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(out) => Ok(out),
                    Err(payload) => match payload.downcast::<FaultAbort>() {
                        Ok(abort) => Err(abort.0),
                        // A revocation nobody recovered (the solver was
                        // not LFLR-armed or recovery itself unwound):
                        // typed, like every other chaos outcome.
                        Err(other) => match other.downcast::<Revoked>() {
                            Ok(revoked) => Err(FaultReport {
                                rank,
                                kind: FaultKind::Revoked {
                                    suspects: revoked.suspects,
                                },
                            }),
                            Err(other) => std::panic::resume_unwind(other),
                        },
                    },
                })
                .collect();
            // All ranks joined (so every ring is deposited): a run that
            // died with any typed fault — crash aborts, CheckpointLost,
            // unrecovered revocations — ships its postmortem; a clean
            // run discards its rings.
            match typed.iter().find_map(|r| r.as_ref().err()) {
                Some(report) => {
                    hymv_trace::flight::dump(flight_run, &format!("{report:?}"));
                }
                None => hymv_trace::flight::discard(flight_run),
            }
            typed
        });
        let report = world.audit_report();
        (results, report)
    }
}

/// Deposits the rank thread's flight-recorder ring into the postmortem
/// store when the rank ends — drop guards run on panic unwinds too,
/// which is exactly the case the flight recorder exists for: the ring
/// of a crashed rank must survive to the dump.
struct FlightDepositGuard;

impl Drop for FlightDepositGuard {
    fn drop(&mut self) {
        hymv_trace::flight::rank_deposit();
    }
}

/// Silence the default panic printout for the *typed* fault aborts that
/// [`Universe::run_chaos`] turns into `Err(FaultReport)`, and for the
/// [`Revoked`] unwinds of LFLR recovery (caught by the solver's
/// `catch_revoked` boundary in the expected case) — a crash scenario
/// would otherwise spray one backtrace per rank over a run whose
/// contract held. Installed once, process-wide; every other panic
/// payload still reaches the previously installed hook untouched.
pub(crate) fn install_fault_abort_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultAbort>().is_none()
                && info.payload().downcast_ref::<Revoked>().is_none()
            {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Universe::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_ordered_by_rank() {
        let out = Universe::run(7, |comm| comm.rank());
        assert_eq!(out, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::run(0, |_| ());
    }

    fn bare_world(size: usize) -> Arc<World> {
        World::new(
            size,
            CostModel::default(),
            false,
            None,
            None,
            RetryPolicy::default(),
            false,
        )
    }

    #[test]
    fn mailbox_fifo_per_src_tag() {
        let world = bare_world(2);
        for i in 0..3 {
            world.deliver(
                1,
                Message {
                    src: 0,
                    tag: 5,
                    payload: Payload::from_u64(vec![i]),
                    arrival_vt: 0.0,
                    dropped: false,
                },
            );
        }
        for i in 0..3 {
            let m = world.receive(1, 0, 5);
            assert_eq!(m.payload, Payload::from_u64(vec![i]));
        }
    }

    #[test]
    fn try_receive_misses_then_hits() {
        let world = bare_world(2);
        assert!(world.try_receive(0, 1, 9).is_none());
        world.deliver(
            0,
            Message {
                src: 1,
                tag: 9,
                payload: Payload::from_f64(vec![]),
                arrival_vt: 0.0,
                dropped: false,
            },
        );
        assert!(world.try_receive(0, 1, 9).is_some());
        assert_eq!(world.pending(0), 0);
    }

    #[test]
    fn receive_matches_tag_not_order() {
        let world = bare_world(2);
        world.deliver(
            0,
            Message {
                src: 1,
                tag: 1,
                payload: Payload::from_u64(vec![1]),
                arrival_vt: 0.0,
                dropped: false,
            },
        );
        world.deliver(
            0,
            Message {
                src: 1,
                tag: 2,
                payload: Payload::from_u64(vec![2]),
                arrival_vt: 0.0,
                dropped: false,
            },
        );
        let m = world.receive(0, 1, 2);
        assert_eq!(m.payload, Payload::from_u64(vec![2]));
        let m = world.receive(0, 1, 1);
        assert_eq!(m.payload, Payload::from_u64(vec![1]));
    }

    /// Drains rank 0's queue order after delivering `n` messages from two
    /// fake sources under `cfg`.
    fn delivery_order(perturb_seed: Option<u64>, n: u64) -> Vec<u64> {
        let world = World::new(
            3,
            CostModel::default(),
            false,
            perturb_seed,
            None,
            RetryPolicy::default(),
            false,
        );
        for i in 0..n {
            let src = 1 + (i % 2) as usize;
            world.deliver(
                0,
                Message {
                    src,
                    tag: 4,
                    payload: Payload::from_u64(vec![i]),
                    arrival_vt: 0.0,
                    dropped: false,
                },
            );
        }
        (0..n)
            .map(|_| world.receive_any(0, 4).payload.into_u64()[0])
            .collect()
    }

    #[test]
    fn perturbed_delivery_preserves_pairwise_fifo() {
        for seed in [1u64, 2, 3, 99] {
            let order = delivery_order(Some(seed), 16);
            // Messages from one source carry ascending values; per-source
            // subsequences must stay ascending (non-overtaking).
            for parity in 0..2 {
                let per_src: Vec<u64> = order.iter().copied().filter(|v| v % 2 == parity).collect();
                assert!(
                    per_src.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed}: {order:?}"
                );
            }
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..16).collect::<Vec<_>>(),
                "nothing lost or duplicated"
            );
        }
    }

    #[test]
    fn perturbed_delivery_reproducible_and_seed_sensitive() {
        let a = delivery_order(Some(7), 24);
        let b = delivery_order(Some(7), 24);
        assert_eq!(a, b, "same seed, same schedule");
        let unperturbed = delivery_order(None, 24);
        assert_eq!(
            unperturbed,
            (0..24).collect::<Vec<_>>(),
            "FIFO without perturbation"
        );
        // At least one of a handful of seeds must disagree with FIFO order
        // (24 interleaved messages: astronomically likely).
        let shuffled = [11u64, 12, 13]
            .iter()
            .any(|&s| delivery_order(Some(s), 24) != unperturbed);
        assert!(shuffled, "perturbation never changed the wildcard order");
    }

    #[test]
    fn audit_reports_clean_run() {
        let cfg = RunConfig {
            audit: AuditMode::Enabled,
            ..RunConfig::default()
        };
        let (out, report) = Universe::run_configured(cfg, 3, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.isend(next, 2, Payload::from_u64(vec![c.rank() as u64]));
            let got = c.recv(prev, 2).into_u64()[0];
            c.barrier();
            got
        });
        assert_eq!(out, vec![2, 0, 1]);
        let report = report.expect("audit was enabled");
        assert!(report.is_clean(), "{report}");
        // Every rank's trace ends with its exit event.
        for rank in 0..3 {
            let trace = report.rank_trace(rank);
            assert!(matches!(
                trace.last().map(|e| &e.kind),
                Some(AuditEventKind::RankExited)
            ));
        }
    }

    #[test]
    fn audit_disabled_yields_no_report() {
        let cfg = RunConfig {
            audit: AuditMode::Disabled,
            ..RunConfig::default()
        };
        let (_, report) = Universe::run_configured(cfg, 2, |c| c.rank());
        assert!(report.is_none());
    }

    #[test]
    fn audit_detects_leaked_send() {
        let cfg = RunConfig {
            audit: AuditMode::Enabled,
            ..RunConfig::default()
        };
        let (_, report) = Universe::run_configured(cfg, 2, |c| {
            if c.rank() == 0 {
                // Injected violation: nobody ever receives this.
                c.isend(1, 5, Payload::from_u64(vec![0xdead]));
            }
            c.barrier();
        });
        let report = report.expect("audit was enabled");
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                crate::AuditViolation::UnmatchedSend {
                    dst: 1,
                    src: 0,
                    tag: 5,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_unawaited_collective() {
        let cfg = RunConfig {
            audit: AuditMode::Enabled,
            ..RunConfig::default()
        };
        let (_, report) = Universe::run_configured(cfg, 3, |c| {
            // Injected violation: a non-blocking reduction posted by every
            // rank but never completed.
            let _leaked = c.iallreduce_sum_vec(vec![1.0, 2.0]);
            c.rank()
        });
        let report = report.expect("audit was enabled");
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                crate::AuditViolation::UnbalancedCollective {
                    posted: 3,
                    completed: 0,
                    size: 3,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    #[should_panic(expected = "communication audit failed")]
    fn default_run_panics_on_violation_in_debug() {
        // Universe::run audits by default in test builds (unless the env
        // says otherwise, in which case skip the premise by panicking with
        // the expected message ourselves).
        assert!(
            crate::AuditMode::Default.is_enabled(),
            "communication audit failed: (audit disabled by env; vacuous pass)"
        );
        let _ = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.isend(1, 5, Payload::from_u64(vec![1]));
            }
            c.barrier();
        });
    }

    #[test]
    fn perturbed_universe_matches_unperturbed_results() {
        // A schedule-deterministic program: results must be bitwise equal
        // under any perturbation seed.
        let run = |seed: Option<u64>| {
            let cfg = RunConfig {
                perturb_seed: seed,
                ..RunConfig::default()
            };
            let (out, _) = Universe::run_configured(cfg, 4, |c| {
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                c.isend(next, 1, Payload::from_f64(vec![c.rank() as f64 + 0.25]));
                let got = c.recv(prev, 1).into_f64()[0];
                c.allreduce_sum_f64(got)
            });
            out
        };
        let base = run(None);
        for seed in 0..4 {
            assert_eq!(run(Some(seed)), base, "seed {seed}");
        }
    }
}

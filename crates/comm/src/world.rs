//! The shared "world": mailboxes, collective rendezvous state, and the
//! [`Universe`] entry point that spawns one thread per rank.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::ledger::CostModel;
use crate::payload::Payload;

/// One in-flight message.
pub(crate) struct Message {
    pub src: usize,
    pub tag: u32,
    pub payload: Payload,
    /// Modeled (virtual-time) arrival timestamp, stamped at send.
    pub arrival_vt: f64,
}

/// A rank's mailbox: FIFO per (src, tag), implemented as one queue searched
/// in order (message volumes per rank are small; ghost exchanges post a few
/// dozen messages at most).
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: VecDeque<Message>,
}

pub(crate) struct MailSlot {
    pub mailbox: Mutex<Mailbox>,
    pub cond: Condvar,
}

/// Rendezvous state for one collective operation instance.
pub(crate) struct CollSlot {
    arrived: usize,
    max_vt: f64,
    /// Per-rank contributions (used by reductions/gathers).
    contrib: Vec<Option<Payload>>,
    /// Result, computed by the last arriver.
    result: Option<Arc<Vec<Payload>>>,
    departed: usize,
}

impl CollSlot {
    fn new(size: usize) -> Self {
        CollSlot {
            arrived: 0,
            max_vt: 0.0,
            contrib: vec![None; size],
            result: None,
            departed: 0,
        }
    }
}

pub(crate) struct CollState {
    pub slots: Mutex<HashMap<u64, CollSlot>>,
    pub cond: Condvar,
}

/// Shared state for one run: `size` mailboxes plus collective slots.
pub(crate) struct World {
    pub size: usize,
    pub model: CostModel,
    pub mail: Vec<MailSlot>,
    pub coll: CollState,
}

impl World {
    fn new(size: usize, model: CostModel) -> Arc<Self> {
        let mail = (0..size)
            .map(|_| MailSlot { mailbox: Mutex::new(Mailbox::default()), cond: Condvar::new() })
            .collect();
        Arc::new(World {
            size,
            model,
            mail,
            coll: CollState { slots: Mutex::new(HashMap::new()), cond: Condvar::new() },
        })
    }

    /// Deposit a message into `dst`'s mailbox (buffered send).
    pub(crate) fn deliver(&self, dst: usize, msg: Message) {
        let slot = &self.mail[dst];
        slot.mailbox.lock().queue.push_back(msg);
        slot.cond.notify_all();
    }

    /// Blocking matched receive for rank `me` from `src` with `tag`.
    pub(crate) fn receive(&self, me: usize, src: usize, tag: u32) -> Message {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        loop {
            if let Some(pos) = mb.queue.iter().position(|m| m.src == src && m.tag == tag) {
                return mb.queue.remove(pos).expect("position just found");
            }
            slot.cond.wait(&mut mb);
        }
    }

    /// Non-blocking probe: take a matching message if present.
    pub(crate) fn try_receive(&self, me: usize, src: usize, tag: u32) -> Option<Message> {
        let slot = &self.mail[me];
        let mut mb = slot.mailbox.lock();
        mb.queue
            .iter()
            .position(|m| m.src == src && m.tag == tag)
            .map(|pos| mb.queue.remove(pos).expect("position just found"))
    }

    /// Number of messages pending in rank `me`'s mailbox.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(&self, me: usize) -> usize {
        self.mail[me].mailbox.lock().queue.len()
    }

    /// Generic collective rendezvous.
    ///
    /// Every rank calls this with the same `seq` (a per-rank monotonically
    /// increasing collective counter — SPMD code issues collectives in the
    /// same order on all ranks). Each rank deposits its virtual time and an
    /// optional contribution; the last arriver runs `combine` over all
    /// contributions to produce a per-rank result vector. Returns
    /// `(max_vt, this rank's result)`.
    pub(crate) fn rendezvous(
        &self,
        me: usize,
        seq: u64,
        vt: f64,
        contribution: Option<Payload>,
        combine: impl FnOnce(&mut Vec<Option<Payload>>) -> Vec<Payload>,
    ) -> (f64, Payload) {
        self.rendezvous_post(me, seq, vt, contribution, combine);
        self.rendezvous_await(me, seq)
    }

    /// Non-blocking half of [`Self::rendezvous`]: deposit this rank's
    /// contribution. The last depositor computes the result; no waiting.
    pub(crate) fn rendezvous_post(
        &self,
        me: usize,
        seq: u64,
        vt: f64,
        contribution: Option<Payload>,
        combine: impl FnOnce(&mut Vec<Option<Payload>>) -> Vec<Payload>,
    ) {
        let mut slots = self.coll.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| CollSlot::new(self.size));
        slot.arrived += 1;
        slot.max_vt = slot.max_vt.max(vt);
        slot.contrib[me] = contribution;
        if slot.arrived == self.size {
            let results = combine(&mut slot.contrib);
            debug_assert_eq!(results.len(), self.size);
            slot.result = Some(Arc::new(results));
            self.coll.cond.notify_all();
        }
    }

    /// Blocking half: wait for the result of a posted rendezvous.
    pub(crate) fn rendezvous_await(&self, me: usize, seq: u64) -> (f64, Payload) {
        let mut slots = self.coll.slots.lock();
        while slots.get(&seq).is_some_and(|s| s.result.is_none()) {
            self.coll.cond.wait(&mut slots);
        }
        let slot = slots.get_mut(&seq).expect("slot exists until last departer");
        let max_vt = slot.max_vt;
        let result = slot.result.as_ref().expect("result set before wake")[me].clone();
        slot.departed += 1;
        if slot.departed == self.size {
            slots.remove(&seq);
        }
        (max_vt, result)
    }
}

/// Entry point: spawns `size` thread-ranks running the same SPMD closure.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks with the default cost model; returns each
    /// rank's result, ordered by rank.
    ///
    /// # Panics
    /// Panics if `size == 0`, or propagates a panic from any rank.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_with(CostModel::default(), size, f)
    }

    /// Run `f` on `size` ranks with an explicit [`CostModel`].
    pub fn run_with<T, F>(model: CostModel, size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(size > 0, "a universe needs at least one rank");
        let world = World::new(size, model);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let world = Arc::clone(&world);
                    scope.spawn(move || {
                        let mut comm = Comm::new(rank, world);
                        f(&mut comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Universe::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_ordered_by_rank() {
        let out = Universe::run(7, |comm| comm.rank());
        assert_eq!(out, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::run(0, |_| ());
    }

    #[test]
    fn mailbox_fifo_per_src_tag() {
        let world = World::new(2, CostModel::default());
        for i in 0..3 {
            world.deliver(1, Message { src: 0, tag: 5, payload: Payload::from_u64(vec![i]), arrival_vt: 0.0 });
        }
        for i in 0..3 {
            let m = world.receive(1, 0, 5);
            assert_eq!(m.payload, Payload::from_u64(vec![i]));
        }
    }

    #[test]
    fn try_receive_misses_then_hits() {
        let world = World::new(2, CostModel::default());
        assert!(world.try_receive(0, 1, 9).is_none());
        world.deliver(0, Message { src: 1, tag: 9, payload: Payload::from_f64(vec![]), arrival_vt: 0.0 });
        assert!(world.try_receive(0, 1, 9).is_some());
        assert_eq!(world.pending(0), 0);
    }

    #[test]
    fn receive_matches_tag_not_order() {
        let world = World::new(2, CostModel::default());
        world.deliver(0, Message { src: 1, tag: 1, payload: Payload::from_u64(vec![1]), arrival_vt: 0.0 });
        world.deliver(0, Message { src: 1, tag: 2, payload: Payload::from_u64(vec![2]), arrival_vt: 0.0 });
        let m = world.receive(0, 1, 2);
        assert_eq!(m.payload, Payload::from_u64(vec![2]));
        let m = world.receive(0, 1, 1);
        assert_eq!(m.payload, Payload::from_u64(vec![1]));
    }
}

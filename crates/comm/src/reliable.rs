//! Reliable, self-healing transport over the (possibly faulty) substrate.
//!
//! Every ghost-exchange payload travels inside an **envelope**: a `U64`
//! payload laid out as `[MAGIC, seq, len, checksum, f64-bits...]`. The
//! per-(peer, tag) sequence number restores order under duplication and
//! reordering; the checksum catches in-flight bit flips (structural
//! damage to the header is caught by the magic/length checks). The
//! receiver-driven recovery protocol is:
//!
//! * **accept** — an intact envelope with the expected sequence number;
//! * **suppress** — a sequence number already consumed (duplicate);
//! * **stash** — a future sequence number (reordered past a loss), kept
//!   for the later `recv_enveloped` call that expects it;
//! * **retry** — a tombstone (deterministic image of a drop, observed at
//!   the modeled time the receiver's timeout would fire) or a corrupt
//!   envelope triggers a `TAG_RESEND` control message and charges an
//!   exponentially growing virtual-time backoff; after
//!   `RetryPolicy::max_retries` failed attempts the rank aborts the run
//!   with a typed [`FaultReport`] (poisoning the world so no rank hangs).
//!
//! Control traffic (`TAG_RESEND`) lives in its own reserved band
//! ([`CTRL_TAG_BASE`](crate::CTRL_TAG_BASE)) and uses the reliable fabric
//! — like real resilience protocols, the control plane is assumed (or
//! engineered) to be far more robust than the data plane.
//!
//! Senders keep a bounded window of recently sent envelopes per
//! (peer, tag) for retransmission. The window only needs to cover the
//! messages of one exchange phase (at most a couple per neighbour);
//! successive phases are separated by collectives, so a peer can never be
//! a whole phase behind while the sender keeps overwriting the window.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::comm::Comm;
use crate::fault::{FaultKind, FaultReport, RetryPolicy};
use crate::payload::Payload;

/// Control tag: "resend envelope `seq` on `tag`" (in the control band, so
/// never fault-injected and never clashing with user tags).
pub const TAG_RESEND: u32 = crate::CTRL_TAG_BASE | 0x01;

/// First envelope word; doubles as a cheap structural check.
pub const ENVELOPE_MAGIC: u64 = 0x4859_4D56_454E_5631; // "HYMVENV1"

/// `[magic, seq, len, checksum]`.
const HEADER_WORDS: usize = 4;

/// Index of the checksum word (zeroed while hashing).
const CHECKSUM_WORD: usize = 3;

/// Retransmit-window depth per (peer, tag): comfortably above the two
/// same-tag messages a split ghost range can produce in one phase.
const SENT_WINDOW: usize = 8;

/// Why an envelope failed to decode. Every variant is treated as
/// in-flight corruption by the receiver (counted and retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Wrong payload variant, too short, or bad magic.
    NotAnEnvelope,
    /// Header length disagrees with the payload size.
    LengthMismatch { header: u64, actual: u64 },
    /// Payload bits don't hash to the header checksum.
    ChecksumMismatch { expected: u64, computed: u64 },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::NotAnEnvelope => write!(f, "not an envelope (bad magic or shape)"),
            EnvelopeError::LengthMismatch { header, actual } => {
                write!(f, "length mismatch (header {header}, actual {actual})")
            }
            EnvelopeError::ChecksumMismatch { expected, computed } => write!(
                f,
                "checksum mismatch (expected {expected:#018x}, computed {computed:#018x})"
            ),
        }
    }
}

/// FNV-1a stepped per 64-bit word (not per byte — this sits on the
/// per-SPMV critical path and the bench guard holds it under 5%), with
/// the checksum word treated as zero. Each step `h ← (h ⊕ w)·p` composes
/// two bijections of the 64-bit state, so envelopes differing in exactly
/// one word — any single-bit flip included — always hash differently:
/// detection of the injector's `corrupt` fault is 100%, not
/// probabilistic. Order-dependent, so word swaps perturb it too.
fn envelope_checksum(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, &w) in words.iter().enumerate() {
        let w = if i == CHECKSUM_WORD { 0 } else { w };
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wrap `data` in a checksummed, sequence-numbered envelope.
pub fn envelope_pack(seq: u64, data: &[f64]) -> Payload {
    let mut words = Vec::with_capacity(HEADER_WORDS + data.len());
    words.push(ENVELOPE_MAGIC);
    words.push(seq);
    words.push(data.len() as u64);
    words.push(0);
    words.extend(data.iter().map(|v| v.to_bits()));
    words[CHECKSUM_WORD] = envelope_checksum(&words);
    Payload::from_u64(words)
}

/// Validate and unwrap an envelope into `(seq, data)`.
pub fn envelope_unpack(payload: &Payload) -> Result<(u64, Vec<f64>), EnvelopeError> {
    let Payload::U64(words) = payload else {
        return Err(EnvelopeError::NotAnEnvelope);
    };
    if words.len() < HEADER_WORDS || words[0] != ENVELOPE_MAGIC {
        return Err(EnvelopeError::NotAnEnvelope);
    }
    let (seq, len) = (words[1], words[2]);
    if words.len() as u64 != HEADER_WORDS as u64 + len {
        return Err(EnvelopeError::LengthMismatch {
            header: len,
            actual: words.len() as u64 - HEADER_WORDS as u64,
        });
    }
    let computed = envelope_checksum(words);
    if computed != words[CHECKSUM_WORD] {
        return Err(EnvelopeError::ChecksumMismatch {
            expected: words[CHECKSUM_WORD],
            computed,
        });
    }
    let data = words[HEADER_WORDS..]
        .iter()
        .map(|&w| f64::from_bits(w))
        .collect();
    Ok((seq, data))
}

/// Per-rank state of the reliable transport (lives inside [`Comm`] so
/// every blocking comm point can service retransmission requests).
#[derive(Debug)]
pub(crate) struct ReliableState {
    pub(crate) policy: RetryPolicy,
    /// Next sequence number to assign per (peer, tag).
    send_seq: HashMap<(usize, u32), u64>,
    /// Next sequence number to accept per (peer, tag).
    recv_seq: HashMap<(usize, u32), u64>,
    /// Retransmit window: recently sent envelopes per (peer, tag).
    sent: HashMap<(usize, u32), VecDeque<(u64, Payload)>>,
    /// Intact envelopes that arrived ahead of their turn.
    stash: HashMap<(usize, u32, u64), Vec<f64>>,
    /// Total timeouts seen; at `policy.degrade_after` the rank reports
    /// itself degraded and operators fall back to blocking exchange.
    timeouts_seen: u64,
    pub(crate) degraded: bool,
    /// Consecutive exchanges completed without a new timeout (see
    /// [`Comm::note_exchange_outcome`]); at `policy.rearm_after` a
    /// degraded rank re-arms the overlapped exchange.
    clean_streak: u64,
    /// `timeouts_seen` at the last outcome note, to detect fresh timeouts.
    timeouts_at_note: u64,
}

impl ReliableState {
    pub(crate) fn new(policy: RetryPolicy) -> Self {
        ReliableState {
            policy,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            sent: HashMap::new(),
            stash: HashMap::new(),
            timeouts_seen: 0,
            degraded: false,
            clean_streak: 0,
            timeouts_at_note: 0,
        }
    }

    /// Drop all transport state (sequence numbers, retransmit windows,
    /// stashes, degradation counters) — the world-repair step of LFLR
    /// recovery resynchronizes every rank to a fresh transport epoch after
    /// mailboxes are drained, so stale sequence numbers from the aborted
    /// epoch can never be confused with post-repair traffic.
    pub(crate) fn reset(&mut self) {
        let policy = self.policy;
        *self = ReliableState::new(policy);
    }
}

impl Comm {
    /// Send `data` to `peer` inside a sequence-numbered, checksummed
    /// envelope, through the fault injector when one is active. The
    /// envelope is retained in a bounded retransmit window so the peer's
    /// recovery protocol can request it again; completion is confirmed in
    /// the ledger (buffered sends complete at post time).
    pub fn send_enveloped(&mut self, peer: usize, tag: u32, data: &[f64]) -> crate::SendHandle {
        let seq_slot = self.reliable.send_seq.entry((peer, tag)).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let env = envelope_pack(seq, data);
        let window = self.reliable.sent.entry((peer, tag)).or_default();
        window.push_back((seq, env.clone()));
        if window.len() > SENT_WINDOW {
            window.pop_front();
        }
        let h = self.isend_unreliable(peer, tag, env);
        self.confirm_send(h);
        h
    }

    /// Receive the next in-sequence envelope from `peer` on `tag`,
    /// running the full recovery protocol (suppress duplicates, stash
    /// reordered arrivals, request retransmission of dropped or corrupted
    /// envelopes with exponential virtual-time backoff). Aborts the run
    /// with a typed [`FaultReport`] once the retry budget is exhausted —
    /// by construction this either returns the exact bits the sender
    /// packed or terminates every rank; it never hangs and never returns
    /// damaged data.
    pub fn recv_enveloped(&mut self, peer: usize, tag: u32) -> Vec<f64> {
        let expected = *self.reliable.recv_seq.entry((peer, tag)).or_insert(0);
        if let Some(data) = self.reliable.stash.remove(&(peer, tag, expected)) {
            self.advance_recv_seq(peer, tag);
            return data;
        }
        let mut attempts: u32 = 0;
        loop {
            let msg = self.blocking_receive(peer, tag);
            if msg.dropped {
                self.ledger.on_timeout();
                self.reliable.timeouts_seen += 1;
                if self.reliable.timeouts_seen >= self.reliable.policy.degrade_after {
                    self.reliable.degraded = true;
                }
                self.retry_or_abort(peer, tag, expected, &mut attempts);
                continue;
            }
            self.ledger
                .on_recv_complete(msg.arrival_vt, tag, msg.payload.len_bytes());
            match envelope_unpack(&msg.payload) {
                Ok((seq, data)) if seq == expected => {
                    self.advance_recv_seq(peer, tag);
                    return data;
                }
                Ok((seq, _)) if seq < expected => {
                    self.ledger.on_dup_suppressed();
                }
                Ok((seq, data)) => {
                    // Reordered past an earlier envelope; hold for later.
                    self.reliable.stash.insert((peer, tag, seq), data);
                }
                Err(_) => {
                    self.ledger.on_corrupt_detected();
                    self.retry_or_abort(peer, tag, expected, &mut attempts);
                }
            }
        }
    }

    fn advance_recv_seq(&mut self, peer: usize, tag: u32) {
        *self
            .reliable
            .recv_seq
            .get_mut(&(peer, tag))
            .expect("entry created by recv_enveloped") += 1;
    }

    /// Charge one exponential-backoff step in virtual time and ask `peer`
    /// to retransmit, or abort with the typed diagnostic once the budget
    /// is spent. When LFLR is armed, a spent budget first runs the
    /// heartbeat probe instead of aborting: a peer proven *dead* (its
    /// data plane tombstones the pongs) revokes the world for local
    /// recovery, a peer proven merely *slow* gets the retry budget
    /// re-granted up to `hb_grace` times before the PR 4 abort fires.
    fn retry_or_abort(&mut self, peer: usize, tag: u32, seq: u64, attempts: &mut u32) {
        *attempts += 1;
        if *attempts > self.reliable.policy.max_retries {
            if self.lflr_armed() && self.probe_peer_liveness(peer) {
                // Slow, not dead: degrade and re-grant the budget (the
                // reset restarts the exponential backoff too).
                self.reliable.degraded = true;
                *attempts = 1;
            } else {
                self.fault_abort(FaultReport {
                    rank: self.rank(),
                    kind: FaultKind::RetryBudgetExhausted {
                        peer,
                        tag,
                        attempts: *attempts,
                    },
                });
            }
        }
        // 2^(attempts-1) × base, capped to keep the arithmetic sane; all
        // in virtual time, so bitwise deterministic across schedules.
        let backoff = self.reliable.policy.backoff_s * (1u64 << (*attempts - 1).min(16)) as f64;
        let span = hymv_trace::SpanGuard::open(hymv_trace::Phase::Retry, self.vt());
        self.ledger.on_retry(backoff);
        span.close(self.vt());
        // Control plane: reliable fabric, tag in the closed control band.
        let _ = self.isend_internal(peer, TAG_RESEND, Payload::from_u64(vec![tag as u64, seq]));
    }

    /// Drain pending `TAG_RESEND` requests and retransmit the named
    /// envelopes from the window (through the injector again — resends
    /// are as lossy as first sends). Called from every blocking comm
    /// point while faults are active, so a rank parked in a collective or
    /// an unrelated receive still heals its neighbours. Requests for
    /// envelopes outside the window are dropped; the requester will ask
    /// again and eventually abort with a typed report rather than hang.
    /// Heartbeat probes are answered here too — the probed rank replies
    /// through its (possibly dead) data plane from the same loop, so any
    /// rank parked at any blocking point can prove its liveness.
    pub(crate) fn service_resend_requests(&mut self) {
        while let Some(msg) = self.world.try_receive_any(self.rank, TAG_RESEND) {
            let req = match &msg.payload {
                Payload::U64(w) if w.len() == 2 => (w[0] as u32, w[1]),
                _ => continue,
            };
            let (tag, seq) = req;
            let env = self
                .reliable
                .sent
                .get(&(msg.src, tag))
                .and_then(|win| win.iter().find(|(s, _)| *s == seq))
                .map(|(_, e)| e.clone());
            if let Some(env) = env {
                let _ = self.isend_unreliable(msg.src, tag, env);
            }
        }
        self.answer_liveness_probes();
    }

    /// Note the completion of one ghost-exchange cycle: a degraded rank
    /// that has stayed timeout-free for `RetryPolicy::rearm_after`
    /// consecutive exchanges re-arms the overlapped schedule (the PR 4
    /// degradation was permanent — a rank whose link healed was stuck on
    /// blocking exchange forever). `rearm_after = 0` keeps the old
    /// stays-degraded behaviour.
    pub fn note_exchange_outcome(&mut self) {
        let r = &mut self.reliable;
        if r.policy.rearm_after == 0 {
            return;
        }
        if r.timeouts_seen != r.timeouts_at_note {
            r.timeouts_at_note = r.timeouts_seen;
            r.clean_streak = 0;
        } else if r.degraded {
            r.clean_streak += 1;
            if r.clean_streak >= r.policy.rearm_after {
                r.degraded = false;
                r.clean_streak = 0;
                // Leave degrade_after headroom again: a single stray
                // timeout after a re-arm should not instantly re-degrade.
                r.timeouts_seen = 0;
                r.timeouts_at_note = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let data = [1.5, -2.25, 0.0, f64::MIN_POSITIVE, 1e300];
        let (seq, out) = envelope_unpack(&envelope_pack(7, &data)).expect("intact");
        assert_eq!(seq, 7);
        assert_eq!(out, data);
    }

    #[test]
    fn empty_envelope_roundtrip() {
        let (seq, out) = envelope_unpack(&envelope_pack(0, &[])).expect("intact");
        assert_eq!(seq, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn non_envelope_rejected() {
        assert_eq!(
            envelope_unpack(&Payload::from_f64(vec![1.0])),
            Err(EnvelopeError::NotAnEnvelope)
        );
        assert_eq!(
            envelope_unpack(&Payload::from_u64(vec![1, 2])),
            Err(EnvelopeError::NotAnEnvelope)
        );
    }

    #[test]
    fn truncation_detected() {
        let env = envelope_pack(3, &[1.0, 2.0, 3.0]);
        let mut words = env.into_u64();
        words.pop();
        assert!(matches!(
            envelope_unpack(&Payload::from_u64(words)),
            Err(EnvelopeError::LengthMismatch { .. })
        ));
    }

    /// The satellite acceptance bar: every single-bit flip, in every word
    /// (header and payload), is detected.
    #[test]
    fn checksum_catches_every_single_bit_flip() {
        let data: Vec<f64> = (0..6).map(|i| (i as f64 + 0.5) * 1.75e-3).collect();
        let words = envelope_pack(42, &data).into_u64();
        for word in 0..words.len() {
            for bit in 0..64 {
                let mut corrupted = words.clone();
                corrupted[word] ^= 1u64 << bit;
                // Header flips fail structurally or by checksum (the seq
                // and length are hashed too); payload and checksum-word
                // flips fail by checksum. Nothing slips through.
                assert!(
                    envelope_unpack(&Payload::from_u64(corrupted)).is_err(),
                    "flip of word {word} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn checksum_catches_word_swap() {
        let env = envelope_pack(1, &[3.0, 4.0]).into_u64();
        let mut swapped = env.clone();
        swapped.swap(HEADER_WORDS, HEADER_WORDS + 1);
        assert!(envelope_unpack(&Payload::from_u64(swapped)).is_err());
    }

    fn rearm_cfg(rearm_after: u64) -> crate::RunConfig {
        crate::RunConfig {
            model: crate::CostModel::default(),
            perturb_seed: None,
            audit: crate::AuditMode::Disabled,
            fault: None,
            retry: crate::RetryPolicy {
                rearm_after,
                ..crate::RetryPolicy::default()
            },
            trace: false,
        }
    }

    /// Satellite: the PR 4 degradation was permanent — a rank whose link
    /// healed was stuck on blocking exchange forever. A degraded rank
    /// must re-arm after `rearm_after` consecutive timeout-free
    /// exchanges, and a fresh timeout must reset the streak.
    #[test]
    fn degraded_rank_rearms_after_clean_streak() {
        let out = crate::Universe::run_configured(rearm_cfg(3), 1, |comm| {
            comm.reliable.degraded = true;
            // Two clean exchanges: not enough.
            comm.note_exchange_outcome();
            comm.note_exchange_outcome();
            let still_degraded = comm.degraded();
            // A fresh timeout resets the streak…
            comm.reliable.timeouts_seen += 1;
            comm.note_exchange_outcome();
            comm.note_exchange_outcome();
            comm.note_exchange_outcome();
            let after_reset = comm.degraded();
            // …so re-arming needs three clean exchanges from there.
            comm.note_exchange_outcome();
            let rearmed = !comm.degraded();
            (still_degraded, after_reset, rearmed)
        })
        .0;
        let (still_degraded, after_reset, rearmed) = out[0];
        assert!(still_degraded, "re-armed before the streak completed");
        assert!(after_reset, "a fresh timeout must reset the clean streak");
        assert!(rearmed, "three clean exchanges after the timeout re-arm");
    }

    /// `rearm_after = 0` keeps the old stays-degraded behaviour.
    #[test]
    fn rearm_disabled_keeps_degradation_permanent() {
        let out = crate::Universe::run_configured(rearm_cfg(0), 1, |comm| {
            comm.reliable.degraded = true;
            for _ in 0..100 {
                comm.note_exchange_outcome();
            }
            comm.degraded()
        })
        .0;
        assert!(out[0], "rearm_after = 0 must never re-arm");
    }
}

//! Typed message payloads.
//!
//! HYMV's communication uses a handful of concrete value shapes: `f64`
//! vector fragments (ghost scatter/gather), `u64` index lists (map
//! construction), and `(row, col, value)` triples (the assembled baseline's
//! off-rank matrix contributions). A small enum keeps sends copy-free
//! (payloads are moved into the receiver's mailbox) while still letting the
//! ledger account bytes exactly.

/// A message body moved between ranks.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A vector fragment (ghost values, reduction partials, …).
    F64(Vec<f64>),
    /// An index list (global node ids, counts, …).
    U64(Vec<u64>),
    /// Sparse-matrix triples `(global row, global col, value)` — the traffic
    /// that makes the matrix-assembled baseline's setup expensive.
    Triples(Vec<(u64, u64, f64)>),
    /// Raw bytes for anything else.
    Bytes(Vec<u8>),
}

impl Payload {
    /// Wraps a `f64` vector.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }

    /// Wraps a `u64` vector.
    pub fn from_u64(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }

    /// Wraps a triple list.
    pub fn from_triples(v: Vec<(u64, u64, f64)>) -> Self {
        Payload::Triples(v)
    }

    /// The on-wire size this payload would have, used by the α-β cost model.
    pub fn len_bytes(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::U64(v) => v.len() * 8,
            Payload::Triples(v) => v.len() * 24,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Number of logical entries.
    pub fn len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Triples(v) => v.len(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// True if the payload carries no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics if the payload has a different variant — a protocol error in
    /// SPMD code, never a data-dependent condition.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {}", other.variant_name()),
        }
    }

    /// Unwraps a `U64` payload. Panics on variant mismatch.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.variant_name()),
        }
    }

    /// Unwraps a `Triples` payload. Panics on variant mismatch.
    pub fn into_triples(self) -> Vec<(u64, u64, f64)> {
        match self {
            Payload::Triples(v) => v,
            other => panic!("expected Triples payload, got {}", other.variant_name()),
        }
    }

    /// Unwraps a `Bytes` payload. Panics on variant mismatch.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {}", other.variant_name()),
        }
    }

    /// Flip one bit of the payload, chosen by `bit` modulo the payload's
    /// bit count (the fault injector's in-flight corruption model). A
    /// no-op on empty payloads — there is nothing to damage.
    pub(crate) fn corrupt_bit(&mut self, bit: u64) {
        fn flip_u64(v: &mut [u64], bit: u64) {
            let i = (bit / 64) as usize % v.len();
            v[i] ^= 1u64 << (bit % 64);
        }
        match self {
            Payload::F64(v) if !v.is_empty() => {
                let i = (bit / 64) as usize % v.len();
                v[i] = f64::from_bits(v[i].to_bits() ^ (1u64 << (bit % 64)));
            }
            Payload::U64(v) if !v.is_empty() => flip_u64(v, bit),
            Payload::Triples(v) if !v.is_empty() => {
                let i = (bit / 192) as usize % v.len();
                let (r, c, x) = &mut v[i];
                match (bit / 64) % 3 {
                    0 => *r ^= 1u64 << (bit % 64),
                    1 => *c ^= 1u64 << (bit % 64),
                    _ => *x = f64::from_bits(x.to_bits() ^ (1u64 << (bit % 64))),
                }
            }
            Payload::Bytes(v) if !v.is_empty() => {
                let i = (bit / 8) as usize % v.len();
                v[i] ^= 1u8 << (bit % 8);
            }
            _ => {}
        }
    }

    fn variant_name(&self) -> &'static str {
        match self {
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
            Payload::Triples(_) => "Triples",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(Payload::from_f64(vec![0.0; 10]).len_bytes(), 80);
        assert_eq!(Payload::from_u64(vec![0; 3]).len_bytes(), 24);
        assert_eq!(Payload::from_triples(vec![(0, 1, 2.0); 2]).len_bytes(), 48);
        assert_eq!(Payload::Bytes(vec![0u8; 7]).len_bytes(), 7);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Payload::from_f64(vec![1.0, 2.0]).len(), 2);
        assert!(Payload::from_u64(vec![]).is_empty());
        assert!(!Payload::from_triples(vec![(1, 2, 3.0)]).is_empty());
    }

    #[test]
    fn round_trip() {
        let v = vec![1.5, -2.5];
        assert_eq!(Payload::from_f64(v.clone()).into_f64(), v);
        let u = vec![3u64, 9];
        assert_eq!(Payload::from_u64(u.clone()).into_u64(), u);
        let t = vec![(1u64, 2u64, 0.5)];
        assert_eq!(Payload::from_triples(t.clone()).into_triples(), t);
        assert_eq!(Payload::Bytes(vec![1, 2]).into_bytes(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "expected F64 payload")]
    fn variant_mismatch_panics() {
        Payload::from_u64(vec![1]).into_f64();
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit() {
        let mut p = Payload::from_f64(vec![1.0, 2.0, 3.0]);
        let orig = p.clone();
        p.corrupt_bit(77);
        assert_ne!(p, orig);
        let (a, b) = (p.into_f64(), orig.into_f64());
        let flipped: u32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x.to_bits() ^ y.to_bits()).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Empty payloads are left alone.
        let mut e = Payload::from_f64(vec![]);
        e.corrupt_bit(5);
        assert_eq!(e, Payload::from_f64(vec![]));
    }
}

//! Deterministic, seeded fault injection for the message substrate.
//!
//! A [`FaultPlan`] describes *which* transport faults to inject (drop,
//! duplication, out-of-order delivery beyond the perturbation jitter,
//! bounded delay/stragglers, bit-flip payload corruption, one-shot rank
//! crash) and with what seeded probabilities. The plan is **off by
//! default** and only applies to traffic sent through the fault-scoped
//! entry point (`Comm::isend_unreliable`, which the reliable envelope
//! layer uses for all ghost-exchange traffic) — collectives and setup
//! exchanges model a reliable fabric, exactly like MPI's own collectives.
//!
//! ## Determinism
//!
//! Every fault decision is drawn from a SplitMix64 stream keyed by
//! `(plan.seed, src, dst)` and consumed in the sender's program order, so
//! the decision sequence on each link is a pure function of the plan —
//! independent of thread scheduling. Dropped messages are not vanished:
//! they are delivered as **tombstones** (`Message::dropped`), modelling
//! the instant the receiver's timeout would fire. This is what makes
//! virtual-time timeouts deterministic: the loss *event* is observed at a
//! modeled arrival time instead of depending on a wall-clock race.
//!
//! Unrecoverable faults terminate the whole universe through a typed
//! [`FaultReport`]: the detecting rank poisons the shared world and every
//! blocking wait re-checks the poison flag, so no rank can hang. Use
//! [`Universe::run_chaos`](crate::Universe::run_chaos) to harvest the
//! per-rank `Result<T, FaultReport>`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::world::{mix64, next_rand};

/// One-shot rank crash: after `rank` has posted `after_sends` fault-scoped
/// sends, every later fault-scoped send from it is permanently tombstoned
/// (the rank keeps computing and servicing control traffic — it is the
/// *data plane* that dies, as with a failed NIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank whose outbound data plane fails.
    pub rank: usize,
    /// Number of fault-scoped sends it completes before failing.
    pub after_sends: u64,
}

/// A seeded description of transport faults to inject. All probabilities
/// are per-message and default to zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-link decision streams.
    pub seed: u64,
    /// Probability a message is dropped (delivered as a tombstone).
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability one payload bit is flipped in flight.
    pub corrupt: f64,
    /// Probability a message is inserted at a random mailbox position,
    /// ignoring even the per-(src, tag) FIFO the perturbation jitter
    /// preserves.
    pub reorder: f64,
    /// Probability a message's modeled transit is stretched by
    /// [`FaultPlan::delay_factor`] (straggler link).
    pub delay: f64,
    /// Transit multiplier for delayed messages (≥ 1).
    pub delay_factor: f64,
    /// Optional one-shot rank crash.
    pub crash: Option<CrashSpec>,
}

impl FaultPlan {
    /// A plan with every fault disabled (seed only).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            delay: 0.0,
            delay_factor: 8.0,
            crash: None,
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the bit-flip corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Sets the mailbox-reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the straggler probability and its transit multiplier.
    pub fn with_delay(mut self, p: f64, factor: f64) -> Self {
        self.delay = p;
        self.delay_factor = factor;
        self
    }

    /// Sets the one-shot rank crash.
    pub fn with_crash(mut self, rank: usize, after_sends: u64) -> Self {
        self.crash = Some(CrashSpec { rank, after_sends });
        self
    }

    /// True when at least one fault can fire.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.reorder > 0.0
            || self.delay > 0.0
            || self.crash.is_some()
    }

    /// Builds a plan from `HYMV_FAULT_*` environment variables, or `None`
    /// when none of them is set:
    ///
    /// `HYMV_FAULT_SEED` (default 1), `HYMV_FAULT_DROP`, `HYMV_FAULT_DUP`,
    /// `HYMV_FAULT_CORRUPT`, `HYMV_FAULT_REORDER`, `HYMV_FAULT_DELAY`
    /// (probabilities in `[0, 1]`), `HYMV_FAULT_DELAY_FACTOR` (≥ 1,
    /// default 8), `HYMV_FAULT_CRASH_RANK` + `HYMV_FAULT_CRASH_AFTER`.
    ///
    /// # Panics
    /// Malformed values are hard errors, matching `HYMV_EMV_BATCH`: a typo
    /// silently disabling a chaos run would invalidate its verdict.
    pub fn from_env() -> Option<FaultPlan> {
        let get = |name: &str| std::env::var(name).ok();
        let vars = [
            "HYMV_FAULT_SEED",
            "HYMV_FAULT_DROP",
            "HYMV_FAULT_DUP",
            "HYMV_FAULT_CORRUPT",
            "HYMV_FAULT_REORDER",
            "HYMV_FAULT_DELAY",
            "HYMV_FAULT_DELAY_FACTOR",
            "HYMV_FAULT_CRASH_RANK",
            "HYMV_FAULT_CRASH_AFTER",
        ];
        if vars.iter().all(|v| get(v).is_none()) {
            return None;
        }
        let prob = |name: &str| -> f64 {
            get(name).map_or(0.0, |s| {
                let p: f64 = s.parse().unwrap_or_else(|e| panic!("{name}={s:?}: {e}"));
                assert!((0.0..=1.0).contains(&p), "{name}={s:?}: not in [0, 1]");
                p
            })
        };
        let seed = get("HYMV_FAULT_SEED").map_or(1, |s| {
            s.parse()
                .unwrap_or_else(|e| panic!("HYMV_FAULT_SEED={s:?}: {e}"))
        });
        let delay_factor = get("HYMV_FAULT_DELAY_FACTOR").map_or(8.0, |s| {
            let f: f64 = s
                .parse()
                .unwrap_or_else(|e| panic!("HYMV_FAULT_DELAY_FACTOR={s:?}: {e}"));
            assert!(f >= 1.0, "HYMV_FAULT_DELAY_FACTOR={s:?}: must be >= 1");
            f
        });
        let crash = get("HYMV_FAULT_CRASH_RANK").map(|s| {
            let rank = s
                .parse()
                .unwrap_or_else(|e| panic!("HYMV_FAULT_CRASH_RANK={s:?}: {e}"));
            let after_sends = get("HYMV_FAULT_CRASH_AFTER").map_or(0, |s| {
                s.parse()
                    .unwrap_or_else(|e| panic!("HYMV_FAULT_CRASH_AFTER={s:?}: {e}"))
            });
            CrashSpec { rank, after_sends }
        });
        Some(FaultPlan {
            seed,
            drop: prob("HYMV_FAULT_DROP"),
            duplicate: prob("HYMV_FAULT_DUP"),
            corrupt: prob("HYMV_FAULT_CORRUPT"),
            reorder: prob("HYMV_FAULT_REORDER"),
            delay: prob("HYMV_FAULT_DELAY"),
            delay_factor,
            crash,
        })
    }
}

/// Retry/backoff policy of the reliable envelope layer, including the
/// heartbeat knobs of the LFLR (local-failure local-recovery) detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmission attempts per message before the typed abort.
    pub max_retries: u32,
    /// Base of the exponential virtual-time backoff (seconds); attempt
    /// `k` charges `backoff_s * 2^(k-1)`.
    pub backoff_s: f64,
    /// Total timeouts observed before the exchange degrades from
    /// overlapped to blocking (see `Comm::degraded`).
    pub degrade_after: u64,
    /// Consecutive clean exchanges after which a degraded rank re-arms the
    /// overlapped exchange (0 = degradation stays permanent).
    pub rearm_after: u64,
    /// Times a rank that answered its heartbeat probe (slow, not dead) is
    /// granted a fresh retry budget before the typed abort fires anyway.
    pub hb_grace: u32,
    /// Liveness pongs a probed rank returns through its data plane; the
    /// accuser declares it dead only on tombstoned pongs (positive
    /// evidence of a crashed data plane), never on silence.
    pub hb_pongs: u32,
    /// Polling-iteration budget the accuser waits for pongs before
    /// treating the peer as slow (silence is never a death verdict).
    pub hb_spin: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            backoff_s: 2.0e-5,
            degrade_after: 16,
            rearm_after: 32,
            hb_grace: 2,
            hb_pongs: 3,
            hb_spin: 20_000,
        }
    }
}

impl RetryPolicy {
    /// Builds the policy from `HYMV_RETRY_MAX`, `HYMV_RETRY_BACKOFF`
    /// (seconds), `HYMV_RETRY_DEGRADE`, `HYMV_RETRY_REARM`, and the
    /// heartbeat knobs `HYMV_HB_GRACE` / `HYMV_HB_PONGS` / `HYMV_HB_SPIN`,
    /// defaulting each unset knob.
    ///
    /// # Panics
    /// Malformed values are hard errors (same rationale as
    /// [`FaultPlan::from_env`]).
    pub fn from_env() -> Self {
        let d = RetryPolicy::default();
        let get = |name: &str| std::env::var(name).ok();
        let int = |name: &str, d: u64| -> u64 {
            get(name).map_or(d, |s| {
                s.parse().unwrap_or_else(|e| panic!("{name}={s:?}: {e}"))
            })
        };
        RetryPolicy {
            max_retries: int("HYMV_RETRY_MAX", d.max_retries as u64) as u32,
            backoff_s: get("HYMV_RETRY_BACKOFF").map_or(d.backoff_s, |s| {
                let b: f64 = s
                    .parse()
                    .unwrap_or_else(|e| panic!("HYMV_RETRY_BACKOFF={s:?}: {e}"));
                assert!(b >= 0.0, "HYMV_RETRY_BACKOFF={s:?}: must be >= 0");
                b
            }),
            degrade_after: int("HYMV_RETRY_DEGRADE", d.degrade_after),
            rearm_after: int("HYMV_RETRY_REARM", d.rearm_after),
            hb_grace: int("HYMV_HB_GRACE", d.hb_grace as u64) as u32,
            hb_pongs: int("HYMV_HB_PONGS", d.hb_pongs as u64) as u32,
            hb_spin: int("HYMV_HB_SPIN", d.hb_spin),
        }
    }
}

/// Why a chaos run terminated a rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A message from `peer` stayed lost after `attempts` retransmission
    /// requests (rank crash, or drop rate beyond the retry budget).
    RetryBudgetExhausted {
        peer: usize,
        tag: u32,
        attempts: u32,
    },
    /// Another rank aborted first; this rank was unwound from a blocking
    /// wait by the poison flag.
    PeerAborted { origin: usize },
    /// LFLR recovery found no usable checkpoint for a dead rank (its
    /// buddy died too, the buddy copy failed its checksum, or the restore
    /// rounds disagreed across ranks).
    CheckpointLost { dead: usize },
    /// A world revocation escaped every recovery handler (the solver was
    /// not LFLR-armed, or recovery itself failed); `suspects` are the
    /// ranks declared dead by the accusers.
    Revoked { suspects: Vec<usize> },
}

/// The typed diagnostic every unrecoverable fault terminates with —
/// never a hang, never a silently wrong answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The rank reporting.
    pub rank: usize,
    /// What it observed.
    pub kind: FaultKind,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FaultKind::RetryBudgetExhausted {
                peer,
                tag,
                attempts,
            } => write!(
                f,
                "rank {}: retry budget exhausted waiting on rank {peer} tag {tag:#x} \
                 ({attempts} attempts)",
                self.rank
            ),
            FaultKind::PeerAborted { origin } => {
                write!(
                    f,
                    "rank {}: aborted after rank {origin} reported a fault",
                    self.rank
                )
            }
            FaultKind::CheckpointLost { dead } => write!(
                f,
                "rank {}: no usable buddy checkpoint to recover dead rank {dead}",
                self.rank
            ),
            FaultKind::Revoked { suspects } => write!(
                f,
                "rank {}: world revoked (suspects {suspects:?}) with no recovery handler",
                self.rank
            ),
        }
    }
}

/// Panic payload of a fault abort; `Universe::run_chaos` downcasts it back
/// into the typed [`FaultReport`].
#[derive(Debug)]
pub(crate) struct FaultAbort(pub(crate) FaultReport);

/// How the injector delivers one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeliverAs {
    /// Untouched.
    Data,
    /// As a tombstone (the deterministic image of a drop).
    Tombstone,
    /// With one payload bit flipped.
    Corrupt { bit: u64 },
}

/// The injector's verdict for one send.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultDecision {
    pub deliver: DeliverAs,
    /// Deliver a second identical copy right after the first.
    pub duplicate: bool,
    /// Transit-time multiplier (1.0 = no delay).
    pub delay_mult: f64,
    /// When set, insert at `value % (queue_len + 1)` instead of FIFO.
    pub reorder_pos: Option<u64>,
}

impl FaultDecision {
    fn tombstone() -> Self {
        FaultDecision {
            deliver: DeliverAs::Tombstone,
            duplicate: false,
            delay_mult: 1.0,
            reorder_pos: None,
        }
    }
}

/// Per-world injector state: one decision stream per (src, dst) link plus
/// the crash send counter.
pub(crate) struct FaultState {
    plan: FaultPlan,
    links: Mutex<std::collections::HashMap<(usize, usize), u64>>,
    /// Fault-scoped sends posted by the crash rank (program order on that
    /// rank's thread, hence deterministic).
    crash_sends: AtomicU64,
    /// Set by LFLR recovery once the crashed rank has been resurrected
    /// from its buddy checkpoint: the respawned rank has a working data
    /// plane, so the (one-shot) crash stops tombstoning. Random faults
    /// keep firing — only the crash is healed.
    revived: AtomicBool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            links: Mutex::new(std::collections::HashMap::new()),
            crash_sends: AtomicU64::new(0),
            revived: AtomicBool::new(false),
        }
    }

    /// Heal the one-shot crash (idempotent): models the dead rank being
    /// respawned with fresh hardware.
    pub(crate) fn revive(&self) {
        self.revived.store(true, Ordering::Release);
    }

    /// Fault-scoped sends the crash rank has posted so far; `None`
    /// without a crash spec. Calibration hook for crash-window tests:
    /// run once with an unreachable `after_sends`, read the counter at
    /// phase boundaries, and place real crash triggers between them.
    pub(crate) fn crash_sends_posted(&self) -> Option<u64> {
        self.plan
            .crash
            .map(|_| self.crash_sends.load(Ordering::Relaxed))
    }

    /// True when `src`'s outbound data plane is currently dead: the crash
    /// has reached its trigger and no recovery has revived the rank. The
    /// heartbeat protocol consults this for pong delivery so a death
    /// verdict is a deterministic function of the crash state, never of
    /// the random drop stream.
    pub(crate) fn data_plane_dead(&self, src: usize) -> bool {
        if self.revived.load(Ordering::Acquire) {
            return false;
        }
        match self.plan.crash {
            Some(c) => src == c.rank && self.crash_sends.load(Ordering::Relaxed) > c.after_sends,
            None => false,
        }
    }

    /// Decides the fate of the next message on link `src -> dst`. Draws a
    /// fixed number of variates per call so the per-link stream stays
    /// aligned regardless of which faults are enabled.
    pub(crate) fn decide(&self, src: usize, dst: usize) -> FaultDecision {
        if let Some(c) = self.plan.crash {
            if src == c.rank && !self.revived.load(Ordering::Acquire) {
                let n = self.crash_sends.fetch_add(1, Ordering::Relaxed);
                if n >= c.after_sends {
                    return FaultDecision::tombstone();
                }
            }
        }
        let mut links = self.links.lock();
        let state = links.entry((src, dst)).or_insert_with(|| {
            mix64(self.plan.seed ^ mix64(((src as u64) << 20) | dst as u64 | 1 << 63))
        });
        let mut unit = || (next_rand(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let (drop_u, dup_u, corrupt_u, reorder_u, delay_u) =
            (unit(), unit(), unit(), unit(), unit());
        let (bit, pos) = (next_rand(state), next_rand(state));
        let p = &self.plan;
        let deliver = if drop_u < p.drop {
            DeliverAs::Tombstone
        } else if corrupt_u < p.corrupt {
            DeliverAs::Corrupt { bit }
        } else {
            DeliverAs::Data
        };
        FaultDecision {
            deliver,
            duplicate: dup_u < p.duplicate && deliver != DeliverAs::Tombstone,
            delay_mult: if delay_u < p.delay {
                p.delay_factor
            } else {
                1.0
            },
            reorder_pos: (reorder_u < p.reorder).then_some(pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let plan = FaultPlan::new(7);
        assert!(!plan.is_active());
        assert!(plan.with_drop(0.1).is_active());
        assert!(plan.with_crash(0, 3).is_active());
    }

    #[test]
    fn decisions_are_deterministic_per_link() {
        let mk = || FaultState::new(FaultPlan::new(42).with_drop(0.3).with_duplicate(0.3));
        let (a, b) = (mk(), mk());
        for _ in 0..64 {
            let (da, db) = (a.decide(0, 1), b.decide(0, 1));
            assert_eq!(da.deliver, db.deliver);
            assert_eq!(da.duplicate, db.duplicate);
        }
    }

    #[test]
    fn links_have_independent_streams() {
        let fs = FaultState::new(FaultPlan::new(1).with_drop(0.5));
        let seq = |src: usize, dst: usize| -> Vec<bool> {
            (0..64)
                .map(|_| fs.decide(src, dst).deliver == DeliverAs::Tombstone)
                .collect()
        };
        assert_ne!(seq(0, 1), seq(1, 0), "links share a stream");
    }

    #[test]
    fn drop_rate_roughly_respected() {
        let fs = FaultState::new(FaultPlan::new(3).with_drop(0.25));
        let n = 4000;
        let dropped = (0..n)
            .filter(|_| fs.decide(0, 1).deliver == DeliverAs::Tombstone)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn crash_tombstones_everything_after_trigger() {
        let fs = FaultState::new(FaultPlan::new(1).with_crash(2, 3));
        for _ in 0..3 {
            assert_eq!(fs.decide(2, 0).deliver, DeliverAs::Data);
        }
        for _ in 0..8 {
            assert_eq!(fs.decide(2, 1).deliver, DeliverAs::Tombstone);
        }
        // Other ranks are unaffected.
        assert_eq!(fs.decide(0, 2).deliver, DeliverAs::Data);
    }

    #[test]
    fn fault_report_displays() {
        let r = FaultReport {
            rank: 1,
            kind: FaultKind::RetryBudgetExhausted {
                peer: 0,
                tag: 0x0C01,
                attempts: 9,
            },
        };
        let s = format!("{r}");
        assert!(s.contains("retry budget exhausted"), "{s}");
        let r = FaultReport {
            rank: 2,
            kind: FaultKind::PeerAborted { origin: 1 },
        };
        assert!(format!("{r}").contains("rank 1"), "{r}");
    }
}

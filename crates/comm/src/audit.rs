//! Communication protocol auditor.
//!
//! While a universe runs, every point-to-point send, completed receive,
//! and collective participation is recorded as a typed [`AuditEvent`] in a
//! globally-ordered log (one atomic counter across ranks). At
//! [`Universe`](crate::Universe) teardown — after every rank's closure has
//! returned — the log is checked together with the leftover runtime state
//! (mailbox contents, open collective slots) for protocol violations:
//!
//! * **unmatched sends** — a message still sitting in a mailbox means some
//!   `isend` was never received;
//! * **sends to exited ranks** — a send globally ordered after the
//!   destination rank returned can never be matched;
//! * **unbalanced collectives** — a collective slot still open at teardown
//!   means some rank posted a barrier/reduction the others never joined,
//!   or posted a non-blocking reduction and never waited on it;
//! * **reserved-tag traffic** — user-range entry points reject reserved
//!   tags eagerly, so any reserved tag in the event log is an internal
//!   protocol error.
//!
//! The auditor is on by default in debug/test builds and off in release
//! (overridable either way with `HYMV_AUDIT=0|1`); see
//! [`AuditMode`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::RESERVED_TAG_BASE;

/// What happened, from the acting rank's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEventKind {
    /// This rank buffered a send into `dst`'s mailbox.
    SendPosted { dst: usize, tag: u32, bytes: usize },
    /// This rank confirmed a send's completion (`SendHandle::wait`).
    SendCompleted { dst: usize, tag: u32 },
    /// This rank completed a matched receive.
    RecvCompleted { src: usize, tag: u32, bytes: usize },
    /// This rank deposited its contribution to collective `seq`.
    CollectivePosted { seq: u64 },
    /// This rank consumed the result of collective `seq`.
    CollectiveCompleted { seq: u64 },
    /// This rank's SPMD closure returned.
    RankExited,
}

impl fmt::Display for AuditEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEventKind::SendPosted { dst, tag, bytes } => {
                write!(f, "send  -> rank {dst} tag {tag:#x} ({bytes} B)")
            }
            AuditEventKind::SendCompleted { dst, tag } => {
                write!(f, "send✓ -> rank {dst} tag {tag:#x}")
            }
            AuditEventKind::RecvCompleted { src, tag, bytes } => {
                write!(f, "recv  <- rank {src} tag {tag:#x} ({bytes} B)")
            }
            AuditEventKind::CollectivePosted { seq } => write!(f, "coll post  seq {seq}"),
            AuditEventKind::CollectiveCompleted { seq } => write!(f, "coll done  seq {seq}"),
            AuditEventKind::RankExited => write!(f, "exit"),
        }
    }
}

/// One globally-ordered protocol event.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Position in the global total order (atomic counter at record time).
    pub order: u64,
    /// The acting rank.
    pub rank: usize,
    /// What it did.
    pub kind: AuditEventKind,
}

/// The shared event log (one per audited universe).
#[derive(Default)]
pub(crate) struct AuditLog {
    counter: AtomicU64,
    events: Mutex<Vec<AuditEvent>>,
}

impl AuditLog {
    pub(crate) fn record(&self, rank: usize, kind: AuditEventKind) {
        let order = self.counter.fetch_add(1, Ordering::Relaxed);
        self.events.lock().push(AuditEvent { order, rank, kind });
    }

    /// Drains the log (teardown only — ranks have all exited).
    pub(crate) fn take_events(&self) -> Vec<AuditEvent> {
        let mut events = std::mem::take(&mut *self.events.lock());
        events.sort_by_key(|e| e.order);
        events
    }
}

/// A message still in a mailbox at teardown.
#[derive(Debug, Clone)]
pub(crate) struct LeftoverMessage {
    pub dst: usize,
    pub src: usize,
    pub tag: u32,
    pub bytes: usize,
}

/// An open collective slot at teardown.
#[derive(Debug, Clone)]
pub(crate) struct LeftoverCollective {
    pub seq: u64,
    pub posted: usize,
    pub completed: usize,
}

/// A protocol violation found at teardown.
#[derive(Debug, Clone)]
pub enum AuditViolation {
    /// `src` sent to `dst` with `tag` but `dst` never received it.
    UnmatchedSend {
        dst: usize,
        src: usize,
        tag: u32,
        bytes: usize,
    },
    /// `src` posted a send to `dst` after `dst` had already exited.
    SendToExitedRank {
        src: usize,
        dst: usize,
        tag: u32,
        order: u64,
    },
    /// Collective `seq` ended the run with unequal participation: `posted`
    /// ranks contributed, `completed` ranks consumed the result (both must
    /// equal the universe size).
    UnbalancedCollective {
        seq: u64,
        posted: usize,
        completed: usize,
        size: usize,
    },
    /// A message used a tag in the reserved internal range.
    ReservedTagTraffic { src: usize, dst: usize, tag: u32 },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::UnmatchedSend {
                dst,
                src,
                tag,
                bytes,
            } => write!(
                f,
                "unmatched send: rank {src} -> rank {dst}, tag {tag:#x} ({bytes} B) never received"
            ),
            AuditViolation::SendToExitedRank {
                src,
                dst,
                tag,
                order,
            } => write!(
                f,
                "send to exited rank: rank {src} -> rank {dst}, tag {tag:#x} posted at order \
                 {order} after rank {dst} exited"
            ),
            AuditViolation::UnbalancedCollective {
                seq,
                posted,
                completed,
                size,
            } => write!(
                f,
                "unbalanced collective seq {seq}: {posted}/{size} ranks posted, \
                 {completed}/{size} completed"
            ),
            AuditViolation::ReservedTagTraffic { src, dst, tag } => write!(
                f,
                "reserved-tag traffic: rank {src} -> rank {dst} used internal tag {tag:#x}"
            ),
        }
    }
}

/// The auditor's verdict for one finished universe: violations plus the
/// full event log for per-rank trace rendering.
#[derive(Debug)]
pub struct AuditReport {
    /// Violations, in detection order.
    pub violations: Vec<AuditViolation>,
    /// The globally-ordered event log.
    pub events: Vec<AuditEvent>,
    size: usize,
}

impl AuditReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The event trace of one rank, in global order (for diagnostics).
    pub fn rank_trace(&self, rank: usize) -> Vec<&AuditEvent> {
        self.events.iter().filter(|e| e.rank == rank).collect()
    }
}

/// Cap on rendered events per rank when a report is displayed (the full
/// log stays available via [`AuditReport::rank_trace`]).
const TRACE_RENDER_CAP: usize = 64;

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "audit clean ({} events)", self.events.len());
        }
        writeln!(f, "{} protocol violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        writeln!(f, "per-rank event traces (global order):")?;
        for rank in 0..self.size {
            let trace = self.rank_trace(rank);
            writeln!(f, "  rank {rank} ({} events):", trace.len())?;
            let skip = trace.len().saturating_sub(TRACE_RENDER_CAP);
            if skip > 0 {
                writeln!(f, "    ... {skip} earlier events elided ...")?;
            }
            for e in &trace[skip..] {
                writeln!(f, "    [{:>6}] {}", e.order, e.kind)?;
            }
        }
        Ok(())
    }
}

/// Runs every teardown check over the drained event log and leftover
/// runtime state.
pub(crate) fn verify(
    size: usize,
    events: Vec<AuditEvent>,
    leftover_msgs: Vec<LeftoverMessage>,
    leftover_colls: Vec<LeftoverCollective>,
) -> AuditReport {
    let mut violations = Vec::new();

    // Exit order per rank (missing exit => never treated as exited; a rank
    // that panicked unwinds past teardown, so this path only sees clean
    // returns).
    let mut exit_order = vec![u64::MAX; size];
    for e in &events {
        if matches!(e.kind, AuditEventKind::RankExited) {
            exit_order[e.rank] = e.order;
        }
    }

    for e in &events {
        if let AuditEventKind::SendPosted { dst, tag, .. } = e.kind {
            if tag >= RESERVED_TAG_BASE {
                violations.push(AuditViolation::ReservedTagTraffic {
                    src: e.rank,
                    dst,
                    tag,
                });
            }
            if e.order > exit_order[dst] {
                violations.push(AuditViolation::SendToExitedRank {
                    src: e.rank,
                    dst,
                    tag,
                    order: e.order,
                });
            }
        }
    }

    for m in leftover_msgs {
        violations.push(AuditViolation::UnmatchedSend {
            dst: m.dst,
            src: m.src,
            tag: m.tag,
            bytes: m.bytes,
        });
    }

    for c in leftover_colls {
        violations.push(AuditViolation::UnbalancedCollective {
            seq: c.seq,
            posted: c.posted,
            completed: c.completed,
            size,
        });
    }

    AuditReport {
        violations,
        events,
        size,
    }
}

/// Whether a universe records and verifies protocol events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// On in debug/test builds, off in release; `HYMV_AUDIT=0|1` overrides.
    #[default]
    Default,
    /// Always audit.
    Enabled,
    /// Never audit.
    Disabled,
}

impl AuditMode {
    /// Resolves the mode against the build profile and environment.
    pub fn is_enabled(self) -> bool {
        match self {
            AuditMode::Enabled => true,
            AuditMode::Disabled => false,
            AuditMode::Default => match std::env::var("HYMV_AUDIT").ok().as_deref() {
                Some("0" | "off" | "false") => false,
                Some(_) => true,
                None => cfg!(debug_assertions),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(order: u64, rank: usize, kind: AuditEventKind) -> AuditEvent {
        AuditEvent { order, rank, kind }
    }

    #[test]
    fn clean_log_verifies_clean() {
        let events = vec![
            ev(
                0,
                0,
                AuditEventKind::SendPosted {
                    dst: 1,
                    tag: 3,
                    bytes: 8,
                },
            ),
            ev(
                1,
                1,
                AuditEventKind::RecvCompleted {
                    src: 0,
                    tag: 3,
                    bytes: 8,
                },
            ),
            ev(2, 0, AuditEventKind::RankExited),
            ev(3, 1, AuditEventKind::RankExited),
        ];
        let report = verify(2, events, Vec::new(), Vec::new());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.rank_trace(0).len(), 2);
    }

    #[test]
    fn send_after_exit_detected() {
        let events = vec![
            ev(0, 1, AuditEventKind::RankExited),
            ev(
                1,
                0,
                AuditEventKind::SendPosted {
                    dst: 1,
                    tag: 5,
                    bytes: 16,
                },
            ),
            ev(2, 0, AuditEventKind::RankExited),
        ];
        let report = verify(2, events, Vec::new(), Vec::new());
        assert!(matches!(
            report.violations.as_slice(),
            [AuditViolation::SendToExitedRank {
                src: 0,
                dst: 1,
                tag: 5,
                ..
            }]
        ));
    }

    #[test]
    fn reserved_tag_in_log_detected() {
        let events = vec![ev(
            0,
            0,
            AuditEventKind::SendPosted {
                dst: 1,
                tag: RESERVED_TAG_BASE + 7,
                bytes: 0,
            },
        )];
        let report = verify(2, events, Vec::new(), Vec::new());
        assert!(matches!(
            report.violations.as_slice(),
            [AuditViolation::ReservedTagTraffic { src: 0, dst: 1, .. }]
        ));
    }

    #[test]
    fn leftovers_become_violations() {
        let msgs = vec![LeftoverMessage {
            dst: 2,
            src: 0,
            tag: 9,
            bytes: 24,
        }];
        let colls = vec![LeftoverCollective {
            seq: 4,
            posted: 3,
            completed: 1,
        }];
        let report = verify(3, Vec::new(), msgs, colls);
        assert_eq!(report.violations.len(), 2);
        assert!(matches!(
            report.violations[0],
            AuditViolation::UnmatchedSend { dst: 2, .. }
        ));
        assert!(matches!(
            report.violations[1],
            AuditViolation::UnbalancedCollective {
                seq: 4,
                posted: 3,
                completed: 1,
                size: 3
            }
        ));
        let rendered = format!("{report}");
        assert!(rendered.contains("unmatched send"), "{rendered}");
        assert!(rendered.contains("unbalanced collective"), "{rendered}");
    }

    #[test]
    fn audit_mode_resolution() {
        assert!(AuditMode::Enabled.is_enabled());
        assert!(!AuditMode::Disabled.is_enabled());
        // Default mode in a test build (debug assertions on, env unset or
        // set by the harness) — just ensure it doesn't panic.
        let _ = AuditMode::Default.is_enabled();
    }
}

//! Property-based tests of the FEM substrate: kernel symmetry and
//! semi-definiteness, mapping consistency, and load-vector exactness over
//! randomly distorted elements.

use proptest::prelude::*;
use std::sync::Arc;

use hymv_fem::kernel::{ElasticityKernel, ElementKernel, KernelScratch, PoissonKernel};
use hymv_fem::traction::{accumulate_traction, TractionSpec};
use hymv_mesh::ElementType;

/// A randomly but safely distorted element: reference coordinates plus a
/// small smooth perturbation (keeps Jacobians positive).
fn distorted_coords(et: ElementType, amp: f64, seed: [f64; 6]) -> Vec<[f64; 3]> {
    et.ref_coords()
        .iter()
        .map(|r| {
            [
                r[0] + amp * (seed[0] * r[1] + seed[1] * r[2] * r[2]),
                r[1] + amp * (seed[2] * r[2] + seed[3] * r[0] * r[0]),
                r[2] + amp * (seed[4] * r[0] + seed[5] * r[1] * r[1]),
            ]
        })
        .collect()
}

fn any_type() -> impl Strategy<Value = ElementType> {
    prop_oneof![
        Just(ElementType::Hex8),
        Just(ElementType::Hex20),
        Just(ElementType::Hex27),
        Just(ElementType::Tet4),
        Just(ElementType::Tet10),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Ke is symmetric and positive semi-definite (checked via xᵀKx ≥ 0
    /// for random x) for both operators on random distorted elements.
    #[test]
    fn kernels_symmetric_and_psd(
        et in any_type(),
        amp in 0.0f64..0.08,
        seed in proptest::array::uniform6(-1.0f64..1.0),
        xs in proptest::collection::vec(-1.0f64..1.0, 81),
    ) {
        let coords = distorted_coords(et, amp, seed);
        let mut scratch = KernelScratch::default();
        for (kernel, name) in [
            (Box::new(PoissonKernel::new(et)) as Box<dyn ElementKernel>, "poisson"),
            (
                Box::new(ElasticityKernel::new(et, 100.0, 0.28, [0.0; 3])) as Box<dyn ElementKernel>,
                "elasticity",
            ),
        ] {
            let nd = kernel.ndof_elem();
            let mut ke = vec![0.0; nd * nd];
            kernel.compute_ke(&coords, &mut ke, &mut scratch);
            for i in 0..nd {
                for j in 0..i {
                    prop_assert!(
                        (ke[j * nd + i] - ke[i * nd + j]).abs() < 1e-8 * (1.0 + ke[i * nd + j].abs()),
                        "{} ({},{})", name, i, j
                    );
                }
            }
            let x = &xs[..nd];
            let mut kx = vec![0.0; nd];
            for j in 0..nd {
                for i in 0..nd {
                    kx[i] += ke[j * nd + i] * x[j];
                }
            }
            let xkx: f64 = x.iter().zip(&kx).map(|(a, b)| a * b).sum();
            prop_assert!(xkx > -1e-8, "{name}: xᵀKx = {xkx}");
        }
    }

    /// The Poisson load vector with unit body force integrates to the
    /// element volume for any distortion (partition of unity under the
    /// isoparametric map).
    #[test]
    fn unit_body_force_integrates_to_volume(
        et in any_type(),
        amp in 0.0f64..0.08,
        seed in proptest::array::uniform6(-1.0f64..1.0),
    ) {
        let coords = distorted_coords(et, amp, seed);
        let kernel = PoissonKernel::with_body(et, Arc::new(|_| 1.0));
        let npe = et.nodes_per_elem();
        let mut fe = vec![0.0; npe];
        kernel.compute_fe(&coords, &mut fe, &mut KernelScratch::default());
        let total: f64 = fe.iter().sum();
        // Volume by divergence theorem via the stiffness route is
        // circular; instead compare against the quadrature volume.
        let vol: f64 = {
            use hymv_fem::kernel::default_rule;
            use hymv_fem::mapping::jacobian;
            use hymv_fem::shape::shape_gradients;
            let mut dn = vec![0.0; 3 * npe];
            default_rule(et)
                .iter()
                .map(|q| {
                    shape_gradients(et, q.xi, &mut dn);
                    q.w * jacobian(&coords, &dn).det
                })
                .sum()
        };
        prop_assert!((total - vol).abs() < 1e-10 * (1.0 + vol), "{total} vs {vol}");
    }

    /// Rigid-body modes stay in the elasticity null space under
    /// distortion.
    #[test]
    fn rigid_modes_annihilated(
        et in any_type(),
        amp in 0.0f64..0.06,
        seed in proptest::array::uniform6(-1.0f64..1.0),
        t in proptest::array::uniform3(-2.0f64..2.0),
    ) {
        let coords = distorted_coords(et, amp, seed);
        let kernel = ElasticityKernel::new(et, 10.0, 0.3, [0.0; 3]);
        let nd = kernel.ndof_elem();
        let mut ke = vec![0.0; nd * nd];
        kernel.compute_ke(&coords, &mut ke, &mut KernelScratch::default());
        // Random translation t plus a random infinitesimal rotation.
        let u: Vec<f64> = coords
            .iter()
            .flat_map(|x| {
                [
                    t[0] + 0.3 * x[1] - 0.1 * x[2],
                    t[1] - 0.3 * x[0] + 0.2 * x[2],
                    t[2] + 0.1 * x[0] - 0.2 * x[1],
                ]
            })
            .collect();
        let scale: f64 = ke.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for i in 0..nd {
            let v: f64 = (0..nd).map(|j| ke[j * nd + i] * u[j]).sum();
            prop_assert!(v.abs() < 1e-8 * (1.0 + scale), "dof {i}: {v}");
        }
    }

    /// A constant traction over the whole element boundary integrates to
    /// zero net force on a *closed* surface (divergence theorem).
    #[test]
    fn closed_surface_traction_balances(
        et in any_type(),
        amp in 0.0f64..0.06,
        seed in proptest::array::uniform6(-1.0f64..1.0),
        t in proptest::array::uniform3(-3.0f64..3.0),
    ) {
        let coords = distorted_coords(et, amp, seed);
        // Apply the same constant traction on every face: net force is
        // t · total area (not zero), but *per component* the face sum
        // equals t_c × total area, so instead verify consistency: the sum
        // of per-face areas implied by a unit traction is positive and
        // the vector result is exactly t × that area.
        let spec_unit = TractionSpec::new(1, Arc::new(|_| Some(vec![1.0])));
        let npe = et.nodes_per_elem();
        let mut fe_area = vec![0.0; npe];
        accumulate_traction(et, &coords, &spec_unit, &mut fe_area);
        let area: f64 = fe_area.iter().sum();
        prop_assert!(area > 0.0);

        let tv = t.to_vec();
        let spec_t = TractionSpec::new(3, Arc::new(move |_| Some(tv.clone())));
        let mut fe = vec![0.0; npe * 3];
        accumulate_traction(et, &coords, &spec_t, &mut fe);
        for c in 0..3 {
            let total: f64 = (0..npe).map(|i| fe[3 * i + c]).sum();
            prop_assert!(
                (total - t[c] * area).abs() < 1e-9 * (1.0 + area),
                "component {c}: {total} vs {}", t[c] * area
            );
        }
    }
}

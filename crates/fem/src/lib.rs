//! # hymv-fem — finite element discretization substrate
//!
//! HYMV consumes *element matrices*; this crate computes them. It implements
//! the discretization machinery the paper's experiments require:
//!
//! * Gauss–Legendre (hex) and Keast (tet) [`quadrature`] rules,
//! * [`shape`] functions and reference gradients for Hex8/Hex20/Hex27 and
//!   Tet4/Tet10 in the canonical node order of `hymv-mesh`,
//! * isoparametric [`mapping`] (Jacobian, physical gradients),
//! * element [`kernel`]s — the Poisson (Laplacian) operator of §V-B and the
//!   linear-elasticity operator of §V-C.2 — producing column-major `Ke`
//!   and load vectors `fe`,
//! * [`dirichlet`] constraint extraction, and
//! * the paper's [`analytic`] verification solutions (sin-product Poisson,
//!   Timoshenko's prismatic bar stretched by its own weight).
//!
//! Element matrices are written **column-major** into caller-provided
//! slices, matching the layout HYMV's vectorized EMV kernel requires
//! (paper §IV-E, equation (4)).

#![forbid(unsafe_code)]

pub mod analytic;
pub mod dirichlet;
pub mod kernel;
pub mod mapping;
pub mod quadrature;
pub mod shape;
pub mod traction;

pub use kernel::{ElasticityKernel, ElementKernel, PoissonKernel};

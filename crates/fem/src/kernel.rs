//! Element operators: the kernels that produce `Ke` and `fe`.
//!
//! The paper's two evaluation operators are implemented:
//!
//! * [`PoissonKernel`] — `(Ke)_ij = ∫ ∇φi · ∇φj dV` (equation (3)),
//! * [`ElasticityKernel`] — isotropic linear elasticity,
//!   `K_{ai,bj} = ∫ λ ∂ᵢNa ∂ⱼNb + μ ∂ⱼNa ∂ᵢNb + μ δᵢⱼ ∇Na·∇Nb dV`.
//!
//! Element matrices are written **column-major** (`ke[col*nd + row]`) — the
//! layout HYMV's SIMD EMV kernel consumes (paper §IV-E). Matrices are
//! symmetric, so the layout choice does not change values, only the access
//! pattern.
//!
//! Per-quadrature-point shape data is precomputed once per kernel (it is
//! element-independent); per-element work is Jacobian, physical gradients,
//! and accumulation, which is what the matrix-free baseline re-executes on
//! every SPMV (Algorithm 4) and what HYMV executes once at setup.

use std::sync::Arc;

use hymv_mesh::ElementType;

use crate::mapping::{jacobian, physical_gradients, physical_point};
use crate::quadrature::{hex_rule, tet_rule, QPoint};
use crate::shape::{shape_gradients, shape_values};

/// Precomputed reference-space data at one quadrature point.
struct QpData {
    w: f64,
    /// Shape values, `npe`.
    n: Vec<f64>,
    /// Reference gradients, `npe × 3` node-major.
    dn_ref: Vec<f64>,
}

fn precompute(et: ElementType, rule: &[QPoint]) -> Vec<QpData> {
    let npe = et.nodes_per_elem();
    rule.iter()
        .map(|q| {
            let mut n = vec![0.0; npe];
            let mut dn_ref = vec![0.0; 3 * npe];
            shape_values(et, q.xi, &mut n);
            shape_gradients(et, q.xi, &mut dn_ref);
            QpData { w: q.w, n, dn_ref }
        })
        .collect()
}

/// Default quadrature for an element type: exact for the stiffness of
/// undistorted elements, adequate for mildly distorted ones.
pub fn default_rule(et: ElementType) -> Vec<QPoint> {
    match et {
        ElementType::Hex8 => hex_rule(2),
        ElementType::Hex20 | ElementType::Hex27 => hex_rule(3),
        ElementType::Tet4 => tet_rule(2),
        ElementType::Tet10 => tet_rule(4),
    }
}

/// Reusable per-thread scratch for element computations, to keep the hot
/// (matrix-free) path allocation-free.
#[derive(Default)]
pub struct KernelScratch {
    dn_phys: Vec<f64>,
}

impl KernelScratch {
    fn grads(&mut self, npe: usize) -> &mut [f64] {
        self.dn_phys.resize(3 * npe, 0.0);
        &mut self.dn_phys
    }
}

/// A PDE operator evaluated element-by-element.
pub trait ElementKernel: Send + Sync {
    /// Degrees of freedom per node (1 for Poisson, 3 for elasticity).
    fn ndof_per_node(&self) -> usize;

    /// The element type this kernel is instantiated for.
    fn elem_type(&self) -> ElementType;

    /// Element matrix dimension `nd = npe × ndof`.
    fn ndof_elem(&self) -> usize {
        self.elem_type().nodes_per_elem() * self.ndof_per_node()
    }

    /// Compute the column-major element matrix (`nd × nd`) for an element
    /// with the given nodal coordinates.
    fn compute_ke(&self, coords: &[[f64; 3]], ke: &mut [f64], scratch: &mut KernelScratch);

    /// Compute the element load vector (`nd`).
    fn compute_fe(&self, coords: &[[f64; 3]], fe: &mut [f64], scratch: &mut KernelScratch);

    /// Analytic floating-point-operation count of one `compute_ke` call,
    /// used by the throughput experiments (Table I, Fig 10).
    fn ke_flops(&self) -> u64;
}

// ---------------------------------------------------------------- Poisson

/// The Laplacian operator of the paper's Poisson experiments, with an
/// optional body-force field for the right-hand side.
pub struct PoissonKernel {
    et: ElementType,
    qp: Vec<QpData>,
    body: Arc<dyn Fn([f64; 3]) -> f64 + Send + Sync>,
}

impl PoissonKernel {
    /// Laplacian with zero body force.
    pub fn new(et: ElementType) -> Self {
        Self::with_body(et, Arc::new(|_| 0.0))
    }

    /// Laplacian with body force `b(x)` (the weak form's `∫ b φj dV`).
    pub fn with_body(et: ElementType, body: Arc<dyn Fn([f64; 3]) -> f64 + Send + Sync>) -> Self {
        let qp = precompute(et, &default_rule(et));
        PoissonKernel { et, qp, body }
    }
}

impl ElementKernel for PoissonKernel {
    fn ndof_per_node(&self) -> usize {
        1
    }

    fn elem_type(&self) -> ElementType {
        self.et
    }

    fn compute_ke(&self, coords: &[[f64; 3]], ke: &mut [f64], scratch: &mut KernelScratch) {
        let npe = self.et.nodes_per_elem();
        debug_assert_eq!(ke.len(), npe * npe);
        debug_assert_eq!(coords.len(), npe);
        ke.fill(0.0);
        for qp in &self.qp {
            let jac = jacobian(coords, &qp.dn_ref);
            let g = scratch.grads(npe);
            physical_gradients(&jac, &qp.dn_ref, g);
            let wd = qp.w * jac.det;
            for j in 0..npe {
                let gj = [g[3 * j], g[3 * j + 1], g[3 * j + 2]];
                let col = &mut ke[j * npe..(j + 1) * npe];
                for (i, kij) in col.iter_mut().enumerate() {
                    *kij += wd * (g[3 * i] * gj[0] + g[3 * i + 1] * gj[1] + g[3 * i + 2] * gj[2]);
                }
            }
        }
    }

    fn compute_fe(&self, coords: &[[f64; 3]], fe: &mut [f64], scratch: &mut KernelScratch) {
        let npe = self.et.nodes_per_elem();
        debug_assert_eq!(fe.len(), npe);
        let _ = scratch;
        fe.fill(0.0);
        for qp in &self.qp {
            let jac = jacobian(coords, &qp.dn_ref);
            let x = physical_point(coords, &qp.n);
            let wb = qp.w * jac.det * (self.body)(x);
            for i in 0..npe {
                fe[i] += wb * qp.n[i];
            }
        }
    }

    fn ke_flops(&self) -> u64 {
        let npe = self.et.nodes_per_elem() as u64;
        let nq = self.qp.len() as u64;
        // Per qp: Jacobian (18·npe mults+adds), inverse (~50), physical
        // gradients (15·npe), accumulation (7·npe²).
        nq * (18 * npe + 50 + 15 * npe + 7 * npe * npe)
    }
}

// -------------------------------------------------------------- Elasticity

/// Isotropic linear elasticity (3 dofs per node) with a constant body
/// force (gravity), as in the paper's prismatic-bar experiments.
pub struct ElasticityKernel {
    et: ElementType,
    qp: Vec<QpData>,
    /// Lamé λ.
    lambda: f64,
    /// Lamé μ (shear modulus).
    mu: f64,
    /// Body force per unit volume, `ρ g` (vector).
    body: [f64; 3],
}

impl ElasticityKernel {
    /// Construct from engineering constants. `body` is the body-force
    /// density vector (e.g. `[0, 0, -ρg]` for gravity).
    pub fn new(et: ElementType, young: f64, poisson: f64, body: [f64; 3]) -> Self {
        assert!(young > 0.0, "Young's modulus must be positive");
        assert!(
            (-1.0..0.5).contains(&poisson),
            "Poisson ratio {poisson} outside (-1, 0.5)"
        );
        let lambda = young * poisson / ((1.0 + poisson) * (1.0 - 2.0 * poisson));
        let mu = young / (2.0 * (1.0 + poisson));
        let qp = precompute(et, &default_rule(et));
        ElasticityKernel {
            et,
            qp,
            lambda,
            mu,
            body,
        }
    }

    /// Lamé parameters `(λ, μ)`.
    pub fn lame(&self) -> (f64, f64) {
        (self.lambda, self.mu)
    }
}

impl ElementKernel for ElasticityKernel {
    fn ndof_per_node(&self) -> usize {
        3
    }

    fn elem_type(&self) -> ElementType {
        self.et
    }

    fn compute_ke(&self, coords: &[[f64; 3]], ke: &mut [f64], scratch: &mut KernelScratch) {
        let npe = self.et.nodes_per_elem();
        let nd = 3 * npe;
        debug_assert_eq!(ke.len(), nd * nd);
        debug_assert_eq!(coords.len(), npe);
        ke.fill(0.0);
        let (la, mu) = (self.lambda, self.mu);
        for qp in &self.qp {
            let jac = jacobian(coords, &qp.dn_ref);
            let g = scratch.grads(npe);
            physical_gradients(&jac, &qp.dn_ref, g);
            let wd = qp.w * jac.det;
            for b in 0..npe {
                let gb = [g[3 * b], g[3 * b + 1], g[3 * b + 2]];
                for a in 0..npe {
                    let ga = [g[3 * a], g[3 * a + 1], g[3 * a + 2]];
                    let dot = ga[0] * gb[0] + ga[1] * gb[1] + ga[2] * gb[2];
                    // 3×3 block for (node a, node b):
                    // K_{ai,bj} = λ ∂ᵢNa ∂ⱼNb + μ ∂ⱼNa ∂ᵢNb + μ δᵢⱼ ∇Na·∇Nb
                    for j in 0..3 {
                        let col = (3 * b + j) * nd;
                        for i in 0..3 {
                            let mut v = la * ga[i] * gb[j] + mu * ga[j] * gb[i];
                            if i == j {
                                v += mu * dot;
                            }
                            ke[col + 3 * a + i] += wd * v;
                        }
                    }
                }
            }
        }
    }

    fn compute_fe(&self, coords: &[[f64; 3]], fe: &mut [f64], scratch: &mut KernelScratch) {
        let npe = self.et.nodes_per_elem();
        debug_assert_eq!(fe.len(), 3 * npe);
        let _ = scratch;
        fe.fill(0.0);
        for qp in &self.qp {
            let jac = jacobian(coords, &qp.dn_ref);
            let wd = qp.w * jac.det;
            for i in 0..npe {
                for c in 0..3 {
                    fe[3 * i + c] += wd * qp.n[i] * self.body[c];
                }
            }
        }
    }

    fn ke_flops(&self) -> u64 {
        let npe = self.et.nodes_per_elem() as u64;
        let nq = self.qp.len() as u64;
        // Per qp: Jacobian + inverse + physical gradients as in Poisson,
        // plus ~40 flops per (a, b) node pair for the 3×3 block.
        nq * (18 * npe + 50 + 15 * npe + 40 * npe * npe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_hex_coords(et: ElementType, h: f64) -> Vec<[f64; 3]> {
        et.ref_coords()
            .iter()
            .map(|r| {
                [
                    (r[0] + 1.0) / 2.0 * h,
                    (r[1] + 1.0) / 2.0 * h,
                    (r[2] + 1.0) / 2.0 * h,
                ]
            })
            .collect()
    }

    #[test]
    fn poisson_ke_rows_sum_to_zero() {
        // Constant fields are in the Laplacian's null space.
        for et in [
            ElementType::Hex8,
            ElementType::Hex20,
            ElementType::Hex27,
            ElementType::Tet10,
        ] {
            let k = PoissonKernel::new(et);
            let npe = et.nodes_per_elem();
            let coords = if et.is_hex() {
                unit_hex_coords(et, 0.5)
            } else {
                et.ref_coords()
            };
            let mut ke = vec![0.0; npe * npe];
            let mut scratch = KernelScratch::default();
            k.compute_ke(&coords, &mut ke, &mut scratch);
            for i in 0..npe {
                let row_sum: f64 = (0..npe).map(|j| ke[j * npe + i]).sum();
                assert!(row_sum.abs() < 1e-10, "{et:?} row {i}: {row_sum}");
            }
        }
    }

    #[test]
    fn poisson_ke_symmetric_and_psd_diag() {
        let et = ElementType::Hex8;
        let k = PoissonKernel::new(et);
        let coords = unit_hex_coords(et, 1.0);
        let mut ke = vec![0.0; 64];
        let mut scratch = KernelScratch::default();
        k.compute_ke(&coords, &mut ke, &mut scratch);
        for i in 0..8 {
            assert!(ke[i * 8 + i] > 0.0);
            for j in 0..8 {
                assert!((ke[j * 8 + i] - ke[i * 8 + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn poisson_hex8_known_diagonal() {
        // For a unit cube trilinear element, Ke_ii = 1/3 (classical value).
        let et = ElementType::Hex8;
        let k = PoissonKernel::new(et);
        let coords = unit_hex_coords(et, 1.0);
        let mut ke = vec![0.0; 64];
        k.compute_ke(&coords, &mut ke, &mut KernelScratch::default());
        assert!((ke[0] - 1.0 / 3.0).abs() < 1e-12, "got {}", ke[0]);
    }

    #[test]
    fn poisson_fe_integrates_body() {
        // With b(x) = 1, Σ fe_i = ∫ 1 dV = element volume.
        let et = ElementType::Hex8;
        let k = PoissonKernel::with_body(et, Arc::new(|_| 1.0));
        let h = 0.5;
        let coords = unit_hex_coords(et, h);
        let mut fe = vec![0.0; 8];
        k.compute_fe(&coords, &mut fe, &mut KernelScratch::default());
        let total: f64 = fe.iter().sum();
        assert!((total - h * h * h).abs() < 1e-12);
    }

    #[test]
    fn elasticity_rigid_body_modes_in_null_space() {
        // Translations and infinitesimal rotations produce Ke·u = 0.
        for et in [ElementType::Hex8, ElementType::Hex20, ElementType::Tet10] {
            let k = ElasticityKernel::new(et, 100.0, 0.3, [0.0; 3]);
            let npe = et.nodes_per_elem();
            let nd = 3 * npe;
            let coords = if et.is_hex() {
                unit_hex_coords(et, 1.0)
            } else {
                et.ref_coords()
            };
            let mut ke = vec![0.0; nd * nd];
            k.compute_ke(&coords, &mut ke, &mut KernelScratch::default());

            let modes: Vec<Box<dyn Fn([f64; 3]) -> [f64; 3]>> = vec![
                Box::new(|_| [1.0, 0.0, 0.0]),
                Box::new(|_| [0.0, 1.0, 0.0]),
                Box::new(|_| [0.0, 0.0, 1.0]),
                Box::new(|x| [-x[1], x[0], 0.0]),
                Box::new(|x| [0.0, -x[2], x[1]]),
                Box::new(|x| [x[2], 0.0, -x[0]]),
            ];
            for (m, mode) in modes.iter().enumerate() {
                let u: Vec<f64> = coords.iter().flat_map(|&x| mode(x)).collect();
                for i in 0..nd {
                    let v: f64 = (0..nd).map(|j| ke[j * nd + i] * u[j]).sum();
                    assert!(v.abs() < 1e-9, "{et:?} mode {m} dof {i}: {v}");
                }
            }
        }
    }

    #[test]
    fn elasticity_ke_symmetric() {
        let et = ElementType::Hex8;
        let k = ElasticityKernel::new(et, 210.0, 0.25, [0.0; 3]);
        let coords = unit_hex_coords(et, 0.7);
        let nd = 24;
        let mut ke = vec![0.0; nd * nd];
        k.compute_ke(&coords, &mut ke, &mut KernelScratch::default());
        for i in 0..nd {
            for j in 0..nd {
                assert!((ke[j * nd + i] - ke[i * nd + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn elasticity_fe_total_force_is_weight() {
        let et = ElementType::Hex20;
        let rho_g = 9.81 * 2.0;
        let k = ElasticityKernel::new(et, 100.0, 0.3, [0.0, 0.0, -rho_g]);
        let h = 0.5;
        let coords = unit_hex_coords(et, h);
        let mut fe = vec![0.0; 60];
        k.compute_fe(&coords, &mut fe, &mut KernelScratch::default());
        let fz: f64 = (0..20).map(|i| fe[3 * i + 2]).sum();
        assert!((fz + rho_g * h * h * h).abs() < 1e-10, "total weight {fz}");
        let fx: f64 = (0..20).map(|i| fe[3 * i]).sum();
        assert!(fx.abs() < 1e-12);
    }

    #[test]
    fn lame_constants() {
        let k = ElasticityKernel::new(ElementType::Hex8, 200.0, 0.25, [0.0; 3]);
        let (la, mu) = k.lame();
        assert!((la - 80.0).abs() < 1e-12);
        assert!((mu - 80.0).abs() < 1e-12);
    }

    #[test]
    fn flop_counts_positive_and_scale() {
        let p8 = PoissonKernel::new(ElementType::Hex8).ke_flops();
        let p27 = PoissonKernel::new(ElementType::Hex27).ke_flops();
        assert!(
            p27 > 10 * p8,
            "quadratic elements cost much more: {p8} vs {p27}"
        );
        let e8 = ElasticityKernel::new(ElementType::Hex8, 1.0, 0.3, [0.0; 3]).ke_flops();
        assert!(e8 > p8, "elasticity costs more than Poisson");
    }

    #[test]
    #[should_panic(expected = "Poisson ratio")]
    fn invalid_poisson_ratio_rejected() {
        let _ = ElasticityKernel::new(ElementType::Hex8, 1.0, 0.5, [0.0; 3]);
    }
}

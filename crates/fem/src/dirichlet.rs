//! Dirichlet constraint extraction.
//!
//! All three SPMV methods (HYMV, matrix-assembled, matrix-free) must apply
//! identical boundary conditions for the comparison to be meaningful. The
//! approach (used by the paper's PETSc MatShell integration) is operator
//! wrapping: the raw operator `K` is replaced by
//! `K̂ = [K_ii 0; 0 I]` with the eliminated coupling moved to the
//! right-hand side, `f̂_i = f_i − K_ib ū`, `f̂_b = ū`. The wrapper lives in
//! `hymv-core`; this module extracts, per rank, the constrained global
//! dofs and their prescribed values from a geometric predicate.

use std::sync::Arc;

use hymv_mesh::MeshPartition;

/// A geometric Dirichlet specification: given a node's coordinates, return
/// the prescribed values of its `ndof` components, or `None` if the node is
/// unconstrained.
#[derive(Clone)]
pub struct DirichletSpec {
    predicate: Arc<dyn Fn([f64; 3]) -> Option<Vec<f64>> + Send + Sync>,
    ndof: usize,
}

impl DirichletSpec {
    /// Build from a predicate. The closure must return vectors of length
    /// `ndof` (checked at extraction time).
    pub fn new(
        ndof: usize,
        predicate: Arc<dyn Fn([f64; 3]) -> Option<Vec<f64>> + Send + Sync>,
    ) -> Self {
        assert!(ndof > 0);
        DirichletSpec { predicate, ndof }
    }

    /// Homogeneous Dirichlet (`u = 0`) on nodes satisfying `on_boundary`.
    pub fn zero(ndof: usize, on_boundary: Arc<dyn Fn([f64; 3]) -> bool + Send + Sync>) -> Self {
        Self::new(
            ndof,
            Arc::new(move |x| {
                if on_boundary(x) {
                    Some(vec![0.0; ndof])
                } else {
                    None
                }
            }),
        )
    }

    /// No constraints at all (pure Neumann / singular systems — used by
    /// tests that only exercise the raw operator).
    pub fn none(ndof: usize) -> Self {
        Self::new(ndof, Arc::new(|_| None))
    }

    /// Degrees of freedom per node.
    pub fn ndof(&self) -> usize {
        self.ndof
    }

    /// Evaluate the predicate at a point.
    pub fn at(&self, x: [f64; 3]) -> Option<Vec<f64>> {
        let v = (self.predicate)(x);
        if let Some(ref vals) = v {
            assert_eq!(vals.len(), self.ndof, "predicate returned wrong dof count");
        }
        v
    }
}

/// Extract the constrained `(global_dof, value)` pairs visible to one rank
/// — every node referenced by a local element (owned *and* ghost), so that
/// the operator wrapper can mask ghost dofs consistently without extra
/// communication. Results are sorted by dof id and de-duplicated.
pub fn constrained_dofs(part: &MeshPartition, spec: &DirichletSpec) -> Vec<(u64, f64)> {
    let ndof = spec.ndof() as u64;
    let mut out: Vec<(u64, f64)> = Vec::new();
    let mut seen_nodes = std::collections::HashSet::new();
    for e in 0..part.n_elems() {
        let nodes = part.elem_nodes(e);
        let coords = part.elem_node_coords(e);
        for (local, &g) in nodes.iter().enumerate() {
            if !seen_nodes.insert(g) {
                continue;
            }
            if let Some(values) = spec.at(coords[local]) {
                for (c, &v) in values.iter().enumerate() {
                    out.push((g * ndof + c as u64, v));
                }
            }
        }
    }
    out.sort_unstable_by_key(|&(d, _)| d);
    out.dedup_by_key(|&mut (d, _)| d);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    fn on_cube_boundary(x: [f64; 3]) -> bool {
        x.iter().any(|&c| c < 1e-12 || c > 1.0 - 1e-12)
    }

    #[test]
    fn zero_spec_marks_all_cube_faces() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let spec = DirichletSpec::zero(1, Arc::new(on_cube_boundary));
        let dofs = constrained_dofs(&pm.parts[0], &spec);
        // 4×4×4 grid: interior is 2×2×2 = 8 nodes; 64 − 8 = 56 boundary.
        assert_eq!(dofs.len(), 56);
        assert!(dofs.iter().all(|&(_, v)| v == 0.0));
        // Sorted and unique.
        assert!(dofs.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn multi_rank_union_covers_all_boundary() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 3, PartitionMethod::Slabs);
        let spec = DirichletSpec::zero(1, Arc::new(on_cube_boundary));
        let mut union = std::collections::HashSet::new();
        for part in &pm.parts {
            for (d, _) in constrained_dofs(part, &spec) {
                union.insert(d);
            }
        }
        assert_eq!(union.len(), 56);
    }

    #[test]
    fn vector_valued_constraints() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        // Prescribe u = (x, 2y, 3z) on the top face z = 1.
        let spec = DirichletSpec::new(
            3,
            Arc::new(|x| {
                if x[2] > 1.0 - 1e-12 {
                    Some(vec![x[0], 2.0 * x[1], 3.0 * x[2]])
                } else {
                    None
                }
            }),
        );
        let dofs = constrained_dofs(&pm.parts[0], &spec);
        // 3×3 top-face nodes × 3 dofs.
        assert_eq!(dofs.len(), 27);
        // The z-component of every constrained node is 3·1.
        let zvals: Vec<f64> = dofs
            .iter()
            .filter(|&&(d, _)| d % 3 == 2)
            .map(|&(_, v)| v)
            .collect();
        assert!(zvals.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn ghost_nodes_included() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 3, PartitionMethod::Slabs);
        let spec = DirichletSpec::zero(1, Arc::new(on_cube_boundary));
        // Middle rank sees boundary nodes owned by neighbours (side faces
        // of adjacent slabs).
        let mp = &pm.parts[1];
        let dofs = constrained_dofs(mp, &spec);
        let ghosts = dofs
            .iter()
            .filter(|&&(d, _)| d < mp.node_range.0 || d >= mp.node_range.1)
            .count();
        assert!(
            ghosts > 0,
            "middle slab must constrain ghost boundary nodes"
        );
    }

    #[test]
    fn none_spec_is_empty() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let dofs = constrained_dofs(&pm.parts[0], &DirichletSpec::none(1));
        assert!(dofs.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong dof count")]
    fn wrong_dof_count_detected() {
        let spec = DirichletSpec::new(3, Arc::new(|_| Some(vec![0.0])));
        let _ = spec.at([0.0; 3]);
    }
}

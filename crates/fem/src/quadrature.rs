//! Numerical integration rules.
//!
//! Hexes use tensor-product Gauss–Legendre over `[-1,1]³` (weights sum to
//! 8); tetrahedra use Keast rules over the unit simplex (weights sum to
//! `1/6`, the simplex volume) — the weights already include the volume
//! normalization.

/// One integration point: reference coordinates and weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QPoint {
    /// Reference coordinates.
    pub xi: [f64; 3],
    /// Weight (includes domain-volume normalization).
    pub w: f64,
}

/// 1D Gauss–Legendre abscissae/weights on `[-1,1]` for `n` ∈ 1..=5.
pub fn gauss_1d(n: usize) -> Vec<(f64, f64)> {
    match n {
        1 => vec![(0.0, 2.0)],
        2 => {
            let a = 1.0 / 3.0f64.sqrt();
            vec![(-a, 1.0), (a, 1.0)]
        }
        3 => {
            let a = (3.0f64 / 5.0).sqrt();
            vec![(-a, 5.0 / 9.0), (0.0, 8.0 / 9.0), (a, 5.0 / 9.0)]
        }
        4 => {
            let a = (3.0 / 7.0 - 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let b = (3.0 / 7.0 + 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let wa = (18.0 + 30.0f64.sqrt()) / 36.0;
            let wb = (18.0 - 30.0f64.sqrt()) / 36.0;
            vec![(-b, wb), (-a, wa), (a, wa), (b, wb)]
        }
        5 => {
            let a = (5.0 - 2.0 * (10.0f64 / 7.0).sqrt()).sqrt() / 3.0;
            let b = (5.0 + 2.0 * (10.0f64 / 7.0).sqrt()).sqrt() / 3.0;
            let wa = (322.0 + 13.0 * 70.0f64.sqrt()) / 900.0;
            let wb = (322.0 - 13.0 * 70.0f64.sqrt()) / 900.0;
            vec![(-b, wb), (-a, wa), (0.0, 128.0 / 225.0), (a, wa), (b, wb)]
        }
        _ => panic!("gauss_1d supports n in 1..=5, got {n}"),
    }
}

/// Tensor-product Gauss rule with `n³` points over the bi-unit cube.
pub fn hex_rule(n: usize) -> Vec<QPoint> {
    let g = gauss_1d(n);
    let mut pts = Vec::with_capacity(n * n * n);
    for &(z, wz) in &g {
        for &(y, wy) in &g {
            for &(x, wx) in &g {
                pts.push(QPoint {
                    xi: [x, y, z],
                    w: wx * wy * wz,
                });
            }
        }
    }
    pts
}

/// Keast rule over the unit tetrahedron, exact to the given polynomial
/// `degree` (supported: 1, 2, 3, 4). Weights sum to 1/6.
pub fn tet_rule(degree: usize) -> Vec<QPoint> {
    match degree {
        0 | 1 => vec![QPoint {
            xi: [0.25, 0.25, 0.25],
            w: 1.0 / 6.0,
        }],
        2 => {
            let a = (5.0 + 3.0 * 5.0f64.sqrt()) / 20.0;
            let b = (5.0 - 5.0f64.sqrt()) / 20.0;
            permute_bary_31(a, b, 1.0 / 24.0)
        }
        3 => {
            let mut pts = vec![QPoint {
                xi: [0.25, 0.25, 0.25],
                w: -2.0 / 15.0,
            }];
            pts.extend(permute_bary_31(0.5, 1.0 / 6.0, 3.0 / 40.0));
            pts
        }
        4 => {
            // Keast degree-4, 11 points.
            let mut pts = vec![QPoint {
                xi: [0.25, 0.25, 0.25],
                w: -74.0 / 5625.0,
            }];
            pts.extend(permute_bary_31(11.0 / 14.0, 1.0 / 14.0, 343.0 / 45000.0));
            let a = (1.0 + (5.0f64 / 14.0).sqrt()) / 4.0;
            let b = (1.0 - (5.0f64 / 14.0).sqrt()) / 4.0;
            pts.extend(permute_bary_22(a, b, 56.0 / 2250.0));
            pts
        }
        _ => panic!("tet_rule supports degree in 0..=4, got {degree}"),
    }
}

/// The 4 points with barycentric pattern (a, b, b, b).
fn permute_bary_31(a: f64, b: f64, w: f64) -> Vec<QPoint> {
    // Barycentric (l0,l1,l2,l3) ↦ cartesian (l1,l2,l3) on the unit simplex.
    let barys = [[a, b, b, b], [b, a, b, b], [b, b, a, b], [b, b, b, a]];
    barys
        .iter()
        .map(|l| QPoint {
            xi: [l[1], l[2], l[3]],
            w,
        })
        .collect()
}

/// The 6 points with barycentric pattern (a, a, b, b).
fn permute_bary_22(a: f64, b: f64, w: f64) -> Vec<QPoint> {
    let barys = [
        [a, a, b, b],
        [a, b, a, b],
        [a, b, b, a],
        [b, a, a, b],
        [b, a, b, a],
        [b, b, a, a],
    ];
    barys
        .iter()
        .map(|l| QPoint {
            xi: [l[1], l[2], l[3]],
            w,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ∫ x^i y^j z^k over the bi-unit cube.
    fn cube_monomial(i: u32, j: u32, k: u32) -> f64 {
        fn m1(e: u32) -> f64 {
            if e % 2 == 1 {
                0.0
            } else {
                2.0 / (e as f64 + 1.0)
            }
        }
        m1(i) * m1(j) * m1(k)
    }

    /// ∫ x^i y^j z^k over the unit tetrahedron = i! j! k! / (i+j+k+3)!.
    fn tet_monomial(i: u32, j: u32, k: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|x| x as f64).product::<f64>().max(1.0)
        }
        fact(i) * fact(j) * fact(k) / fact(i + j + k + 3)
    }

    fn integrate(pts: &[QPoint], i: u32, j: u32, k: u32) -> f64 {
        let e = |d: u32| i32::try_from(d).expect("monomial exponent fits i32");
        let (pi, pj, pk) = (e(i), e(j), e(k));
        pts.iter()
            .map(|q| q.w * q.xi[0].powi(pi) * q.xi[1].powi(pj) * q.xi[2].powi(pk))
            .sum()
    }

    #[test]
    fn gauss_weights_sum_to_two() {
        for n in 1..=5 {
            let s: f64 = gauss_1d(n).iter().map(|&(_, w)| w).sum();
            assert!((s - 2.0).abs() < 1e-14, "n={n}: {s}");
        }
    }

    #[test]
    fn hex_rule_exact_for_degree_2n_minus_1() {
        for n in 1..=4usize {
            let pts = hex_rule(n);
            assert_eq!(pts.len(), n * n * n);
            let deg = 2 * n as u32 - 1;
            for i in 0..=deg {
                for j in 0..=deg {
                    for k in 0..=deg {
                        let got = integrate(&pts, i, j, k);
                        let want = cube_monomial(i, j, k);
                        assert!(
                            (got - want).abs() < 1e-12,
                            "n={n} monomial ({i},{j},{k}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tet_rules_exact_to_stated_degree() {
        for degree in 1..=4usize {
            let pts = tet_rule(degree);
            for total in 0..=degree as u32 {
                for i in 0..=total {
                    for j in 0..=(total - i) {
                        let k = total - i - j;
                        let got = integrate(&pts, i, j, k);
                        let want = tet_monomial(i, j, k);
                        assert!(
                            (got - want).abs() < 1e-12,
                            "degree={degree} monomial ({i},{j},{k}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tet_weights_sum_to_volume() {
        for degree in 1..=4usize {
            let s: f64 = tet_rule(degree).iter().map(|q| q.w).sum();
            assert!((s - 1.0 / 6.0).abs() < 1e-14, "degree {degree}: {s}");
        }
    }

    #[test]
    fn tet_points_inside_simplex_for_positive_rules() {
        // Degree-2 rule has all-interior points.
        for q in tet_rule(2) {
            let l0 = 1.0 - q.xi[0] - q.xi[1] - q.xi[2];
            assert!(l0 > 0.0 && q.xi.iter().all(|&c| c > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "supports")]
    fn unsupported_gauss_order() {
        let _ = gauss_1d(9);
    }

    #[test]
    #[should_panic(expected = "supports")]
    fn unsupported_tet_degree() {
        let _ = tet_rule(9);
    }
}

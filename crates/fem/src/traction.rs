//! Surface (Neumann) loads: `∫_∂Ωt t̄ · φ dA`.
//!
//! The paper's elastic-bar problem applies a uniform traction
//! `t_z = ρ g L_z` on the top face (§V-B). This module integrates
//! tractions over element faces: boundary faces are detected
//! geometrically, and the load vector contribution is computed with a 2D
//! quadrature rule on the reference face, mapped through the surface
//! Jacobian.
//!
//! Face node sets and reference geometry are derived from the canonical
//! volume orderings in `hymv_mesh::element`, so no extra bookkeeping is
//! required from the mesh layer.

use std::sync::Arc;

use hymv_mesh::ElementType;

use crate::quadrature::gauss_1d;
use crate::shape::{shape_gradients, shape_values};

/// A traction specification: given a point on the boundary, return the
/// traction vector (`ndof` components; `None` where no traction acts).
#[derive(Clone)]
pub struct TractionSpec {
    predicate: Arc<dyn Fn([f64; 3]) -> Option<Vec<f64>> + Send + Sync>,
    ndof: usize,
}

impl TractionSpec {
    /// Build from a predicate.
    pub fn new(
        ndof: usize,
        predicate: Arc<dyn Fn([f64; 3]) -> Option<Vec<f64>> + Send + Sync>,
    ) -> Self {
        assert!(ndof > 0);
        TractionSpec { predicate, ndof }
    }

    /// Components per node.
    pub fn ndof(&self) -> usize {
        self.ndof
    }

    /// Evaluate at a surface point.
    pub fn at(&self, x: [f64; 3]) -> Option<Vec<f64>> {
        let t = (self.predicate)(x);
        if let Some(ref v) = t {
            assert_eq!(
                v.len(),
                self.ndof,
                "traction returned wrong component count"
            );
        }
        t
    }
}

/// One face of a reference element: the local node ids on the face and a
/// 2D→3D embedding of the reference face used for quadrature.
pub struct RefFace {
    /// Local (volume) node indices lying on this face.
    pub nodes: Vec<usize>,
    /// Maps face coordinates `(s, t)` to volume reference coordinates.
    pub embed: fn([f64; 2]) -> [f64; 3],
    /// The embedding's (constant) tangent directions `∂ξ/∂s`, `∂ξ/∂t`.
    pub dirs: [[f64; 3]; 2],
    /// Face-coordinate quadrature points and weights.
    pub quad: Vec<([f64; 2], f64)>,
}

/// Hex reference faces: the six planes `ξ_d = ±1`.
fn hex_faces(et: ElementType) -> Vec<RefFace> {
    // Quadrature: tensor Gauss on [-1,1]²; order 3 covers quadratic
    // shape functions against smooth tractions.
    let g = gauss_1d(3);
    let mut quad = Vec::new();
    for &(a, wa) in &g {
        for &(b, wb) in &g {
            quad.push(([a, b], wa * wb));
        }
    }

    // One embedding per (axis, sign): (s, t) fill the other two axes in a
    // fixed order.
    type Embed = fn([f64; 2]) -> [f64; 3];
    let embeds: [Embed; 6] = [
        |p| [-1.0, p[0], p[1]], // x = -1
        |p| [1.0, p[0], p[1]],  // x = +1
        |p| [p[0], -1.0, p[1]], // y = -1
        |p| [p[0], 1.0, p[1]],  // y = +1
        |p| [p[0], p[1], -1.0], // z = -1
        |p| [p[0], p[1], 1.0],  // z = +1
    ];
    let ref_pts = et.ref_coords();
    embeds
        .iter()
        .enumerate()
        .map(|(f, &embed)| {
            let (axis, sign) = (f / 2, if f % 2 == 0 { -1.0 } else { 1.0 });
            let nodes: Vec<usize> = ref_pts
                .iter()
                .enumerate()
                .filter(|(_, r)| (r[axis] - sign).abs() < 1e-12)
                .map(|(i, _)| i)
                .collect();
            // (s, t) fill the two non-fixed axes in ascending order.
            let mut dirs = [[0.0; 3]; 2];
            let free: Vec<usize> = (0..3).filter(|&d| d != axis).collect();
            dirs[0][free[0]] = 1.0;
            dirs[1][free[1]] = 1.0;
            RefFace {
                nodes,
                embed,
                dirs,
                quad: quad.clone(),
            }
        })
        .collect()
}

/// Tet reference faces: the four planes of the unit simplex.
fn tet_faces(et: ElementType) -> Vec<RefFace> {
    // Triangle quadrature on the reference triangle (s, t ≥ 0, s+t ≤ 1):
    // 4-point degree-3 rule (weights sum to 1/2, the triangle area).
    let tri: Vec<([f64; 2], f64)> = vec![
        ([1.0 / 3.0, 1.0 / 3.0], -27.0 / 96.0),
        ([0.6, 0.2], 25.0 / 96.0),
        ([0.2, 0.6], 25.0 / 96.0),
        ([0.2, 0.2], 25.0 / 96.0),
    ];
    type Embed = fn([f64; 2]) -> [f64; 3];
    // Faces: x=0, y=0, z=0, and x+y+z=1.
    let embeds: [Embed; 4] = [
        |p| [0.0, p[0], p[1]],
        |p| [p[0], 0.0, p[1]],
        |p| [p[0], p[1], 0.0],
        |p| [p[0], p[1], 1.0 - p[0] - p[1]],
    ];
    let on_face: [fn(&[f64; 3]) -> bool; 4] = [
        |r| r[0].abs() < 1e-12,
        |r| r[1].abs() < 1e-12,
        |r| r[2].abs() < 1e-12,
        |r| (r[0] + r[1] + r[2] - 1.0).abs() < 1e-12,
    ];
    let dirs: [[[f64; 3]; 2]; 4] = [
        [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]],
        [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]],
        [[1.0, 0.0, -1.0], [0.0, 1.0, -1.0]],
    ];
    let ref_pts = et.ref_coords();
    embeds
        .iter()
        .zip(on_face)
        .zip(dirs)
        .map(|((&embed, pred), dirs)| {
            let nodes: Vec<usize> = ref_pts
                .iter()
                .enumerate()
                .filter(|(_, r)| pred(r))
                .map(|(i, _)| i)
                .collect();
            RefFace {
                nodes,
                embed,
                dirs,
                quad: tri.clone(),
            }
        })
        .collect()
}

/// Reference faces of an element type.
pub fn ref_faces(et: ElementType) -> Vec<RefFace> {
    if et.is_hex() {
        hex_faces(et)
    } else {
        tet_faces(et)
    }
}

/// Accumulate the traction contribution of one element into its load
/// vector `fe` (`npe × ndof`, node-major). A face is integrated when the
/// traction predicate yields a value at **all** of its quadrature points
/// (faces straddling the loaded region are the caller's modeling
/// decision; the paper's loads are full faces).
pub fn accumulate_traction(
    et: ElementType,
    coords: &[[f64; 3]],
    spec: &TractionSpec,
    fe: &mut [f64],
) {
    let npe = et.nodes_per_elem();
    let ndof = spec.ndof();
    debug_assert_eq!(coords.len(), npe);
    debug_assert_eq!(fe.len(), npe * ndof);

    let mut n = vec![0.0; npe];
    let mut dn = vec![0.0; 3 * npe];

    for face in ref_faces(et) {
        // Gather quadrature data first; skip the face unless every point
        // carries a traction.
        let mut contributions: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::new();
        let mut full = true;
        for &(sp, w) in &face.quad {
            let xi = (face.embed)(sp);
            shape_values(et, xi, &mut n);
            shape_gradients(et, xi, &mut dn);
            // Physical point and surface element dA = |x_s × x_t| ds dt,
            // with x_s = Σ xi ∂N_i/∂ξ · ∂ξ/∂s via finite embedding step.
            let x = crate::mapping::physical_point(coords, &n);
            let Some(t) = spec.at(x) else {
                full = false;
                break;
            };
            // Exact tangents by the chain rule: x_s = Σ_i x_i (∇N_i · d_s)
            // with the embedding's constant direction vectors.
            let mut tangents = [[0.0f64; 3]; 2];
            for (d, tan) in tangents.iter_mut().enumerate() {
                let dir = face.dirs[d];
                for (i, xi_c) in coords.iter().enumerate() {
                    let dn_dir =
                        dn[3 * i] * dir[0] + dn[3 * i + 1] * dir[1] + dn[3 * i + 2] * dir[2];
                    for c in 0..3 {
                        tan[c] += xi_c[c] * dn_dir;
                    }
                }
            }
            let cx = tangents[0][1] * tangents[1][2] - tangents[0][2] * tangents[1][1];
            let cy = tangents[0][2] * tangents[1][0] - tangents[0][0] * tangents[1][2];
            let cz = tangents[0][0] * tangents[1][1] - tangents[0][1] * tangents[1][0];
            let da = (cx * cx + cy * cy + cz * cz).sqrt();
            contributions.push((n.clone(), t, w * da));
        }
        if !full {
            continue;
        }
        for (nv, t, wda) in contributions {
            for &i in &face.nodes {
                for c in 0..ndof {
                    fe[i * ndof + c] += wda * nv[i] * t[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_hex(et: ElementType) -> Vec<[f64; 3]> {
        et.ref_coords()
            .iter()
            .map(|r| [(r[0] + 1.0) / 2.0, (r[1] + 1.0) / 2.0, (r[2] + 1.0) / 2.0])
            .collect()
    }

    #[test]
    fn hex_faces_have_right_node_counts() {
        for (et, per_face) in [
            (ElementType::Hex8, 4),
            (ElementType::Hex20, 8),
            (ElementType::Hex27, 9),
        ] {
            let faces = ref_faces(et);
            assert_eq!(faces.len(), 6);
            for f in &faces {
                assert_eq!(f.nodes.len(), per_face, "{et:?}");
            }
        }
    }

    #[test]
    fn tet_faces_have_right_node_counts() {
        for (et, per_face) in [(ElementType::Tet4, 3), (ElementType::Tet10, 6)] {
            let faces = ref_faces(et);
            assert_eq!(faces.len(), 4);
            for f in &faces {
                assert_eq!(f.nodes.len(), per_face, "{et:?}");
            }
        }
    }

    #[test]
    fn constant_traction_integrates_to_force_times_area() {
        // t = (0, 0, 5) on the top face (z = 1) of a unit cube: total
        // force = 5 × area = 5.
        for et in [ElementType::Hex8, ElementType::Hex20, ElementType::Hex27] {
            let coords = unit_hex(et);
            let spec = TractionSpec::new(
                3,
                Arc::new(|x: [f64; 3]| {
                    if x[2] > 1.0 - 1e-9 {
                        Some(vec![0.0, 0.0, 5.0])
                    } else {
                        None
                    }
                }),
            );
            let npe = et.nodes_per_elem();
            let mut fe = vec![0.0; npe * 3];
            accumulate_traction(et, &coords, &spec, &mut fe);
            let fz: f64 = (0..npe).map(|i| fe[3 * i + 2]).sum();
            assert!((fz - 5.0).abs() < 1e-10, "{et:?}: {fz}");
            let fx: f64 = (0..npe).map(|i| fe[3 * i]).sum();
            assert!(fx.abs() < 1e-12);
            // Nothing lands on nodes away from the face.
            let bottom: f64 = et
                .ref_coords()
                .iter()
                .enumerate()
                .filter(|(_, r)| r[2] < -1.0 + 1e-9)
                .map(|(i, _)| fe[3 * i + 2].abs())
                .sum();
            assert!(bottom < 1e-12, "{et:?}");
        }
    }

    #[test]
    fn stretched_face_scales_area() {
        // Stretch the cube ×3 in x: top face area = 3.
        let et = ElementType::Hex8;
        let coords: Vec<[f64; 3]> = unit_hex(et)
            .iter()
            .map(|p| [3.0 * p[0], p[1], p[2]])
            .collect();
        let spec = TractionSpec::new(
            1,
            Arc::new(|x: [f64; 3]| {
                if x[2] > 1.0 - 1e-9 {
                    Some(vec![2.0])
                } else {
                    None
                }
            }),
        );
        let mut fe = vec![0.0; 8];
        accumulate_traction(et, &coords, &spec, &mut fe);
        let total: f64 = fe.iter().sum();
        assert!((total - 6.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn tet_face_integration() {
        // Unit reference tet, traction 1 on the z = 0 face (area 1/2).
        let et = ElementType::Tet10;
        let coords = et.ref_coords();
        let spec = TractionSpec::new(
            1,
            Arc::new(|x: [f64; 3]| {
                if x[2].abs() < 1e-9 {
                    Some(vec![1.0])
                } else {
                    None
                }
            }),
        );
        let mut fe = vec![0.0; 10];
        accumulate_traction(et, &coords, &spec, &mut fe);
        let total: f64 = fe.iter().sum();
        assert!((total - 0.5).abs() < 1e-10, "{total}");
    }

    #[test]
    fn linear_traction_moment() {
        // t(x) = x on the top face of the unit cube: ∫ x dA = 1/2.
        let et = ElementType::Hex27;
        let coords = unit_hex(et);
        let spec = TractionSpec::new(
            1,
            Arc::new(|x: [f64; 3]| {
                if x[2] > 1.0 - 1e-9 {
                    Some(vec![x[0]])
                } else {
                    None
                }
            }),
        );
        let mut fe = vec![0.0; 27];
        accumulate_traction(et, &coords, &spec, &mut fe);
        let total: f64 = fe.iter().sum();
        assert!((total - 0.5).abs() < 1e-9, "{total}");
    }

    #[test]
    fn interior_element_gets_nothing() {
        let et = ElementType::Hex8;
        // Element away from z = 1.
        let coords: Vec<[f64; 3]> = unit_hex(et)
            .iter()
            .map(|p| [p[0], p[1], 0.5 * p[2]])
            .collect();
        let spec = TractionSpec::new(
            1,
            Arc::new(|x: [f64; 3]| {
                if x[2] > 1.0 - 1e-9 {
                    Some(vec![1.0])
                } else {
                    None
                }
            }),
        );
        let mut fe = vec![0.0; 8];
        accumulate_traction(et, &coords, &spec, &mut fe);
        assert!(fe.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "wrong component count")]
    fn component_count_checked() {
        let spec = TractionSpec::new(3, Arc::new(|_| Some(vec![1.0])));
        let _ = spec.at([0.0; 3]);
    }
}

//! Shape functions and reference-coordinate gradients.
//!
//! Node ordering matches `hymv_mesh::ElementType::ref_coords()` exactly —
//! structured meshes are generated *from* those reference coordinates, so
//! consistency is by construction (and asserted in tests).

use hymv_mesh::ElementType;

/// Evaluate all shape functions at reference point `xi`.
///
/// `n` must have length `nodes_per_elem`.
pub fn shape_values(et: ElementType, xi: [f64; 3], n: &mut [f64]) {
    debug_assert_eq!(n.len(), et.nodes_per_elem());
    match et {
        ElementType::Hex8 => hex8_values(xi, n),
        ElementType::Hex20 => hex20_values(xi, n),
        ElementType::Hex27 => hex27_values(xi, n),
        ElementType::Tet4 => tet4_values(xi, n),
        ElementType::Tet10 => tet10_values(xi, n),
    }
}

/// Evaluate all shape-function gradients (w.r.t. reference coordinates) at
/// `xi`. `dn` is `nodes_per_elem × 3`, node-major (`dn[3*i + d]`).
pub fn shape_gradients(et: ElementType, xi: [f64; 3], dn: &mut [f64]) {
    debug_assert_eq!(dn.len(), 3 * et.nodes_per_elem());
    match et {
        ElementType::Hex8 => hex8_gradients(xi, dn),
        ElementType::Hex20 => hex20_gradients(xi, dn),
        ElementType::Hex27 => hex27_gradients(xi, dn),
        ElementType::Tet4 => tet4_gradients(dn),
        ElementType::Tet10 => tet10_gradients(xi, dn),
    }
}

// ------------------------------------------------------------------- Hex8

fn hex8_values(xi: [f64; 3], n: &mut [f64]) {
    for (i, r) in hymv_mesh::element::HEX_CORNERS.iter().enumerate() {
        n[i] = 0.125 * (1.0 + r[0] * xi[0]) * (1.0 + r[1] * xi[1]) * (1.0 + r[2] * xi[2]);
    }
}

fn hex8_gradients(xi: [f64; 3], dn: &mut [f64]) {
    for (i, r) in hymv_mesh::element::HEX_CORNERS.iter().enumerate() {
        let f = [1.0 + r[0] * xi[0], 1.0 + r[1] * xi[1], 1.0 + r[2] * xi[2]];
        dn[3 * i] = 0.125 * r[0] * f[1] * f[2];
        dn[3 * i + 1] = 0.125 * f[0] * r[1] * f[2];
        dn[3 * i + 2] = 0.125 * f[0] * f[1] * r[2];
    }
}

// ------------------------------------------------------------------ Hex27

/// 1D quadratic Lagrange basis keyed by node position a ∈ {-1, 0, 1}.
fn lag1(a: f64, x: f64) -> f64 {
    if a < -0.5 {
        0.5 * x * (x - 1.0)
    } else if a > 0.5 {
        0.5 * x * (x + 1.0)
    } else {
        1.0 - x * x
    }
}

fn lag1_d(a: f64, x: f64) -> f64 {
    if a < -0.5 {
        x - 0.5
    } else if a > 0.5 {
        x + 0.5
    } else {
        -2.0 * x
    }
}

fn hex27_values(xi: [f64; 3], n: &mut [f64]) {
    for (i, r) in ElementType::Hex27.ref_coords().iter().enumerate() {
        n[i] = lag1(r[0], xi[0]) * lag1(r[1], xi[1]) * lag1(r[2], xi[2]);
    }
}

fn hex27_gradients(xi: [f64; 3], dn: &mut [f64]) {
    for (i, r) in ElementType::Hex27.ref_coords().iter().enumerate() {
        let l = [lag1(r[0], xi[0]), lag1(r[1], xi[1]), lag1(r[2], xi[2])];
        let d = [
            lag1_d(r[0], xi[0]),
            lag1_d(r[1], xi[1]),
            lag1_d(r[2], xi[2]),
        ];
        dn[3 * i] = d[0] * l[1] * l[2];
        dn[3 * i + 1] = l[0] * d[1] * l[2];
        dn[3 * i + 2] = l[0] * l[1] * d[2];
    }
}

// ------------------------------------------------------------------ Hex20

fn hex20_values(xi: [f64; 3], n: &mut [f64]) {
    for (i, r) in ElementType::Hex20.ref_coords().iter().enumerate() {
        if i < 8 {
            // Corner: 1/8 (1+ξᵢξ)(1+ηᵢη)(1+ζᵢζ)(ξᵢξ+ηᵢη+ζᵢζ−2)
            let s = r[0] * xi[0] + r[1] * xi[1] + r[2] * xi[2];
            n[i] = 0.125
                * (1.0 + r[0] * xi[0])
                * (1.0 + r[1] * xi[1])
                * (1.0 + r[2] * xi[2])
                * (s - 2.0);
        } else {
            // Edge midpoint: one reference coordinate is 0; for that axis the
            // factor is (1−x²), the other two are (1+aᵢx)/... with 1/4.
            let mut v = 0.25;
            for d in 0..3 {
                v *= if r[d] == 0.0 {
                    1.0 - xi[d] * xi[d]
                } else {
                    1.0 + r[d] * xi[d]
                };
            }
            n[i] = v;
        }
    }
}

fn hex20_gradients(xi: [f64; 3], dn: &mut [f64]) {
    for (i, r) in ElementType::Hex20.ref_coords().iter().enumerate() {
        if i < 8 {
            let f = [1.0 + r[0] * xi[0], 1.0 + r[1] * xi[1], 1.0 + r[2] * xi[2]];
            let s = r[0] * xi[0] + r[1] * xi[1] + r[2] * xi[2];
            // d/dξ of 1/8 f0 f1 f2 (s−2): product rule over the two ξ terms.
            dn[3 * i] = 0.125 * (r[0] * f[1] * f[2] * (s - 2.0) + f[0] * f[1] * f[2] * r[0]);
            dn[3 * i + 1] = 0.125 * (f[0] * r[1] * f[2] * (s - 2.0) + f[0] * f[1] * f[2] * r[1]);
            dn[3 * i + 2] = 0.125 * (f[0] * f[1] * r[2] * (s - 2.0) + f[0] * f[1] * f[2] * r[2]);
        } else {
            // Factorized form: v = 1/4 ∏ gd, with gd = 1−x² on the zero axis.
            let g = |d: usize| {
                if r[d] == 0.0 {
                    1.0 - xi[d] * xi[d]
                } else {
                    1.0 + r[d] * xi[d]
                }
            };
            let gd = |d: usize| if r[d] == 0.0 { -2.0 * xi[d] } else { r[d] };
            for d in 0..3 {
                let mut v = 0.25 * gd(d);
                for o in 0..3 {
                    if o != d {
                        v *= g(o);
                    }
                }
                dn[3 * i + d] = v;
            }
        }
    }
}

// ------------------------------------------------------------------- Tets

fn tet4_values(xi: [f64; 3], n: &mut [f64]) {
    n[0] = 1.0 - xi[0] - xi[1] - xi[2];
    n[1] = xi[0];
    n[2] = xi[1];
    n[3] = xi[2];
}

fn tet4_gradients(dn: &mut [f64]) {
    const G: [[f64; 3]; 4] = [
        [-1.0, -1.0, -1.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ];
    for (i, g) in G.iter().enumerate() {
        dn[3 * i..3 * i + 3].copy_from_slice(g);
    }
}

fn tet10_values(xi: [f64; 3], n: &mut [f64]) {
    let l = [1.0 - xi[0] - xi[1] - xi[2], xi[0], xi[1], xi[2]];
    for v in 0..4 {
        n[v] = l[v] * (2.0 * l[v] - 1.0);
    }
    for (e, &(a, b)) in hymv_mesh::element::TET_EDGES.iter().enumerate() {
        n[4 + e] = 4.0 * l[a] * l[b];
    }
}

fn tet10_gradients(xi: [f64; 3], dn: &mut [f64]) {
    let l = [1.0 - xi[0] - xi[1] - xi[2], xi[0], xi[1], xi[2]];
    // dl[v][d]
    const DL: [[f64; 3]; 4] = [
        [-1.0, -1.0, -1.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ];
    for v in 0..4 {
        for d in 0..3 {
            dn[3 * v + d] = (4.0 * l[v] - 1.0) * DL[v][d];
        }
    }
    for (e, &(a, b)) in hymv_mesh::element::TET_EDGES.iter().enumerate() {
        for d in 0..3 {
            dn[3 * (4 + e) + d] = 4.0 * (DL[a][d] * l[b] + l[a] * DL[b][d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ElementType; 5] = [
        ElementType::Hex8,
        ElementType::Hex20,
        ElementType::Hex27,
        ElementType::Tet4,
        ElementType::Tet10,
    ];

    fn sample_points(et: ElementType) -> Vec<[f64; 3]> {
        if et.is_hex() {
            vec![
                [0.0, 0.0, 0.0],
                [0.3, -0.7, 0.5],
                [-1.0, 1.0, -1.0],
                [0.9, 0.9, 0.9],
            ]
        } else {
            vec![
                [0.25, 0.25, 0.25],
                [0.1, 0.2, 0.3],
                [0.0, 0.0, 0.0],
                [0.6, 0.1, 0.2],
            ]
        }
    }

    #[test]
    fn partition_of_unity() {
        for et in ALL {
            let npe = et.nodes_per_elem();
            let mut n = vec![0.0; npe];
            for xi in sample_points(et) {
                shape_values(et, xi, &mut n);
                let s: f64 = n.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "{et:?} at {xi:?}: sum {s}");
            }
        }
    }

    #[test]
    fn gradients_sum_to_zero() {
        for et in ALL {
            let npe = et.nodes_per_elem();
            let mut dn = vec![0.0; 3 * npe];
            for xi in sample_points(et) {
                shape_gradients(et, xi, &mut dn);
                for d in 0..3 {
                    let s: f64 = (0..npe).map(|i| dn[3 * i + d]).sum();
                    assert!(s.abs() < 1e-12, "{et:?} dim {d} at {xi:?}: sum {s}");
                }
            }
        }
    }

    #[test]
    fn kronecker_delta_at_nodes() {
        for et in ALL {
            let npe = et.nodes_per_elem();
            let mut n = vec![0.0; npe];
            for (j, xi) in et.ref_coords().into_iter().enumerate() {
                shape_values(et, xi, &mut n);
                for i in 0..npe {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (n[i] - want).abs() < 1e-12,
                        "{et:?} N_{i} at node {j}: {}",
                        n[i]
                    );
                }
            }
        }
    }

    #[test]
    fn linear_field_reproduction() {
        // Σ N_i f(x_i) == f(ξ) for linear f, all element types.
        let f = |p: [f64; 3]| 2.0 + 3.0 * p[0] - 1.5 * p[1] + 0.5 * p[2];
        for et in ALL {
            let npe = et.nodes_per_elem();
            let nodes = et.ref_coords();
            let mut n = vec![0.0; npe];
            for xi in sample_points(et) {
                shape_values(et, xi, &mut n);
                let got: f64 = (0..npe).map(|i| n[i] * f(nodes[i])).sum();
                assert!((got - f(xi)).abs() < 1e-12, "{et:?} at {xi:?}");
            }
        }
    }

    #[test]
    fn quadratic_field_reproduction_for_quadratic_elements() {
        let f = |p: [f64; 3]| p[0] * p[0] - 2.0 * p[1] * p[2] + p[2] * p[2] + p[0];
        for et in [ElementType::Hex27, ElementType::Tet10] {
            let npe = et.nodes_per_elem();
            let nodes = et.ref_coords();
            let mut n = vec![0.0; npe];
            for xi in sample_points(et) {
                shape_values(et, xi, &mut n);
                let got: f64 = (0..npe).map(|i| n[i] * f(nodes[i])).sum();
                assert!(
                    (got - f(xi)).abs() < 1e-12,
                    "{et:?} at {xi:?}: {got} vs {}",
                    f(xi)
                );
            }
        }
        // Hex20 (serendipity) reproduces quadratics too.
        {
            let et = ElementType::Hex20;
            let nodes = et.ref_coords();
            let mut n = vec![0.0; 20];
            for xi in sample_points(et) {
                shape_values(et, xi, &mut n);
                let got: f64 = (0..20).map(|i| n[i] * f(nodes[i])).sum();
                assert!((got - f(xi)).abs() < 1e-12, "hex20 at {xi:?}");
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let eps = 1e-6;
        for et in ALL {
            let npe = et.nodes_per_elem();
            let mut dn = vec![0.0; 3 * npe];
            let mut np = vec![0.0; npe];
            let mut nm = vec![0.0; npe];
            for xi in sample_points(et) {
                // Keep FD probes inside the tet domain.
                let xi = if et.is_hex() { xi } else { [0.2, 0.25, 0.3] };
                shape_gradients(et, xi, &mut dn);
                for d in 0..3 {
                    let mut xp = xi;
                    let mut xm = xi;
                    xp[d] += eps;
                    xm[d] -= eps;
                    shape_values(et, xp, &mut np);
                    shape_values(et, xm, &mut nm);
                    for i in 0..npe {
                        let fd = (np[i] - nm[i]) / (2.0 * eps);
                        assert!(
                            (dn[3 * i + d] - fd).abs() < 1e-6,
                            "{et:?} node {i} dim {d}: {} vs {fd}",
                            dn[3 * i + d]
                        );
                    }
                }
            }
        }
    }
}

//! Isoparametric mapping: Jacobians and physical gradients.

/// Jacobian data at one quadrature point.
#[derive(Debug, Clone, Copy)]
pub struct Jacobian {
    /// The 3×3 Jacobian `J[r][c] = ∂x_r / ∂ξ_c`.
    pub j: [[f64; 3]; 3],
    /// `det J` (positive for well-oriented elements).
    pub det: f64,
    /// `J⁻¹`.
    pub inv: [[f64; 3]; 3],
}

/// Compute the Jacobian from nodal coordinates and reference gradients.
///
/// `coords` is `npe` points; `dn` is `npe × 3` node-major reference
/// gradients (as produced by [`crate::shape::shape_gradients`]).
///
/// # Panics
/// Panics if the element is degenerate or inverted (`det J ≤ 0`) — a mesh
/// bug that must not be silently integrated over.
pub fn jacobian(coords: &[[f64; 3]], dn: &[f64]) -> Jacobian {
    debug_assert_eq!(dn.len(), 3 * coords.len());
    let mut j = [[0.0f64; 3]; 3];
    for (i, x) in coords.iter().enumerate() {
        for r in 0..3 {
            for c in 0..3 {
                j[r][c] += x[r] * dn[3 * i + c];
            }
        }
    }
    let det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1])
        - j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0])
        + j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
    assert!(det > 1e-14, "degenerate or inverted element: det J = {det}");
    let inv_det = 1.0 / det;
    let inv = [
        [
            (j[1][1] * j[2][2] - j[1][2] * j[2][1]) * inv_det,
            (j[0][2] * j[2][1] - j[0][1] * j[2][2]) * inv_det,
            (j[0][1] * j[1][2] - j[0][2] * j[1][1]) * inv_det,
        ],
        [
            (j[1][2] * j[2][0] - j[1][0] * j[2][2]) * inv_det,
            (j[0][0] * j[2][2] - j[0][2] * j[2][0]) * inv_det,
            (j[0][2] * j[1][0] - j[0][0] * j[1][2]) * inv_det,
        ],
        [
            (j[1][0] * j[2][1] - j[1][1] * j[2][0]) * inv_det,
            (j[0][1] * j[2][0] - j[0][0] * j[2][1]) * inv_det,
            (j[0][0] * j[1][1] - j[0][1] * j[1][0]) * inv_det,
        ],
    ];
    Jacobian { j, det, inv }
}

/// Transform reference gradients to physical gradients:
/// `dx[i] = J⁻ᵀ dξ[i]`. Both buffers are `npe × 3` node-major; in-place
/// operation is not supported (distinct slices required).
pub fn physical_gradients(jac: &Jacobian, dn_ref: &[f64], dn_phys: &mut [f64]) {
    debug_assert_eq!(dn_ref.len(), dn_phys.len());
    let npe = dn_ref.len() / 3;
    for i in 0..npe {
        for d in 0..3 {
            // (J⁻ᵀ)[d][c] = inv[c][d]
            dn_phys[3 * i + d] = (0..3).map(|c| jac.inv[c][d] * dn_ref[3 * i + c]).sum();
        }
    }
}

/// Interpolate the physical position of a reference point.
pub fn physical_point(coords: &[[f64; 3]], n: &[f64]) -> [f64; 3] {
    debug_assert_eq!(n.len(), coords.len());
    let mut x = [0.0; 3];
    for (i, c) in coords.iter().enumerate() {
        for d in 0..3 {
            x[d] += n[i] * c[d];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{shape_gradients, shape_values};
    use hymv_mesh::ElementType;

    #[test]
    fn unit_cube_jacobian() {
        // A hex8 spanning [0,h]³ has J = (h/2) I, det = (h/2)³.
        let h = 0.25;
        let et = ElementType::Hex8;
        let coords: Vec<[f64; 3]> = et
            .ref_coords()
            .iter()
            .map(|r| {
                [
                    (r[0] + 1.0) / 2.0 * h,
                    (r[1] + 1.0) / 2.0 * h,
                    (r[2] + 1.0) / 2.0 * h,
                ]
            })
            .collect();
        let mut dn = vec![0.0; 24];
        shape_gradients(et, [0.1, -0.2, 0.4], &mut dn);
        let jac = jacobian(&coords, &dn);
        assert!((jac.det - (h / 2.0f64).powi(3)).abs() < 1e-14);
        for r in 0..3 {
            for c in 0..3 {
                let want = if r == c { h / 2.0 } else { 0.0 };
                assert!((jac.j[r][c] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        // Sheared hex: J should still satisfy J · J⁻¹ = I.
        let et = ElementType::Hex8;
        let coords: Vec<[f64; 3]> = et
            .ref_coords()
            .iter()
            .map(|r| [r[0] + 0.3 * r[1], r[1] - 0.1 * r[2], r[2] + 0.2 * r[0]])
            .collect();
        let mut dn = vec![0.0; 24];
        shape_gradients(et, [0.0, 0.0, 0.0], &mut dn);
        let jac = jacobian(&coords, &dn);
        for r in 0..3 {
            for c in 0..3 {
                let prod: f64 = (0..3).map(|k| jac.j[r][k] * jac.inv[k][c]).sum();
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((prod - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn physical_gradients_of_linear_field_are_exact() {
        // f(x) = a·x ⇒ ∇f = a, computed as Σ f(x_i) ∇N_i.
        let a = [1.5, -2.0, 0.7];
        for et in [ElementType::Hex8, ElementType::Hex27, ElementType::Tet10] {
            let npe = et.nodes_per_elem();
            // Distorted but valid element.
            let coords: Vec<[f64; 3]> = et
                .ref_coords()
                .iter()
                .map(|r| {
                    [
                        r[0] + 0.05 * r[1] * r[1],
                        r[1] - 0.04 * r[2],
                        r[2] + 0.03 * r[0],
                    ]
                })
                .collect();
            let xi = if et.is_hex() {
                [0.2, -0.3, 0.1]
            } else {
                [0.2, 0.3, 0.2]
            };
            let mut dn_ref = vec![0.0; 3 * npe];
            let mut dn_phys = vec![0.0; 3 * npe];
            shape_gradients(et, xi, &mut dn_ref);
            let jac = jacobian(&coords, &dn_ref);
            physical_gradients(&jac, &dn_ref, &mut dn_phys);
            for d in 0..3 {
                let grad: f64 = (0..npe)
                    .map(|i| {
                        let f = a[0] * coords[i][0] + a[1] * coords[i][1] + a[2] * coords[i][2];
                        f * dn_phys[3 * i + d]
                    })
                    .sum();
                assert!(
                    (grad - a[d]).abs() < 1e-10,
                    "{et:?} dim {d}: {grad} vs {}",
                    a[d]
                );
            }
        }
    }

    #[test]
    fn physical_point_interpolates() {
        let et = ElementType::Hex8;
        let coords: Vec<[f64; 3]> = et
            .ref_coords()
            .iter()
            .map(|r| [2.0 * r[0], 3.0 * r[1], r[2]])
            .collect();
        let mut n = vec![0.0; 8];
        shape_values(et, [0.5, -0.5, 0.0], &mut n);
        let x = physical_point(&coords, &n);
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] + 1.5).abs() < 1e-14);
        assert!(x[2].abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "degenerate or inverted")]
    fn inverted_element_detected() {
        let et = ElementType::Hex8;
        // Mirror the element in x → negative Jacobian.
        let coords: Vec<[f64; 3]> = et
            .ref_coords()
            .iter()
            .map(|r| [-r[0], r[1], r[2]])
            .collect();
        let mut dn = vec![0.0; 24];
        shape_gradients(et, [0.0, 0.0, 0.0], &mut dn);
        let _ = jacobian(&coords, &dn);
    }
}

//! The paper's verification problems and their closed-form solutions
//! (§V-B).

use std::f64::consts::PI;
use std::sync::Arc;

use crate::dirichlet::DirichletSpec;

/// The manufactured Poisson problem:
/// `∇²u + sin(2πx) sin(2πy) sin(2πz) = 0` on `Ω = [0,1]³`, `u = 0` on `∂Ω`,
/// with exact solution `u = sin(2πx) sin(2πy) sin(2πz) / (12π²)`.
pub struct PoissonProblem;

impl PoissonProblem {
    /// The body force `b(x)` (weak form: `∫ b φ dV` on the right-hand side).
    pub fn body() -> Arc<dyn Fn([f64; 3]) -> f64 + Send + Sync> {
        Arc::new(|x| (2.0 * PI * x[0]).sin() * (2.0 * PI * x[1]).sin() * (2.0 * PI * x[2]).sin())
    }

    /// The exact solution.
    pub fn exact(x: [f64; 3]) -> f64 {
        (2.0 * PI * x[0]).sin() * (2.0 * PI * x[1]).sin() * (2.0 * PI * x[2]).sin()
            / (12.0 * PI * PI)
    }

    /// Homogeneous Dirichlet on all six cube faces.
    pub fn dirichlet() -> DirichletSpec {
        DirichletSpec::zero(
            1,
            Arc::new(|x| x.iter().any(|&c| c < 1e-10 || c > 1.0 - 1e-10)),
        )
    }
}

/// Timoshenko & Goodier's prismatic bar stretched by its own weight
/// (paper §V-B): a bar of dimensions `{Lx, Ly, Lz}` hung from its top
/// face, with gravity `g`, Young's modulus `E`, Poisson ratio `ν`, and
/// density `ρ`. The coordinate origin is at the **bottom face center**, so
/// the bar occupies `[-Lx/2, Lx/2] × [-Ly/2, Ly/2] × [0, Lz]`.
///
/// Exact displacement:
/// `ux = -νρg/E · xz`, `uy = -νρg/E · yz`,
/// `uz = ρg/(2E) (z² − Lz²) + νρg/(2E) (x² + y²)`.
///
/// The paper loads the bar with a traction `tz = ρg Lz` on the top face;
/// we impose the (equivalent) exact displacement on the top face as a
/// Dirichlet condition — the interior boundary-value problem is identical
/// (same equilibrium equation, same traction-free sides) and the
/// discretization error is what the verification measures. This
/// substitution is recorded in DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct BarProblem {
    /// Bar dimensions.
    pub lx: f64,
    /// Bar dimensions.
    pub ly: f64,
    /// Bar dimensions.
    pub lz: f64,
    /// Young's modulus.
    pub young: f64,
    /// Poisson ratio.
    pub poisson: f64,
    /// Density.
    pub rho: f64,
    /// Gravitational acceleration (positive magnitude; gravity acts in −z).
    pub g: f64,
}

impl BarProblem {
    /// The paper-like default configuration on a unit-ish bar.
    pub fn default_unit() -> Self {
        BarProblem {
            lx: 1.0,
            ly: 1.0,
            lz: 1.0,
            young: 1000.0,
            poisson: 0.3,
            rho: 1.0,
            g: 9.81,
        }
    }

    /// Mesh bounding box `(lo, hi)` for this bar.
    pub fn bbox(&self) -> ([f64; 3], [f64; 3]) {
        (
            [-self.lx / 2.0, -self.ly / 2.0, 0.0],
            [self.lx / 2.0, self.ly / 2.0, self.lz],
        )
    }

    /// Body-force density vector (`[0, 0, -ρg]`).
    pub fn body_force(&self) -> [f64; 3] {
        [0.0, 0.0, -self.rho * self.g]
    }

    /// Exact displacement field.
    pub fn exact(&self, x: [f64; 3]) -> [f64; 3] {
        let c = self.rho * self.g / self.young;
        let nu = self.poisson;
        [
            -nu * c * x[0] * x[2],
            -nu * c * x[1] * x[2],
            c / 2.0 * (x[2] * x[2] - self.lz * self.lz)
                + nu * c / 2.0 * (x[0] * x[0] + x[1] * x[1]),
        ]
    }

    /// Dirichlet spec: the exact displacement imposed on the top face
    /// `z = Lz`.
    pub fn dirichlet(&self) -> DirichletSpec {
        let me = *self;
        DirichletSpec::new(
            3,
            Arc::new(move |x| {
                if x[2] > me.lz - 1e-10 {
                    Some(me.exact(x).to_vec())
                } else {
                    None
                }
            }),
        )
    }

    /// The paper-faithful loading: a uniform traction `t_z = ρ g L_z` on
    /// the top face (which balances the bar's weight).
    pub fn traction(&self) -> crate::traction::TractionSpec {
        let me = *self;
        crate::traction::TractionSpec::new(
            3,
            Arc::new(move |x| {
                if x[2] > me.lz - 1e-10 {
                    Some(vec![0.0, 0.0, me.rho * me.g * me.lz])
                } else {
                    None
                }
            }),
        )
    }

    /// Minimal kinematic constraints for the traction-loaded bar: three
    /// non-collinear top-face points pinned to the exact displacement
    /// (kills all six rigid modes without altering the interior BVP).
    /// The points are the top-face center and the midpoints of its +x and
    /// +y edges — grid nodes whenever the element counts are even.
    pub fn pin_points(&self) -> DirichletSpec {
        let me = *self;
        let tol = 1e-9 * (1.0 + self.lx.max(self.ly).max(self.lz));
        DirichletSpec::new(
            3,
            Arc::new(move |x| {
                if (x[2] - me.lz).abs() > tol {
                    return None;
                }
                let at = |px: f64, py: f64| (x[0] - px).abs() < tol && (x[1] - py).abs() < tol;
                if at(0.0, 0.0) || at(me.lx / 2.0, 0.0) || at(0.0, me.ly / 2.0) {
                    Some(me.exact(x).to_vec())
                } else {
                    None
                }
            }),
        )
    }
}

/// Infinity-norm error between a computed nodal field and an exact field,
/// over the caller-supplied `(coords, values)` pairs. `values` is
/// dof-interleaved with `ndof` components per node. Returns the local max;
/// reduce across ranks with `allreduce_max_f64`.
pub fn inf_error<F>(coords: &[[f64; 3]], values: &[f64], ndof: usize, exact: F) -> f64
where
    F: Fn([f64; 3]) -> Vec<f64>,
{
    assert_eq!(values.len(), coords.len() * ndof);
    let mut err = 0.0f64;
    for (i, &x) in coords.iter().enumerate() {
        let ex = exact(x);
        debug_assert_eq!(ex.len(), ndof);
        for c in 0..ndof {
            err = err.max((values[i * ndof + c] - ex[c]).abs());
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_solution_satisfies_pde() {
        // ∇²u + b = 0, checked by finite differences at interior points.
        let b = PoissonProblem::body();
        let h = 1e-4;
        for x in [[0.3, 0.4, 0.6], [0.1, 0.9, 0.5], [0.25, 0.25, 0.25]] {
            let mut lap = 0.0;
            for d in 0..3 {
                let mut xp = x;
                let mut xm = x;
                xp[d] += h;
                xm[d] -= h;
                lap += (PoissonProblem::exact(xp) - 2.0 * PoissonProblem::exact(x)
                    + PoissonProblem::exact(xm))
                    / (h * h);
            }
            assert!(
                (lap + b(x)).abs() < 1e-5,
                "residual {} at {x:?}",
                lap + b(x)
            );
        }
    }

    #[test]
    fn poisson_solution_vanishes_on_boundary() {
        for x in [
            [0.0, 0.3, 0.7],
            [1.0, 0.5, 0.5],
            [0.2, 0.0, 0.9],
            [0.4, 0.6, 1.0],
        ] {
            assert!(PoissonProblem::exact(x).abs() < 1e-12);
        }
        assert!(PoissonProblem::dirichlet().at([0.0, 0.5, 0.5]).is_some());
        assert!(PoissonProblem::dirichlet().at([0.5, 0.5, 0.5]).is_none());
    }

    #[test]
    fn bar_solution_satisfies_equilibrium() {
        // Navier's equation: (λ+μ) ∇(∇·u) + μ ∇²u + f = 0 with f = −ρg e_z.
        // For the Timoshenko field: ∇·u = ρg/E (z)(1 − 2ν)... easiest check
        // is numeric: finite-difference the Navier operator.
        let bar = BarProblem::default_unit();
        let e = bar.young;
        let nu = bar.poisson;
        let la = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
        let mu = e / (2.0 * (1.0 + nu));
        let h = 1e-4;
        let u = |x: [f64; 3]| bar.exact(x);
        for x in [[0.1, -0.2, 0.5], [0.3, 0.3, 0.8]] {
            // ∇²u (component-wise) and ∇(∇·u) by central differences.
            let mut lap = [0.0; 3];
            for d in 0..3 {
                let mut xp = x;
                let mut xm = x;
                xp[d] += h;
                xm[d] -= h;
                let (up, um, u0) = (u(xp), u(xm), u(x));
                for c in 0..3 {
                    lap[c] += (up[c] - 2.0 * u0[c] + um[c]) / (h * h);
                }
            }
            let div = |x: [f64; 3]| {
                let mut s = 0.0;
                for d in 0..3 {
                    let mut xp = x;
                    let mut xm = x;
                    xp[d] += h;
                    xm[d] -= h;
                    s += (u(xp)[d] - u(xm)[d]) / (2.0 * h);
                }
                s
            };
            let mut grad_div = [0.0; 3];
            for d in 0..3 {
                let mut xp = x;
                let mut xm = x;
                xp[d] += h;
                xm[d] -= h;
                grad_div[d] = (div(xp) - div(xm)) / (2.0 * h);
            }
            let f = bar.body_force();
            for c in 0..3 {
                let res = (la + mu) * grad_div[c] + mu * lap[c] + f[c];
                assert!(res.abs() < 1e-3, "component {c}: residual {res}");
            }
        }
    }

    #[test]
    fn bar_hang_point_fixed() {
        let bar = BarProblem::default_unit();
        let u = bar.exact([0.0, 0.0, bar.lz]);
        assert!(u.iter().all(|&c| c.abs() < 1e-12));
    }

    #[test]
    fn bar_dirichlet_only_top_face() {
        let bar = BarProblem::default_unit();
        let spec = bar.dirichlet();
        assert!(spec.at([0.2, 0.1, bar.lz]).is_some());
        assert!(spec.at([0.2, 0.1, 0.0]).is_none());
        assert!(spec.at([0.5, 0.0, 0.5]).is_none());
    }

    #[test]
    fn inf_error_computes_max() {
        let coords = vec![[0.0; 3], [1.0, 0.0, 0.0]];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let err = inf_error(&coords, &values, 2, |x| vec![x[0], x[0]]);
        // Node 0 exact (0,0) → errs 1,2; node 1 exact (1,1) → errs 2,3.
        assert_eq!(err, 3.0);
    }
}

//! The exchange-plan model checker.
//!
//! Algorithm 2's ghost exchange is a fixed, data-dependent message-passing
//! schedule: the LNSM decides which scatter messages each rank sends, the
//! GNGM decides which it waits for, and the gather runs the same edges in
//! reverse. `hymv-check` can only *sample* this schedule at runtime (one
//! interleaving per perturbation seed); this module instead builds the
//! **symbolic per-rank program** directly from the `GhostExchange` plan
//! data — no execution — and exhaustively explores the interleaving space
//! to *prove*, for the given mesh/partition:
//!
//! * **deadlock-freedom** — every interleaving reaches termination;
//! * **send/recv matching** — each channel `(src, dst, tag)` carries
//!   exactly as many sends as receives;
//! * **reserved-tag discipline** — no plan op uses a tag at or above
//!   [`hymv_comm::RESERVED_TAG_BASE`];
//! * **overlap ordering** — the dependent-element compute is program-
//!   ordered after every scatter wait, and gather sends after it;
//! * **ghost-split soundness** — independent elements (which overlap the
//!   in-flight scatter) reference no ghost DA slot, so no interleaving can
//!   make them read unarrived data.
//!
//! ## State-space search and partial-order reduction
//!
//! A state is the per-rank program counter vector plus per-channel message
//! counts (messages on one channel are control-flow indistinguishable, so
//! counts suffice). Buffered sends and compute steps are *safe actions*:
//! always enabled, invisible to other ranks' enabledness except by adding
//! messages (which can only enable, never disable), and commuting with
//! every action of every other rank. The classic ample-set argument
//! (Godefroot-style persistent sets, as used by MPI model checkers like
//! ISP) lets the search execute the lowest-ranked safe action as the
//! *only* successor of such a state; branching happens exactly when every
//! unfinished rank sits at a receive (or synchronous send). The reduction
//! preserves deadlock reachability, so "0 deadlocks in the reduced graph"
//! is a proof, not a sample. Search is breadth-first, so a reported
//! counterexample trace is minimal (fewest steps to the deadlock).
//!
//! Sends are modeled **buffered** by default, matching `hymv_comm::Comm`
//! (`isend` moves the payload into the destination mailbox immediately).
//! [`SendMode::Synchronous`] models rendezvous sends (MPI `MPI_Ssend`, or
//! eager-limit overflow) where a send blocks until its receiver reaches
//! the matching receive — the mode under which classic cyclic send/send
//! plans deadlock, used by the negative fixtures and by anyone porting the
//! exchange to an unbuffered transport.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use hymv_check::PassReport;
use hymv_core::exchange::{TAG_GATHER, TAG_SCATTER};
use hymv_core::{GhostExchange, HymvMaps};

/// One symbolic operation of a rank program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Post one message to `dst` with `tag` (non-blocking when buffered).
    Send { dst: usize, tag: u32 },
    /// Wait for one message from `src` with `tag`.
    Recv { src: usize, tag: u32 },
    /// The independent-element EMV (overlaps in-flight scatter messages;
    /// must therefore read owned data only).
    ComputeIndep,
    /// The dependent-element EMV (reads ghost data the scatter receives
    /// write; must be program-ordered after them).
    ComputeDep,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Send { dst, tag } => write!(f, "send -> rank {dst} tag {tag:#x}"),
            Op::Recv { src, tag } => write!(f, "recv <- rank {src} tag {tag:#x}"),
            Op::ComputeIndep => write!(f, "compute independent elements"),
            Op::ComputeDep => write!(f, "compute dependent elements"),
        }
    }
}

/// Send semantics the model explores under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// `hymv_comm` semantics: the payload is buffered into the receiver's
    /// mailbox at send time, so sends never block.
    Buffered,
    /// Rendezvous semantics: a send blocks until the destination rank's
    /// next operation is the matching receive; the pair then steps
    /// together. Models unbuffered transports.
    Synchronous,
}

/// The symbolic multi-rank schedule under one send semantics.
#[derive(Debug, Clone)]
pub struct System {
    /// One op sequence per rank.
    pub programs: Vec<Vec<Op>>,
    /// Send semantics to explore under.
    pub mode: SendMode,
}

/// The communication shape of one rank's [`GhostExchange`], reduced to
/// what the model checker needs: per plan entry, the peer rank and the
/// node count (one message per entry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// LNSM entries: `(neighbour rank, nodes scattered there)`.
    pub send_plan: Vec<(usize, usize)>,
    /// GNGM entries: `(owner rank, ghost nodes gathered from it)`.
    pub recv_plan: Vec<(usize, usize)>,
}

impl PlanSummary {
    /// Extract the plan shape from a built exchange (read-only; no
    /// communication happens here).
    pub fn from_exchange(ex: &GhostExchange) -> Self {
        PlanSummary {
            send_plan: ex
                .send_plan()
                .iter()
                .map(|(r, locals)| (*r, locals.len()))
                .collect(),
            recv_plan: ex
                .recv_plan()
                .iter()
                .map(|(r, range)| (*r, range.len()))
                .collect(),
        }
    }
}

impl System {
    /// Build the symbolic Algorithm-2 schedule from per-rank plan shapes,
    /// mirroring `HymvOperator::matvec` op for op: scatter sends, the
    /// independent EMV overlapping them, scatter waits, the dependent EMV,
    /// then the gather runs the transpose edges.
    pub fn algorithm2(plans: &[PlanSummary], mode: SendMode) -> System {
        let programs = plans
            .iter()
            .map(|plan| {
                let mut ops = Vec::new();
                for &(dst, _) in &plan.send_plan {
                    ops.push(Op::Send {
                        dst,
                        tag: TAG_SCATTER,
                    });
                }
                ops.push(Op::ComputeIndep);
                for &(src, _) in &plan.recv_plan {
                    ops.push(Op::Recv {
                        src,
                        tag: TAG_SCATTER,
                    });
                }
                ops.push(Op::ComputeDep);
                for &(src, _) in &plan.recv_plan {
                    ops.push(Op::Send {
                        dst: src,
                        tag: TAG_GATHER,
                    });
                }
                for &(dst, _) in &plan.send_plan {
                    ops.push(Op::Recv {
                        src: dst,
                        tag: TAG_GATHER,
                    });
                }
                ops
            })
            .collect();
        System { programs, mode }
    }
}

/// First-class outcome of the deadlock search. `Inconclusive` is a
/// distinct, machine-checkable state rather than a report line, so callers
/// (the CLI, CI) can make hitting the state cap a hard failure — a proof
/// obligation must never silently degrade into a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The reduced state space was exhausted with no deadlock: a proof
    /// for this plan and semantics.
    Proved,
    /// A deadlock exists; `counterexample` holds the minimal trace.
    Refuted,
    /// The state cap was hit before exhaustion: nothing was proved.
    Inconclusive,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proved => write!(f, "proved"),
            Verdict::Refuted => write!(f, "refuted"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Result of one model-checking run: the report plus the machine-readable
/// counterexample (when a deadlock was found) and the explored state
/// count.
#[derive(Debug)]
pub struct ModelResult {
    /// Violations in report form (the CLI prints this).
    pub report: PassReport,
    /// The minimal interleaving reaching the deadlock, as `(rank, op)`
    /// steps from the initial state; `Some(vec![])` means the initial
    /// state itself is deadlocked. `None` when no deadlock exists.
    pub counterexample: Option<Vec<(usize, Op)>>,
    /// States visited by the reduced search (diagnostics / perf bar).
    pub states_explored: usize,
    /// Deadlock-search outcome; anything but [`Verdict::Proved`] must be
    /// treated as a failure by proof-gating callers.
    pub verdict: Verdict,
}

/// Default exploration cap: the reduced graphs of real exchange plans are
/// tiny (branching only happens when every rank is blocked on a receive),
/// so hitting this means the input is far outside the intended domain —
/// the checker reports it as inconclusive rather than spinning.
pub const STATE_CAP: usize = 1_000_000;

/// Model-check one symbolic system: reserved-tag discipline, channel
/// send/recv matching, and exhaustive deadlock search with a minimal
/// counterexample trace. Uses the default [`STATE_CAP`].
pub fn check_system(sys: &System) -> ModelResult {
    check_system_with_cap(sys, STATE_CAP)
}

/// [`check_system`] with an explicit state cap. Tests use a tiny cap to
/// pin the [`Verdict::Inconclusive`] path without a million-state input.
pub fn check_system_with_cap(sys: &System, cap: usize) -> ModelResult {
    let mut report = PassReport::new("exchange-plan model check");

    // Pass A: reserved-tag discipline, straight off the op lists.
    for (rank, prog) in sys.programs.iter().enumerate() {
        for op in prog {
            let tag = match op {
                Op::Send { tag, .. } | Op::Recv { tag, .. } => *tag,
                _ => continue,
            };
            if !hymv_comm::tag_is_valid(tag) {
                report.push(format!(
                    "reserved-tag: rank {rank} plan op `{op}` uses tag {tag:#x} in the \
                     reserved range (>= {:#x})",
                    hymv_comm::RESERVED_TAG_BASE
                ));
            }
        }
    }

    // Pass B: channel matching. Sends and receives on each (src, dst, tag)
    // channel must pair off exactly — a surplus send is a message no wait
    // will ever absorb, a surplus receive is a guaranteed hang.
    let mut sends: HashMap<(usize, usize, u32), usize> = HashMap::new();
    let mut recvs: HashMap<(usize, usize, u32), usize> = HashMap::new();
    for (rank, prog) in sys.programs.iter().enumerate() {
        for op in prog {
            match *op {
                Op::Send { dst, tag } => *sends.entry((rank, dst, tag)).or_default() += 1,
                Op::Recv { src, tag } => *recvs.entry((src, rank, tag)).or_default() += 1,
                _ => {}
            }
        }
    }
    let mut channels: Vec<(usize, usize, u32)> =
        sends.keys().chain(recvs.keys()).copied().collect();
    channels.sort_unstable();
    channels.dedup();
    for ch in &channels {
        let (s, r) = (
            sends.get(ch).copied().unwrap_or(0),
            recvs.get(ch).copied().unwrap_or(0),
        );
        if s != r {
            let (src, dst, tag) = *ch;
            report.push(format!(
                "unmatched channel: rank {src} -> rank {dst} tag {tag:#x} has {s} send(s) \
                 but {r} receive(s)"
            ));
        }
    }

    // Pass C: exhaustive deadlock search over the reduced interleaving
    // graph (see module docs for the soundness argument).
    let (counterexample, states_explored, verdict) =
        search_deadlock(sys, &channels, cap, &mut report);

    ModelResult {
        report,
        counterexample,
        states_explored,
        verdict,
    }
}

/// A search state: program counters then channel counts, in the fixed
/// channel order — directly usable as a hash key.
type StateKey = Vec<u32>;

fn search_deadlock(
    sys: &System,
    channels: &[(usize, usize, u32)],
    cap: usize,
    report: &mut PassReport,
) -> (Option<Vec<(usize, Op)>>, usize, Verdict) {
    let p = sys.programs.len();
    let chan_index: HashMap<(usize, usize, u32), usize> =
        channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    let initial: StateKey = vec![0u32; p + channels.len()];
    // parent: state -> (predecessor state, step taken to get here).
    let mut parent: HashMap<StateKey, Option<(StateKey, Vec<(usize, Op)>)>> = HashMap::new();
    parent.insert(initial.clone(), None);
    let mut queue: VecDeque<StateKey> = VecDeque::from([initial]);

    while let Some(state) = queue.pop_front() {
        if parent.len() > cap {
            report.push(format!(
                "inconclusive: state space exceeded {cap} states; deadlock-freedom \
                 not established — this is a hard failure, not a degraded sample"
            ));
            return (None, parent.len(), Verdict::Inconclusive);
        }
        let succs = successors(sys, &chan_index, &state);
        if succs.is_empty() {
            if let Some(rank) = (0..p).find(|&r| (state[r] as usize) < sys.programs[r].len()) {
                // Deadlock: unfinished ranks, nothing enabled. Describe
                // every blocked rank, then render the minimal trace.
                let mut lines = vec!["deadlock:".to_string()];
                for r in rank..p {
                    let pc = state[r] as usize;
                    if pc < sys.programs[r].len() {
                        let op = sys.programs[r][pc];
                        let why = match (op, sys.mode) {
                            (Op::Send { .. }, SendMode::Synchronous) => {
                                " (synchronous send: receiver never reaches the matching recv)"
                            }
                            _ => " (no matching message can ever arrive)",
                        };
                        lines.push(format!("    rank {r} blocked at op {pc}: `{op}`{why}"));
                    }
                }
                let trace = rebuild_trace(&parent, &state);
                lines.push(format!(
                    "  minimal counterexample ({} step(s) from the initial state):",
                    trace.len()
                ));
                for (i, (r, op)) in trace.iter().enumerate() {
                    lines.push(format!("    [{i:>3}] rank {r}: {op}"));
                }
                report.push(lines.join("\n"));
                return (Some(trace), parent.len(), Verdict::Refuted);
            }
            continue; // all ranks finished: a clean terminal state
        }
        for (steps, next) in succs {
            if !parent.contains_key(&next) {
                parent.insert(next.clone(), Some((state.clone(), steps)));
                queue.push_back(next);
            }
        }
    }
    (None, parent.len(), Verdict::Proved)
}

/// Enabled successor states of `state`, with the ample-set reduction: if
/// any rank's next op is a safe action (buffered send / compute), only the
/// lowest such rank steps.
fn successors(
    sys: &System,
    chan_index: &HashMap<(usize, usize, u32), usize>,
    state: &StateKey,
) -> Vec<(Vec<(usize, Op)>, StateKey)> {
    let p = sys.programs.len();
    let current = |r: usize| -> Option<Op> {
        let pc = state[r] as usize;
        sys.programs[r].get(pc).copied()
    };

    // Ample set: a buffered send or compute step commutes with everything
    // and can never be disabled — take the first one as the sole successor.
    for r in 0..p {
        let Some(op) = current(r) else { continue };
        let safe = matches!(op, Op::ComputeIndep | Op::ComputeDep)
            || (matches!(op, Op::Send { .. }) && sys.mode == SendMode::Buffered);
        if safe {
            let mut next = state.clone();
            next[r] += 1;
            if let Op::Send { dst, tag } = op {
                next[p + chan_index[&(r, dst, tag)]] += 1;
            }
            return vec![(vec![(r, op)], next)];
        }
    }

    // No safe action anywhere: expand every enabled receive (and, under
    // synchronous mode, every enabled rendezvous pair).
    let mut out = Vec::new();
    for r in 0..p {
        let Some(op) = current(r) else { continue };
        match op {
            Op::Recv { src, tag } => {
                let Some(&ci) = chan_index.get(&(src, r, tag)) else {
                    continue; // unmatched channel: never enabled
                };
                if state[p + ci] > 0 {
                    let mut next = state.clone();
                    next[r] += 1;
                    next[p + ci] -= 1;
                    out.push((vec![(r, op)], next));
                }
            }
            // Rendezvous send: enabled iff the receiver's current op is
            // the matching receive; both ranks advance in one step.
            Op::Send { dst, tag }
                if sys.mode == SendMode::Synchronous
                    && dst < p
                    && current(dst) == Some(Op::Recv { src: r, tag }) =>
            {
                let mut next = state.clone();
                next[r] += 1;
                next[dst] += 1;
                out.push((vec![(r, op), (dst, Op::Recv { src: r, tag })], next));
            }
            _ => {}
        }
    }
    out
}

fn rebuild_trace(
    parent: &HashMap<StateKey, Option<(StateKey, Vec<(usize, Op)>)>>,
    state: &StateKey,
) -> Vec<(usize, Op)> {
    let mut trace = Vec::new();
    let mut cur = state.clone();
    while let Some(Some((prev, steps))) = parent.get(&cur) {
        for s in steps.iter().rev() {
            trace.push(*s);
        }
        cur = prev.clone();
    }
    trace.reverse();
    trace
}

/// Check the cross-rank consistency of the raw plan shapes: every LNSM
/// entry `r -> s` must have a matching GNGM entry at `s`, with identical
/// message counts and node counts per direction (the gather reuses the
/// same edges transposed, so one check covers both tags).
pub fn check_plan_consistency(plans: &[PlanSummary]) -> Vec<String> {
    let mut out = Vec::new();
    let p = plans.len();
    // (sender, receiver) -> (messages, nodes) aggregated over entries.
    let mut scat_send: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut scat_recv: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (r, plan) in plans.iter().enumerate() {
        for &(dst, nodes) in &plan.send_plan {
            if dst >= p {
                out.push(format!(
                    "rank {r}: LNSM entry names rank {dst}, but only {p} ranks exist"
                ));
                continue;
            }
            let e = scat_send.entry((r, dst)).or_default();
            e.0 += 1;
            e.1 += nodes;
        }
        for &(src, nodes) in &plan.recv_plan {
            if src >= p {
                out.push(format!(
                    "rank {r}: GNGM entry names rank {src}, but only {p} ranks exist"
                ));
                continue;
            }
            let e = scat_recv.entry((src, r)).or_default();
            e.0 += 1;
            e.1 += nodes;
        }
    }
    let mut edges: Vec<(usize, usize)> =
        scat_send.keys().chain(scat_recv.keys()).copied().collect();
    edges.sort_unstable();
    edges.dedup();
    for edge in edges {
        let s = scat_send.get(&edge).copied().unwrap_or((0, 0));
        let r = scat_recv.get(&edge).copied().unwrap_or((0, 0));
        if s != r {
            out.push(format!(
                "plan mismatch on edge rank {} -> rank {}: LNSM side has {} message(s) \
                 covering {} node(s), GNGM side expects {} message(s) covering {} node(s)",
                edge.0, edge.1, s.0, s.1, r.0, r.1
            ));
        }
    }
    out
}

/// Check the program-order overlap discipline of one rank's Algorithm-2 op
/// list: every scatter receive precedes the dependent compute, and every
/// gather send follows it. This is what makes "dependent compute is
/// ordered after the corresponding waits" a structural property rather
/// than a lucky schedule.
pub fn check_overlap_order(rank: usize, prog: &[Op]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(dep_at) = prog.iter().position(|op| *op == Op::ComputeDep) else {
        out.push(format!(
            "rank {rank}: program has no dependent-element compute op"
        ));
        return out;
    };
    for (i, op) in prog.iter().enumerate() {
        match *op {
            Op::Recv {
                tag: TAG_SCATTER, ..
            } if i > dep_at => out.push(format!(
                "rank {rank}: scatter wait `{op}` at op {i} is ordered after the dependent \
                 compute (op {dep_at}) — dependent elements would read unarrived ghosts"
            )),
            Op::Send {
                tag: TAG_GATHER, ..
            } if i < dep_at => out.push(format!(
                "rank {rank}: gather send `{op}` at op {i} is ordered before the dependent \
                 compute (op {dep_at}) — it would ship ghost contributions not yet computed"
            )),
            Op::Recv {
                tag: TAG_GATHER, ..
            } if i < dep_at => out.push(format!(
                "rank {rank}: gather wait `{op}` at op {i} is ordered before the dependent \
                 compute (op {dep_at})"
            )),
            _ => {}
        }
    }
    out
}

/// Check the independent/dependent ghost split of one rank's maps: the
/// independent EMV overlaps the in-flight scatter, so an independent
/// element referencing a ghost slot would read data no wait has ordered.
/// Dependent elements must conversely touch at least one ghost (or they
/// are needlessly serialized behind the waits — a performance bug the
/// paper's split exists to avoid).
pub fn check_ghost_split(rank: usize, maps: &HymvMaps) -> Vec<String> {
    let mut out = Vec::new();
    let owned = maps.gpre.len()..maps.gpre.len() + maps.n_owned();
    for &e in &maps.independent {
        for &l in maps.elem_local_nodes(e as usize) {
            if !owned.contains(&(l as usize)) {
                out.push(format!(
                    "rank {rank}: independent element {e} references ghost DA slot {l} \
                     (global node {}) — it would race the in-flight scatter",
                    maps.local_to_global(l as usize)
                ));
            }
        }
    }
    for &e in &maps.dependent {
        let touches_ghost = maps
            .elem_local_nodes(e as usize)
            .iter()
            .any(|&l| !owned.contains(&(l as usize)));
        if !touches_ghost {
            out.push(format!(
                "rank {rank}: dependent element {e} references no ghost slot — it should \
                 be in the independent (overlapping) set"
            ));
        }
    }
    out
}

/// Run every static exchange check for one partitioned problem: plan
/// consistency, ghost splits, per-rank overlap order, and the exhaustive
/// deadlock/matching search over the Algorithm-2 schedule.
pub fn verify_exchange(plans: &[PlanSummary], maps: &[HymvMaps]) -> ModelResult {
    let sys = System::algorithm2(plans, SendMode::Buffered);
    let mut result = check_system(&sys);
    for v in check_plan_consistency(plans) {
        result.report.push(v);
    }
    for (rank, prog) in sys.programs.iter().enumerate() {
        for v in check_overlap_order(rank, prog) {
            result.report.push(v);
        }
    }
    for (rank, m) in maps.iter().enumerate() {
        for v in check_ghost_split(rank, m) {
            result.report.push(v);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_ring(tag: u32) -> System {
        System {
            programs: vec![
                vec![Op::Send { dst: 1, tag }, Op::Recv { src: 1, tag }],
                vec![Op::Send { dst: 0, tag }, Op::Recv { src: 0, tag }],
            ],
            mode: SendMode::Buffered,
        }
    }

    #[test]
    fn buffered_ring_is_clean() {
        let r = check_system(&two_rank_ring(5));
        assert!(r.report.is_clean(), "{}", r.report);
        assert!(r.counterexample.is_none());
        assert!(r.states_explored > 0);
        assert_eq!(r.verdict, Verdict::Proved);
    }

    #[test]
    fn tiny_cap_pins_inconclusive_as_hard_outcome() {
        // A perfectly healthy plan under a 1-state cap: the search must
        // stop with Verdict::Inconclusive and a non-clean report — never
        // Proved — so CI can gate on the verdict, not on a report string.
        let r = check_system_with_cap(&two_rank_ring(5), 1);
        assert_eq!(r.verdict, Verdict::Inconclusive);
        assert!(r.counterexample.is_none());
        assert!(!r.report.is_clean());
        let text = format!("{}", r.report);
        assert!(text.contains("inconclusive"), "{text}");
        assert!(text.contains("hard failure"), "{text}");
    }

    #[test]
    fn synchronous_ring_deadlocks_with_empty_trace() {
        let mut sys = two_rank_ring(5);
        sys.mode = SendMode::Synchronous;
        let r = check_system(&sys);
        // Both ranks blocked at their first (synchronous) send: the initial
        // state is the deadlock, so the minimal counterexample is 0 steps.
        assert_eq!(r.counterexample, Some(vec![]));
        let text = format!("{}", r.report);
        assert!(text.contains("rank 0 blocked at op 0"), "{text}");
        assert!(text.contains("rank 1 blocked at op 0"), "{text}");
    }

    #[test]
    fn head_to_head_recv_deadlock_found() {
        // Recv-before-send cycle: deadlocked immediately even with
        // buffered sends.
        let sys = System {
            programs: vec![
                vec![Op::Recv { src: 1, tag: 3 }, Op::Send { dst: 1, tag: 3 }],
                vec![Op::Recv { src: 0, tag: 3 }, Op::Send { dst: 0, tag: 3 }],
            ],
            mode: SendMode::Buffered,
        };
        let r = check_system(&sys);
        assert_eq!(r.counterexample, Some(vec![]));
        assert_eq!(r.verdict, Verdict::Refuted);
    }

    #[test]
    fn unmatched_send_reported_without_deadlock() {
        // Rank 0 sends twice, rank 1 receives once: terminates, but one
        // message is never absorbed.
        let sys = System {
            programs: vec![
                vec![Op::Send { dst: 1, tag: 2 }, Op::Send { dst: 1, tag: 2 }],
                vec![Op::Recv { src: 0, tag: 2 }],
            ],
            mode: SendMode::Buffered,
        };
        let r = check_system(&sys);
        assert!(r.counterexample.is_none());
        let text = format!("{}", r.report);
        assert!(
            text.contains("rank 0 -> rank 1 tag 0x2 has 2 send(s) but 1 receive(s)"),
            "{text}"
        );
    }

    #[test]
    fn missing_sender_blocks_forever() {
        // Rank 1 waits on a message rank 0 never posts: the search walks
        // rank 0 to completion, then finds rank 1 wedged.
        let sys = System {
            programs: vec![vec![Op::ComputeIndep], vec![Op::Recv { src: 0, tag: 9 }]],
            mode: SendMode::Buffered,
        };
        let r = check_system(&sys);
        let trace = r.counterexample.expect("deadlock");
        assert_eq!(trace, vec![(0, Op::ComputeIndep)]);
        let text = format!("{}", r.report);
        assert!(text.contains("rank 1 blocked at op 0"), "{text}");
        assert!(text.contains("unmatched channel"), "{text}");
    }

    #[test]
    fn reserved_tag_in_plan_reported() {
        let sys = two_rank_ring(hymv_comm::RESERVED_TAG_BASE + 1);
        let r = check_system(&sys);
        let text = format!("{}", r.report);
        assert!(text.contains("reserved-tag"), "{text}");
    }

    #[test]
    fn overlap_order_catches_reordered_wait() {
        // A scatter recv after ComputeDep and a gather send before it.
        let prog = vec![
            Op::ComputeIndep,
            Op::Send {
                dst: 1,
                tag: TAG_GATHER,
            },
            Op::ComputeDep,
            Op::Recv {
                src: 1,
                tag: TAG_SCATTER,
            },
        ];
        let v = check_overlap_order(0, &prog);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|s| s.contains("unarrived ghosts")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("not yet computed")), "{v:?}");
    }

    #[test]
    fn algorithm2_program_shape() {
        let plans = vec![
            PlanSummary {
                send_plan: vec![(1, 4)],
                recv_plan: vec![(1, 3)],
            },
            PlanSummary {
                send_plan: vec![(0, 3)],
                recv_plan: vec![(0, 4)],
            },
        ];
        assert!(check_plan_consistency(&plans).is_empty());
        let sys = System::algorithm2(&plans, SendMode::Buffered);
        assert_eq!(
            sys.programs[0],
            vec![
                Op::Send {
                    dst: 1,
                    tag: TAG_SCATTER
                },
                Op::ComputeIndep,
                Op::Recv {
                    src: 1,
                    tag: TAG_SCATTER
                },
                Op::ComputeDep,
                Op::Send {
                    dst: 1,
                    tag: TAG_GATHER
                },
                Op::Recv {
                    src: 1,
                    tag: TAG_GATHER
                },
            ]
        );
        let r = check_system(&sys);
        assert!(r.report.is_clean(), "{}", r.report);
        for (rank, prog) in sys.programs.iter().enumerate() {
            assert!(check_overlap_order(rank, prog).is_empty());
        }
    }

    #[test]
    fn plan_mismatch_reported() {
        let plans = vec![
            PlanSummary {
                send_plan: vec![(1, 4)],
                recv_plan: vec![],
            },
            PlanSummary {
                send_plan: vec![],
                recv_plan: vec![(0, 5)],
            },
        ];
        let v = check_plan_consistency(&plans);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].contains("4 node(s)") && v[0].contains("5 node(s)"),
            "{}",
            v[0]
        );
    }
}

//! The shared Rust surface lexer every `hymv-verify` source pass builds
//! on (the sandbox has no `syn`; this is a hand-rolled scanner, not a
//! full parser — see the soundness notes in `DESIGN.md` §12).
//!
//! Two layers:
//!
//! * [`strip_comments_and_strings`] — replace comment and string/char
//!   contents with spaces, preserving byte length and newlines so offsets
//!   in the stripped text map 1:1 onto the original. This is the substrate
//!   of the line-local lint pass and of the token scan below. It is an
//!   explicit state machine over the byte classes Rust's reference lexer
//!   distinguishes: line comments, *nested* block comments, plain/byte
//!   strings with escapes, raw/raw-byte strings with `#`-counted closers
//!   (`r#"..."#`), char literals (including multibyte and escaped chars)
//!   vs lifetimes, and raw identifiers (`r#match`).
//! * [`tokens`] — a flat token stream (identifiers, integers, punctuation)
//!   over the stripped text, with byte offsets. The call-graph builder and
//!   the bounds interpreter parse from these tokens.
//!
//! Hardening notes (regression fixtures in the tests below): raw strings
//! must honor the exact hash count of their opener (`r##"a"#b"##` is one
//! string), nested block comments must track depth (`/* a /* b */ c */`
//! ends at the *second* `*/`), and multibyte char literals (`'λ'`) are
//! literals, not lifetimes — the old scan leaked their contents into the
//! "code" text.

/// Replace comments and string/char-literal contents with spaces,
/// preserving length and newlines so byte offsets still map to the
/// original line numbers.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let blank = |out: &mut Vec<u8>, s: &[u8]| {
        for &c in s {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment (`//`, `///`, `//!`): to end of line, no nesting.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(b.len(), |e| i + e);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Block comment: `/* ... */`, nesting tracked by depth. An
        // unterminated comment swallows the rest of the file (as rustc
        // would reject it, blanking it all is the conservative reading).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, &b[start..i]);
            continue;
        }
        // Raw (and raw-byte) string: `r"…"` / `r#"…"#` / `br##"…"##`. The
        // closer must repeat the opener's exact hash count; raw strings
        // have no escapes. Only when the `r`/`br` starts an identifier of
        // its own — `var"x"` is an ident then a string. `r#ident` (raw
        // identifier) has no quote after the hashes and falls through.
        let ident_before = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if !ident_before && (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r')) {
            let start = i;
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                j += 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while j < b.len() {
                    if b[j] == b'"' && b[j..].starts_with(&closer) {
                        j += closer.len();
                        break;
                    }
                    j += 1;
                }
                blank(&mut out, &b[start..j]);
                i = j;
                continue;
            }
        }
        // Plain (and byte) string, with `\`-escapes (an escaped quote does
        // not close; `\\` does not escape the following quote).
        if c == b'"' || (c == b'b' && !ident_before && i + 1 < b.len() && b[i + 1] == b'"') {
            let start = i;
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &b[start..j.min(b.len())]);
            i = j.min(b.len());
            continue;
        }
        // Char literal vs lifetime. A char literal is `'` + (escape | one
        // code point, possibly multibyte) + `'`; a lifetime has no closing
        // quote right after its single code point (`'static`, `<'a>`).
        if c == b'\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                // One UTF-8 code point, then a closing quote. Decoding the
                // char (instead of assuming it is one byte) is what keeps
                // `'λ'` a literal rather than a lifetime.
                src[i + 1..]
                    .chars()
                    .next()
                    .is_some_and(|ch| b.get(i + 1 + ch.len_utf8()) == Some(&b'\''))
            };
            if is_char {
                let start = i;
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2; // skip the escape lead (covers `'\''`, `'\\'`)
                }
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(b.len());
                blank(&mut out, &b[start..j]);
                i = j;
                continue;
            }
            // Lifetime: keep the tick, move on.
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: multibyte chars are copied verbatim")
}

/// 1-based line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text[..offset.min(text.len())]
        .bytes()
        .filter(|&c| c == b'\n')
        .count()
        + 1
}

/// One token of the stripped text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    /// Identifier or keyword (also raw identifiers, without the `r#`).
    Ident(&'a str),
    /// Integer literal text (`42`, `0x0C01`, `1_000u32`).
    Int(&'a str),
    /// A lifetime tick + name (`'a`, `'static`).
    Lifetime(&'a str),
    /// A single punctuation byte (`(`, `{`, `.`, `!`, ...).
    Punct(u8),
}

/// A token with its byte offset into the (stripped) source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub tok: Tok<'a>,
    pub at: usize,
}

impl Token<'_> {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self.tok, Tok::Ident(s) if s == name)
    }

    /// True if this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        matches!(self.tok, Tok::Punct(q) if q == p)
    }
}

/// Tokenize stripped source text (no comments or string contents — run
/// [`strip_comments_and_strings`] first). Whitespace separates tokens;
/// multibyte non-identifier characters are skipped.
pub fn tokens(stripped: &str) -> Vec<Token<'_>> {
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let is_ident_byte =
        |c: u8| c.is_ascii_alphanumeric() || c == b'_' || !c.is_ascii() /* XID chars */;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'\'' {
            // Only lifetimes survive stripping with a tick.
            let start = i;
            i += 1;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Lifetime(&stripped[start..i]),
                at: start,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (is_ident_byte(b[i]) || b[i] == b'.') {
                // `0x`, suffixes, underscores; a `..` range punct ends it.
                if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            out.push(Token {
                tok: Tok::Int(&stripped[start..i]),
                at: start,
            });
            continue;
        }
        if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(&stripped[start..i]),
                at: start,
            });
            continue;
        }
        out.push(Token {
            tok: Tok::Punct(c),
            at: i,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- regression fixtures: raw strings --------------------------------

    #[test]
    fn raw_string_closer_honors_hash_count() {
        // `r##"…"##`: the single-hash `"#` inside must NOT close it.
        let src = "let s = r##\"x\"# recv(0,1) \"##; live(0);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
        assert!(out.contains("live(0)"), "{out}");
    }

    #[test]
    fn raw_string_has_no_escapes() {
        // In a raw string `\` is a literal byte: `r"a\"` is complete.
        let src = "let s = r\"a\\\"; recv(0, 1);";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("recv(0, 1)"), "{out}");
    }

    #[test]
    fn raw_byte_string_and_multiline_raw() {
        let src = "let b = br#\"recv(0,1)\"#;\nlet s = r#\"l1 // x\nrecv(9,9)\"#;\nisend(3, 4, x);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
        assert!(out.contains("isend(3, 4, x)"), "{out}");
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let src = "let r#match = 1; recv(0, 1);";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("recv(0, 1)"), "{out}");
    }

    // ---- regression fixtures: nested block comments ----------------------

    #[test]
    fn nested_block_comment_tracks_depth() {
        let src = "/* a /* b */ still comment: recv(7,7) */ recv(0, 1);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv(7,7)"), "{out}");
        assert!(out.contains("recv(0, 1)"), "{out}");
    }

    #[test]
    fn slash_star_slash_stays_open() {
        // `/*/` opens a comment that the later `*/` closes.
        let src = "/*/ recv(0,1) */ isend(1, TAG, x);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
        assert!(out.contains("isend(1, TAG, x)"), "{out}");
    }

    #[test]
    fn unterminated_nested_comment_blanks_to_eof() {
        let src = "/* outer /* inner */ recv(0,1)";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
    }

    // ---- char literals vs lifetimes --------------------------------------

    #[test]
    fn multibyte_char_literal_is_blanked() {
        // The old one-byte lookahead classified `'λ'` as a lifetime and
        // leaked the contents into the code text.
        let src = "let c = 'λ'; let p = '('; recv(0, 1);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains('λ'), "{out}");
        assert!(!out.contains('('.to_string().as_str()) || out.contains("recv(0, 1)"));
        assert!(out.contains("recv(0, 1)"), "{out}");
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("'a"), "{out}");
        assert!(out.contains("'static"), "{out}");
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let src = "let c = '\"'; let s = \"recv(0,1)\"; isend(5, TAG, x);";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
        assert!(out.contains("isend(5, TAG, x)"), "{out}");
    }

    // ---- token stream ----------------------------------------------------

    #[test]
    fn tokens_classify_and_carry_offsets() {
        let src = "fn foo(a: u32) { bar(a, 0x0C01); }";
        let toks = tokens(src);
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("foo"));
        assert!(toks[2].is_punct(b'('));
        let lit = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::Int(s) if s == "0x0C01"))
            .expect("int literal token");
        assert_eq!(&src[lit.at..lit.at + 6], "0x0C01");
    }

    #[test]
    fn tokens_split_ranges_not_floats_at_dotdot() {
        let src = "for i in 0..n { x(i); }";
        let toks = tokens(src);
        assert!(toks
            .iter()
            .any(|t| matches!(t.tok, Tok::Int(s) if s == "0")));
        assert!(toks.iter().filter(|t| t.is_punct(b'.')).count() == 2);
    }
}

//! The interprocedural collective-order pass.
//!
//! `hymv_comm`'s collectives (barrier, the allreduce family, allgather,
//! bcast, the non-blocking `iallreduce_sum_vec` post, `exchange_sparse`)
//! are rendezvous-matched by *call order*: every rank must post the same
//! sequence of collectives, or two ranks meet inside different
//! collectives and the whole job wedges — the classic mismatched-
//! collective deadlock, and the one deadlock class the exchange-plan
//! model checker cannot see (plans carry point-to-point ops only).
//!
//! The pass proves the **rank-uniformity** of every collective sequence
//! under the SPMD replication assumption (DESIGN.md §14): all ranks run
//! the same program over bitwise-identical control inputs — certified at
//! runtime by the determinism harness — so control flow can only diverge
//! where a branch condition depends on the rank identity itself. Those
//! sites are statically recognizable: a guard whose condition mentions
//! `.rank` / `.is_root`, or a local the function visibly derived from
//! one. The rule is then:
//!
//! > no call that can reach a collective may execute inside a
//! > rank-dependent region, and no rank-dependent region may `return`
//! > early while collectives follow it.
//!
//! "Can reach" is a fixed point over the call graph's *static* edges
//! (named calls, joined over every resolution candidate). Indirect
//! `(expr)(...)` calls are excluded from this closure — collectives are
//! invoked by name on `Comm`, never through function values, and closure
//! bodies are already attributed to their defining function by the
//! parser — which keeps the ⊤ summaries of generic driver helpers (e.g.
//! `Comm::traced`) from drowning the rule in false positives. The
//! [`crate::effects::effect::COLLECTIVE`] bit carries the same seeds
//! through the *effect* lattice (where dynamic calls stay ⊤-conservative)
//! so summaries display it and `// verify: allow(collective)` can waive
//! it.
//!
//! Violations come back as [`CollectiveDiag`]s with a minimal witness
//! call chain (breadth-first, so the shortest route from the guarded call
//! to an actual collective seed). Functions carrying
//! `// verify: collective-entry` additionally get their inferred
//! collective sequence rendered (`*` marks posts inside a loop), giving
//! CI a reviewable record of each phase's collective protocol.
//!
//! Known limits, stated for auditability: rank identity flowing through
//! function *returns* or parameters not literally named `rank`, data-
//! dependent branches whose inputs differ across ranks (excluded by the
//! SPMD assumption + determinism certification), and `?`-style early
//! exits are not tracked; `match` arm guards without braces are skipped.

use std::collections::{BTreeSet, HashMap, VecDeque};

use hymv_check::PassReport;

use crate::callgraph::{CallGraph, Marker, Resolution};
use crate::lexer::{line_of, tokens, Tok, Token};

/// Call names that *are* collectives (the ordering event is the post).
/// Must stay in sync with the `COLLECTIVE` seeds in `effects.rs`.
pub const COLLECTIVE_SEEDS: &[&str] = &[
    "barrier",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allreduce_min_f64",
    "allreduce_sum_u64",
    "allreduce_max_u64",
    "allgather_u64",
    "bcast",
    "exchange_sparse",
    "iallreduce_sum_vec",
    "checkpoint_exchange",
    "lflr_recover",
];

/// One mismatched-collective finding.
#[derive(Debug, Clone)]
pub struct CollectiveDiag {
    /// Workspace-relative file of the offending call.
    pub file: String,
    /// 1-based line of the offending call.
    pub line: usize,
    /// 1-based line of the rank-dependent guard.
    pub guard_line: usize,
    /// `collective-rank-divergence` or `collective-after-rank-return`.
    pub rule: &'static str,
    /// Qualified name of the containing fn.
    pub func: String,
    /// Minimal call chain from the flagged call down to the collective
    /// seed, rendered `name (file:line)`.
    pub chain: Vec<String>,
    /// Fully rendered message (what the report prints).
    pub message: String,
}

/// One `// verify: collective-entry` fn's inferred sequence.
#[derive(Debug, Clone)]
pub struct CollectiveEntrySeq {
    pub qual: String,
    pub file: String,
    pub line: usize,
    /// e.g. `allgather_u64 · exchange_sparse` or `iallreduce_sum_vec*`
    /// (`*` = posted inside a loop).
    pub sequence: String,
}

/// Result of the collective-order pass.
#[derive(Debug)]
pub struct CollectivesReport {
    /// Violations in report form (the CLI prints this).
    pub report: PassReport,
    /// Structured findings, in (file, line) order.
    pub diags: Vec<CollectiveDiag>,
    /// Inferred sequences of every `collective-entry` fn.
    pub entries: Vec<CollectiveEntrySeq>,
    /// Fns scanned (bodies visible to the parser).
    pub fns_scanned: usize,
    /// Rank-dependent regions found (uniform code has few).
    pub rank_regions: usize,
    /// Fns that can reach a collective through static call edges.
    pub reaching_fns: usize,
}

/// A rank-dependent (or loop) region of one fn body: absolute byte span
/// in the stripped file text.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
    guard_line: usize,
    has_return: bool,
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

/// `reach[i]` ⟺ fn i contains a collective seed call or a named call that
/// resolves (under any candidate) to a reaching fn.
fn collective_reach(graph: &CallGraph, resolved: &[Vec<Resolution>]) -> Vec<bool> {
    let n = graph.fns.len();
    let mut reach = vec![false; n];
    // Reverse edges: callee -> callers.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, f) in graph.fns.iter().enumerate() {
        for (k, c) in f.calls.iter().enumerate() {
            if COLLECTIVE_SEEDS.contains(&c.name.as_str()) && !reach[i] {
                reach[i] = true;
                queue.push_back(i);
            }
            if let Resolution::Candidates(ids) = &resolved[i][k] {
                for &id in ids {
                    rev[id].push(i);
                }
            }
        }
    }
    while let Some(v) = queue.pop_front() {
        for &u in &rev[v] {
            if !reach[u] {
                reach[u] = true;
                queue.push_back(u);
            }
        }
    }
    reach
}

/// Shortest call chain from fn `start` to a collective seed call,
/// rendered `name (file:line)` per hop. `start` must reach one.
fn witness_chain(
    graph: &CallGraph,
    resolved: &[Vec<Resolution>],
    reach: &[bool],
    start: usize,
) -> Vec<String> {
    // BFS over fn ids; prev[v] = (caller u, call-site text entering v).
    let mut prev: HashMap<usize, (usize, String)> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    let mut seen: BTreeSet<usize> = BTreeSet::from([start]);
    while let Some(u) = queue.pop_front() {
        let f = &graph.fns[u];
        for (k, c) in f.calls.iter().enumerate() {
            if COLLECTIVE_SEEDS.contains(&c.name.as_str()) {
                // Found: unwind u back to start, then append the seed.
                let mut chain = Vec::new();
                let mut cur = u;
                while let Some((caller, site)) = prev.get(&cur) {
                    chain.push(site.clone());
                    cur = *caller;
                }
                chain.reverse();
                chain.push(format!("{} ({}:{})", c.name, f.file, c.line));
                return chain;
            }
            if let Resolution::Candidates(ids) = &resolved[u][k] {
                for &id in ids {
                    if reach[id] && seen.insert(id) {
                        prev.insert(
                            id,
                            (u, format!("{} ({}:{})", graph.fns[id].qual, f.file, c.line)),
                        );
                        queue.push_back(id);
                    }
                }
            }
        }
    }
    Vec::new() // unreachable when reach[start] holds
}

// ---------------------------------------------------------------------------
// Rank-dependent region detection
// ---------------------------------------------------------------------------

/// Does the token span `[lo, hi)` mention rank identity: `.rank`,
/// `.is_root`, or a tainted local?
fn span_rank_dependent(
    toks: &[Token<'_>],
    lo: usize,
    hi: usize,
    tainted: &BTreeSet<String>,
) -> bool {
    for t in lo..hi {
        match toks[t].tok {
            Tok::Punct(b'.')
                if t + 1 < hi
                    && (toks[t + 1].is_ident("rank") || toks[t + 1].is_ident("is_root")) =>
            {
                return true;
            }
            Tok::Ident(name) if tainted.contains(name) => return true,
            _ => {}
        }
    }
    false
}

/// Locals visibly bound from rank identity: `let [mut] x = ...rank()...;`
/// plus any parameter literally named `rank` / `my_rank`.
fn rank_tainted_idents(toks: &[Token<'_>], params: &[String]) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = params
        .iter()
        .filter(|p| p == &"rank" || p == &"my_rank")
        .cloned()
        .collect();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(Tok::Ident(name)) = toks.get(j).map(|t| t.tok) else {
            continue;
        };
        // Scan the initializer up to the statement's `;`.
        let mut k = j + 1;
        let mut depth = 0i32;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(b'(' | b'[' | b'{') => depth += 1,
                Tok::Punct(b')' | b']' | b'}') => depth -= 1,
                Tok::Punct(b';') if depth <= 0 => break,
                Tok::Punct(b'.')
                    if k + 1 < toks.len()
                        && (toks[k + 1].is_ident("rank") || toks[k + 1].is_ident("is_root")) =>
                {
                    tainted.insert(name.to_string());
                }
                Tok::Ident(id) if tainted.contains(id) => {
                    tainted.insert(name.to_string());
                }
                _ => {}
            }
            k += 1;
        }
    }
    tainted
}

/// Find the matching `}` for the `{` at token index `open`; returns the
/// token index just past it.
fn brace_block_end(toks: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Header scan: from the keyword at `kw`, find the body-opening `{` at
/// bracket depth 0. Bails (returns None) on `=>` or `;` — a braceless
/// match-arm guard or malformed header.
fn header_open_brace(toks: &[Token<'_>], kw: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = kw + 1;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'(' | b'[') => depth += 1,
            Tok::Punct(b')' | b']') => depth -= 1,
            Tok::Punct(b'{') if depth == 0 => return Some(i),
            Tok::Punct(b';') => return None,
            Tok::Punct(b'=') if toks.get(i + 1).is_some_and(|t| t.is_punct(b'>')) => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Rank-dependent regions of one fn body (`if`/`while`/`match` whose
/// header mentions rank identity, with `else` chains absorbed), plus loop
/// regions (`for`/`while`/`loop`) for the sequence annotation. Token
/// offsets are relative to the body slice; `base` shifts them absolute.
fn scan_regions(
    body: &str,
    base: usize,
    file_text: &str,
    params: &[String],
) -> (Vec<Region>, Vec<(usize, usize)>) {
    let toks = tokens(body);
    let tainted = rank_tainted_idents(&toks, params);
    let mut guards = Vec::new();
    let mut loops = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(kw) = t.tok else { continue };
        let is_guard_kw = matches!(kw, "if" | "while" | "match");
        let is_loop_kw = matches!(kw, "for" | "while" | "loop");
        if !is_guard_kw && !is_loop_kw {
            continue;
        }
        let Some(open) = header_open_brace(&toks, i) else {
            continue;
        };
        let mut end = brace_block_end(&toks, open);
        if is_loop_kw {
            loops.push((base + toks[open].at, base + toks[end - 1].at));
        }
        if !is_guard_kw || !span_rank_dependent(&toks, i + 1, open, &tainted) {
            continue;
        }
        // Absorb the else chain: a rank-dependent `if` makes every branch
        // rank-selected.
        while kw == "if" && toks.get(end).is_some_and(|t| t.is_ident("else")) {
            let mut j = end + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("if")) {
                match header_open_brace(&toks, j) {
                    Some(o) => j = o,
                    None => break,
                }
            }
            if !toks.get(j).is_some_and(|t| t.is_punct(b'{')) {
                break;
            }
            end = brace_block_end(&toks, j);
        }
        let start_tok = open;
        let end_tok = end.saturating_sub(1);
        let has_return = (start_tok..end).any(|k| toks[k].is_ident("return"));
        guards.push(Region {
            start: base + toks[start_tok].at,
            end: base + toks[end_tok].at,
            guard_line: line_of(file_text, base + t.at),
            has_return,
        });
    }
    (guards, loops)
}

// ---------------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------------

/// Run the collective-order pass over a parsed workspace graph.
pub fn analyze_collectives(graph: &CallGraph) -> CollectivesReport {
    let resolved: Vec<Vec<Resolution>> = graph
        .fns
        .iter()
        .map(|f| f.calls.iter().map(|c| graph.resolve(c)).collect())
        .collect();
    let reach = collective_reach(graph, &resolved);

    let mut report = PassReport::new("collective-order (mismatched-collective) pass");
    let mut diags: Vec<CollectiveDiag> = Vec::new();
    let mut entries = Vec::new();
    let mut rank_regions = 0usize;
    let mut fns_scanned = 0usize;

    for (i, f) in graph.fns.iter().enumerate() {
        let Some((b0, b1)) = f.body else { continue };
        if f.file_id == usize::MAX {
            continue;
        }
        fns_scanned += 1;
        // Collective implementations are internally rank-dependent by
        // protocol; the contract is their call *sites*, not their bodies.
        // `allow(collective)` waives reviewed helpers the same way.
        let seed_impl = COLLECTIVE_SEEDS.contains(&f.name.as_str());
        let waived = f
            .markers
            .iter()
            .any(|m| matches!(m, Marker::Allow(e) if e == "collective"));
        if seed_impl || waived {
            continue;
        }
        let text = &graph.files[f.file_id].stripped;
        let (guards, _loops) = scan_regions(&text[b0..b1], b0, text, &f.params);
        rank_regions += guards.len();
        if guards.is_empty() {
            continue;
        }

        // Collective-reaching calls of this fn, with offsets.
        let reaching: Vec<(usize, &crate::callgraph::CallSite, Option<usize>)> = f
            .calls
            .iter()
            .enumerate()
            .filter_map(|(k, c)| {
                if COLLECTIVE_SEEDS.contains(&c.name.as_str()) {
                    Some((c.offset, c, None))
                } else if let Resolution::Candidates(ids) = &resolved[i][k] {
                    ids.iter()
                        .copied()
                        .find(|&id| reach[id])
                        .map(|id| (c.offset, c, Some(id)))
                } else {
                    None
                }
            })
            .collect();

        for g in &guards {
            for &(off, c, callee) in &reaching {
                let (rule, positional) = if off > g.start && off < g.end {
                    ("collective-rank-divergence", "inside")
                } else if g.has_return && off >= g.end {
                    ("collective-after-rank-return", "after")
                } else {
                    continue;
                };
                let chain = match callee {
                    None => vec![format!("{} ({}:{})", c.name, f.file, c.line)],
                    Some(id) => {
                        let mut ch =
                            vec![format!("{} ({}:{})", graph.fns[id].qual, f.file, c.line)];
                        ch.extend(witness_chain(graph, &resolved, &reach, id));
                        ch
                    }
                };
                let what = if callee.is_none() {
                    format!("collective `{}`", c.name)
                } else {
                    format!("`{}` (reaches a collective)", c.name)
                };
                let message = match rule {
                    "collective-rank-divergence" => format!(
                        "{}:{}: collective-rank-divergence: {what} executes {positional} a \
                         rank-dependent region (guard at line {}) in `{}` — ranks taking \
                         different branches post mismatched collective sequences and \
                         deadlock\n    witness: {}",
                        f.file,
                        c.line,
                        g.guard_line,
                        f.qual,
                        chain.join(" -> ")
                    ),
                    _ => format!(
                        "{}:{}: collective-after-rank-return: rank-dependent region at line {} \
                         in `{}` can return early, but {what} follows it — returning ranks \
                         skip the collective the rest still post\n    witness: {}",
                        f.file,
                        c.line,
                        g.guard_line,
                        f.qual,
                        chain.join(" -> ")
                    ),
                };
                report.push(message.clone());
                diags.push(CollectiveDiag {
                    file: f.file.clone(),
                    line: c.line,
                    guard_line: g.guard_line,
                    rule,
                    func: f.qual.clone(),
                    chain,
                    message,
                });
            }
        }
    }

    // Entry sequences.
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.markers.contains(&Marker::CollectiveEntry) {
            continue;
        }
        let mut seq = Vec::new();
        let mut visited = BTreeSet::from([i]);
        render_sequence(graph, &resolved, &reach, i, &mut visited, 0, &mut seq);
        entries.push(CollectiveEntrySeq {
            qual: f.qual.clone(),
            file: f.file.clone(),
            line: f.line,
            sequence: if seq.is_empty() {
                "(none)".to_string()
            } else {
                seq.join(" · ")
            },
        });
    }
    entries.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    CollectivesReport {
        report,
        diags,
        entries,
        fns_scanned,
        rank_regions,
        reaching_fns: reach.iter().filter(|&&r| r).count(),
    }
}

/// Inline-expanded collective sequence of fn `i`, in source order; `*`
/// marks calls inside a loop of the fn that posts them. Recursion is
/// cycle- and depth-capped (`<qual ...>` placeholder past the cap).
fn render_sequence(
    graph: &CallGraph,
    resolved: &[Vec<Resolution>],
    reach: &[bool],
    i: usize,
    visited: &mut BTreeSet<usize>,
    depth: usize,
    out: &mut Vec<String>,
) {
    let f = &graph.fns[i];
    let loops: Vec<(usize, usize)> = match f.body {
        Some((b0, b1)) if f.file_id != usize::MAX => {
            let text = &graph.files[f.file_id].stripped;
            scan_regions(&text[b0..b1], b0, text, &f.params).1
        }
        _ => Vec::new(),
    };
    for (k, c) in f.calls.iter().enumerate() {
        let starred = loops.iter().any(|&(s, e)| c.offset > s && c.offset < e);
        let star = if starred { "*" } else { "" };
        if COLLECTIVE_SEEDS.contains(&c.name.as_str()) {
            out.push(format!("{}{star}", c.name));
            continue;
        }
        let Resolution::Candidates(ids) = &resolved[i][k] else {
            continue;
        };
        let Some(id) = ids.iter().copied().find(|&id| reach[id]) else {
            continue;
        };
        if depth >= 6 || !visited.insert(id) {
            out.push(format!("<{}…>{star}", graph.fns[id].name));
            continue;
        }
        let mut inner = Vec::new();
        render_sequence(graph, resolved, reach, id, visited, depth + 1, &mut inner);
        visited.remove(&id);
        if inner.is_empty() {
        } else if starred && inner.len() > 1 {
            out.push(format!("({})*", inner.join(" ")));
        } else {
            for item in inner {
                out.push(format!("{item}{star}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> CollectivesReport {
        let mut g = CallGraph::new();
        g.add_source("crates/x/src/lib.rs", src);
        analyze_collectives(&g)
    }

    #[test]
    fn rank_conditional_allreduce_is_flagged() {
        let r = run("fn broken(comm: &mut Comm, x: f64) -> f64 {\n\
                 let mut acc = x;\n\
                 if comm.rank() == 0 {\n\
                     acc = comm.allreduce_sum_f64(acc);\n\
                 }\n\
                 acc\n\
             }\n");
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        let d = &r.diags[0];
        assert_eq!(d.rule, "collective-rank-divergence");
        assert_eq!((d.line, d.guard_line), (4, 3));
        assert!(!r.report.is_clean());
    }

    #[test]
    fn uniform_collective_is_clean() {
        let r = run("fn fine(comm: &mut Comm, x: f64) -> f64 {\n\
                 let s = comm.allreduce_sum_f64(x);\n\
                 if s > 0.0 { s } else { comm.allreduce_max_f64(x) }\n\
             }\n\
             fn loops(comm: &mut Comm) {\n\
                 for rank in 0..comm.size() { let _ = rank; comm.barrier(); }\n\
             }\n");
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        // `for rank in ...` is a uniform loop, not rank divergence: the
        // loop variable shadows nothing rank-dependent.
        assert_eq!(r.rank_regions, 0);
    }

    #[test]
    fn let_alias_of_rank_taints_the_guard() {
        let r = run("fn aliased(comm: &mut Comm) {\n\
                 let me = comm.rank();\n\
                 if me == 0 { comm.barrier(); }\n\
             }\n");
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].guard_line, 3);
    }

    #[test]
    fn divergence_through_helper_has_witness_chain() {
        let r = run(
            "fn helper(comm: &mut Comm) -> u64 { comm.allreduce_sum_u64(1) }\n\
             fn outer(comm: &mut Comm) {\n\
                 if comm.rank() == 0 {\n\
                     helper(comm);\n\
                 }\n\
             }\n",
        );
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        let d = &r.diags[0];
        assert_eq!(d.chain.len(), 2, "{:?}", d.chain);
        assert!(d.chain[0].contains("helper"), "{:?}", d.chain);
        assert!(d.chain[1].starts_with("allreduce_sum_u64"), "{:?}", d.chain);
    }

    #[test]
    fn early_return_before_collective_is_flagged() {
        let r = run("fn bails(comm: &mut Comm) {\n\
                 if comm.rank() == 0 {\n\
                     return;\n\
                 }\n\
                 comm.barrier();\n\
             }\n");
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "collective-after-rank-return");
    }

    #[test]
    fn else_branch_is_part_of_the_divergent_region() {
        let r = run("fn branches(comm: &mut Comm) {\n\
                 if comm.rank() == 0 {\n\
                     let _ = 1;\n\
                 } else {\n\
                     comm.barrier();\n\
                 }\n\
             }\n");
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "collective-rank-divergence");
    }

    #[test]
    fn seed_impls_and_waivers_are_exempt() {
        let r = run(
            "fn bcast(comm: &mut Comm) { if comm.rank() == 0 { comm.barrier(); } }\n\
             // verify: allow(collective)\n\
             fn reviewed(comm: &mut Comm) { if comm.rank() == 0 { comm.barrier(); } }\n",
        );
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn entry_sequence_renders_with_loop_star() {
        let r = run("// verify: collective-entry\n\
             fn phase(comm: &mut Comm) {\n\
                 comm.allgather_u64(vec![]);\n\
                 loop {\n\
                     comm.iallreduce_sum_vec(vec![]);\n\
                 }\n\
             }\n");
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].sequence, "allgather_u64 · iallreduce_sum_vec*");
    }
}

//! Parameterized (p-independent) exchange-plan verification.
//!
//! The explicit-state checker in [`crate::model`] proves deadlock-freedom
//! by exhausting the reduced interleaving graph — sound, but the graph
//! grows with rank count, and past the state cap the proof obligation
//! would silently evaporate exactly where ROADMAP item 3 needs it
//! (p = 512–1024). This module proves the same property *parameterized in
//! p*, in time linear in total plan size, via three cooperating layers
//! (soundness argument: DESIGN.md §14):
//!
//! 1. **Wait-for-graph acyclicity** — the global theorem. Plan programs
//!    contain no wildcard receives, so message matching is deterministic:
//!    the k-th receive on channel `(src, dst, tag)` can only consume the
//!    k-th send on that channel. Execution is therefore confluent (any
//!    maximal execution executes the same op set), and deadlock-freedom
//!    is *equivalent* to acyclicity of the op-level wait-for graph:
//!    program-order edges within each rank, plus a match edge from every
//!    receive to the send that feeds it (under rendezvous semantics the
//!    send/recv pair is contracted into one event instead). Acyclic ⟺
//!    deadlock-free — both directions, so verdicts are bitwise equal to
//!    exhaustive explicit-state search.
//! 2. **Neighborhood decomposition** — the locality layer. Each rank's
//!    closed neighborhood (the rank plus every peer its plan names) is
//!    projected into a standalone subsystem: ops between subsystem
//!    members survive, ops to external ranks become compute placeholders.
//!    Every subsystem is model-checked exhaustively via deterministic
//!    (confluent) execution — O(neighbors) work per rank, independent of
//!    p. A subsystem deadlock is always a real global deadlock (the
//!    projection preserves every internal match edge), so this layer
//!    yields localized diagnostics; cycles threading *through* external
//!    ranks are the global WFG's job.
//! 3. **Symmetry reduction** — the scaling layer. Neighborhood subsystems
//!    are canonicalized under rank relabeling (peers renamed in first-
//!    appearance order from the center rank), partitioning the p ranks
//!    into equivalence classes; one representative subsystem per class is
//!    checked. For the regular topologies the exchange produces (slabs,
//!    RCB bricks, tori) the class count is a small constant, so the
//!    per-rank layer costs O(classes · neighborhood), not O(p).
//!
//! The explicit-state engine stays wired in as the cross-check oracle at
//! small p: the CLI compares verdicts bitwise for every plan it can
//! afford to search, and the proptest harness does the same over random
//! topologies.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

use hymv_check::PassReport;
use hymv_core::HymvMaps;

use crate::model::{
    check_ghost_split, check_overlap_order, check_plan_consistency, Op, PlanSummary, SendMode,
    System, Verdict,
};

/// One rank-symmetry equivalence class of neighborhood subsystems.
#[derive(Debug, Clone)]
pub struct NeighborhoodClass {
    /// Fingerprint of the canonical subsystem signature (display only).
    pub signature: u64,
    /// Lowest-numbered rank whose subsystem was actually checked.
    pub representative: usize,
    /// How many ranks share this class.
    pub members: usize,
    /// Ranks in the representative subsystem (center + neighbors).
    pub subsystem_ranks: usize,
    /// Ops executed by the deterministic subsystem check.
    pub subsystem_ops: usize,
}

/// Result of one parameterized verification run. There is deliberately no
/// `Inconclusive` arm in this path: the proof is linear in plan size, so
/// it either proves or refutes.
#[derive(Debug)]
pub struct ParamResult {
    /// Violations in report form (the CLI prints this).
    pub report: PassReport,
    /// `Proved` or `Refuted`; bitwise equal to the explicit-state verdict
    /// for the same system (the equivalence theorem of DESIGN.md §14).
    pub verdict: Verdict,
    /// Symmetry classes of neighborhood subsystems, one entry per class.
    pub classes: Vec<NeighborhoodClass>,
    /// Wait-for-graph size (nodes = plan ops, possibly contracted).
    pub wfg_nodes: usize,
    /// Wait-for-graph edge count.
    pub wfg_edges: usize,
    /// A wait-for cycle as `(rank, op index)` steps, when refuted via the
    /// global graph.
    pub cycle: Option<Vec<(usize, usize)>>,
}

// ---------------------------------------------------------------------------
// Static plan derivation
// ---------------------------------------------------------------------------

/// Derive every rank's [`PlanSummary`] from the maps alone — no
/// communicator, no threads. Mirrors `GhostExchange::build_inner` exactly:
/// the GNGM is the per-owner contiguous runs over the sorted pre/post
/// ghost blocks, and the LNSM is its transpose in ascending requester
/// order (the order `exchange_sparse` delivers, since each peer ghosts a
/// rank's nodes in at most one message). This is what lets the CLI verify
/// p = 1024 plans without spawning 1024 rank threads.
pub fn derive_plan_summaries(maps_all: &[HymvMaps]) -> Vec<PlanSummary> {
    let begins: Vec<u64> = maps_all.iter().map(|m| m.node_range.0).collect();
    let owner_of = |g: u64| -> usize {
        let mut r = begins.partition_point(|&b| b <= g) - 1;
        while maps_all[r].node_range.0 == maps_all[r].node_range.1 {
            r -= 1;
        }
        r
    };

    let mut plans: Vec<PlanSummary> = vec![PlanSummary::default(); maps_all.len()];
    // send_plan accumulates transposed: requester -> count, keyed per owner.
    let mut sends: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); maps_all.len()];
    for (r, maps) in maps_all.iter().enumerate() {
        let mut add_block = |ids: &[u64]| {
            let mut i = 0;
            while i < ids.len() {
                let owner = owner_of(ids[i]);
                let mut j = i + 1;
                while j < ids.len() && owner_of(ids[j]) == owner {
                    j += 1;
                }
                plans[r].recv_plan.push((owner, j - i));
                *sends[owner].entry(r).or_default() += j - i;
                i = j;
            }
        };
        add_block(&maps.gpre);
        add_block(&maps.gpost);
    }
    for (r, by_requester) in sends.into_iter().enumerate() {
        plans[r].send_plan = by_requester.into_iter().collect();
    }
    plans
}

// ---------------------------------------------------------------------------
// Wait-for graph
// ---------------------------------------------------------------------------

/// Per-op node ids plus the channel send/recv orderings the match edges
/// need. Built once, shared by the acyclicity check and its witness
/// renderer.
struct Wfg {
    /// `(rank, op index)` per node id; node ids are program order
    /// flattened rank-major.
    ops: Vec<(usize, usize)>,
    /// Adjacency: `edges[u]` holds v for every dependency u -> v
    /// ("u cannot execute until v has"); under synchronous mode ids are
    /// union-find representatives of contracted rendezvous pairs.
    edges: Vec<Vec<usize>>,
    /// Receives whose channel has no matching send left: `(rank, op)`.
    starved: Vec<(usize, usize)>,
}

fn uf_find(uf: &mut [usize], mut x: usize) -> usize {
    while uf[x] != x {
        uf[x] = uf[uf[x]];
        x = uf[x];
    }
    x
}

fn build_wfg(sys: &System) -> Wfg {
    let mut ops = Vec::new();
    let mut base = Vec::with_capacity(sys.programs.len());
    for (r, prog) in sys.programs.iter().enumerate() {
        base.push(ops.len());
        for i in 0..prog.len() {
            ops.push((r, i));
        }
    }
    let n = ops.len();
    let mut uf: Vec<usize> = (0..n).collect();

    // Channel orderings: k-th send pairs with k-th receive.
    let mut chan_sends: HashMap<(usize, usize, u32), Vec<usize>> = HashMap::new();
    let mut chan_recvs: HashMap<(usize, usize, u32), Vec<(usize, usize, usize)>> = HashMap::new();
    for (r, prog) in sys.programs.iter().enumerate() {
        for (i, op) in prog.iter().enumerate() {
            match *op {
                Op::Send { dst, tag } => chan_sends
                    .entry((r, dst, tag))
                    .or_default()
                    .push(base[r] + i),
                Op::Recv { src, tag } => {
                    chan_recvs
                        .entry((src, r, tag))
                        .or_default()
                        .push((base[r] + i, r, i))
                }
                _ => {}
            }
        }
    }

    let mut starved = Vec::new();
    let mut match_edges: Vec<(usize, usize)> = Vec::new();
    let mut sorted_chans: Vec<_> = chan_recvs.keys().copied().collect();
    sorted_chans.sort_unstable();
    for ch in sorted_chans {
        let recvs = &chan_recvs[&ch];
        let sends = chan_sends.get(&ch).map_or(&[] as &[usize], Vec::as_slice);
        for (k, &(rnode, rrank, rop)) in recvs.iter().enumerate() {
            match sends.get(k) {
                Some(&snode) => match sys.mode {
                    SendMode::Buffered => match_edges.push((rnode, snode)),
                    SendMode::Synchronous => {
                        let (a, b) = (uf_find(&mut uf, rnode), uf_find(&mut uf, snode));
                        uf[a] = b;
                    }
                },
                // No k-th send exists: this receive can never fire.
                None => starved.push((rrank, rop)),
            }
        }
    }

    // Program-order edges (over union-find representatives), plus buffered
    // match edges. A self-edge after contraction is a length-1 cycle.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, prog) in sys.programs.iter().enumerate() {
        for i in 1..prog.len() {
            let u = uf_find(&mut uf, base[r] + i);
            let v = uf_find(&mut uf, base[r] + i - 1);
            edges[u].push(v);
        }
    }
    for (rnode, snode) in match_edges {
        let u = uf_find(&mut uf, rnode);
        let v = uf_find(&mut uf, snode);
        edges[u].push(v);
    }

    Wfg {
        ops,
        edges,
        starved,
    }
}

/// Iterative three-color DFS; returns a dependency cycle as node ids when
/// one exists.
fn find_cycle(wfg: &Wfg) -> Option<Vec<usize>> {
    let n = wfg.edges.len();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (node, next-edge-index); `path` mirrors the gray chain.
        let mut stack = vec![(root, 0usize)];
        color[root] = 1;
        let mut path = vec![root];
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < wfg.edges[u].len() {
                let v = wfg.edges[u][*ei];
                *ei += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                        path.push(v);
                    }
                    1 => {
                        // Back edge: the cycle is the gray path from v to u.
                        let at = path.iter().position(|&x| x == v).unwrap();
                        return Some(path[at..].to_vec());
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Deterministic (confluent) execution
// ---------------------------------------------------------------------------

/// Run the system's unique maximal execution (unique up to op permutation
/// — DESIGN.md §14's confluence lemma for wildcard-free programs). Returns
/// the ops executed plus the blocked `(rank, pc)` set; an empty blocked
/// set on an unfinished system is impossible.
fn execute_deterministic(sys: &System) -> (usize, Vec<(usize, usize)>) {
    let p = sys.programs.len();
    let mut pc = vec![0usize; p];
    let mut chan: HashMap<(usize, usize, u32), usize> = HashMap::new();
    let mut executed = 0usize;
    loop {
        let mut progressed = false;
        for r in 0..p {
            while let Some(&op) = sys.programs[r].get(pc[r]) {
                let fire = match op {
                    Op::ComputeIndep | Op::ComputeDep => true,
                    Op::Send { dst, tag } => match sys.mode {
                        SendMode::Buffered => {
                            *chan.entry((r, dst, tag)).or_default() += 1;
                            true
                        }
                        SendMode::Synchronous => {
                            // Rendezvous: fire iff the receiver currently
                            // sits at the matching receive; both advance.
                            let ready = dst < p
                                && sys.programs[dst].get(pc[dst]).copied()
                                    == Some(Op::Recv { src: r, tag });
                            if ready {
                                pc[dst] += 1;
                                executed += 1;
                            }
                            ready
                        }
                    },
                    Op::Recv { src, tag } => {
                        if sys.mode == SendMode::Synchronous {
                            // The sender side of the rendezvous fires it.
                            false
                        } else {
                            let c = chan.entry((src, r, tag)).or_default();
                            if *c > 0 {
                                *c -= 1;
                                true
                            } else {
                                false
                            }
                        }
                    }
                };
                if !fire {
                    break;
                }
                pc[r] += 1;
                executed += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let blocked: Vec<(usize, usize)> = (0..p)
        .filter(|&r| pc[r] < sys.programs[r].len())
        .map(|r| (r, pc[r]))
        .collect();
    (executed, blocked)
}

// ---------------------------------------------------------------------------
// Neighborhood decomposition + symmetry classes
// ---------------------------------------------------------------------------

fn op_peer(op: Op) -> Option<usize> {
    match op {
        Op::Send { dst, .. } => Some(dst),
        Op::Recv { src, .. } => Some(src),
        _ => None,
    }
}

/// Canonical first-appearance ordering of the closed neighborhood of
/// `center`: center first, then peers in the order any already-ordered
/// member's program first names them. Invariant under global rank
/// relabeling as long as plan entry order corresponds (which it does for
/// the owner-sorted plans the exchange builds), so equal signatures mean
/// isomorphic subsystems; unequal signatures merely split a class — always
/// sound, at worst more representatives to check.
fn neighborhood_order(sys: &System, center: usize) -> Vec<usize> {
    let members: BTreeSet<usize> = sys.programs[center]
        .iter()
        .filter_map(|&op| op_peer(op))
        .chain(std::iter::once(center))
        .collect();
    let mut order = vec![center];
    let mut seen: BTreeSet<usize> = BTreeSet::from([center]);
    let mut i = 0;
    while i < order.len() {
        for &op in &sys.programs[order[i]] {
            if let Some(peer) = op_peer(op) {
                if members.contains(&peer) && seen.insert(peer) {
                    order.push(peer);
                }
            }
        }
        i += 1;
    }
    // Members the programs never name again cannot exist (every member is
    // a peer of the center's own program), but stay defensive:
    for &m in &members {
        if seen.insert(m) {
            order.push(m);
        }
    }
    order
}

/// Project the subsystem onto `order`'s ranks: ops between members keep
/// their (relabeled) peers, ops to external ranks become compute
/// placeholders (the locality assumption; see module docs).
fn project_subsystem(sys: &System, order: &[usize]) -> System {
    let label: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let programs = order
        .iter()
        .map(|&r| {
            sys.programs[r]
                .iter()
                .map(|&op| match op {
                    Op::Send { dst, tag } => match label.get(&dst) {
                        Some(&d) => Op::Send { dst: d, tag },
                        None => Op::ComputeIndep,
                    },
                    Op::Recv { src, tag } => match label.get(&src) {
                        Some(&s) => Op::Recv { src: s, tag },
                        None => Op::ComputeIndep,
                    },
                    other => other,
                })
                .collect()
        })
        .collect();
    System {
        programs,
        mode: sys.mode,
    }
}

fn subsystem_signature(sub: &System) -> u64 {
    let mut text = String::new();
    for prog in &sub.programs {
        for &op in prog {
            match op {
                Op::Send { dst, tag } => {
                    let _ = write!(text, "s{dst}.{tag:x}");
                }
                Op::Recv { src, tag } => {
                    let _ = write!(text, "r{src}.{tag:x}");
                }
                Op::ComputeIndep => text.push('i'),
                Op::ComputeDep => text.push('d'),
            }
            text.push(';');
        }
        text.push('|');
    }
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Parameterized deadlock proof for one symbolic system: reserved-tag and
/// channel-matching passes (as in [`crate::model::check_system`]), the
/// symmetry-classed neighborhood checks, and the global wait-for-graph
/// acyclicity theorem. Verdicts are bitwise equal to exhaustive
/// explicit-state search, at linear cost in plan size.
pub fn check_system_parameterized(sys: &System) -> ParamResult {
    let mut report = PassReport::new("parameterized exchange-plan proof");

    // Reserved-tag discipline.
    for (rank, prog) in sys.programs.iter().enumerate() {
        for op in prog {
            let tag = match op {
                Op::Send { tag, .. } | Op::Recv { tag, .. } => *tag,
                _ => continue,
            };
            if !hymv_comm::tag_is_valid(tag) {
                report.push(format!(
                    "reserved-tag: rank {rank} plan op `{op}` uses tag {tag:#x} in the \
                     reserved range (>= {:#x})",
                    hymv_comm::RESERVED_TAG_BASE
                ));
            }
        }
    }

    // Channel matching (counts only; starved receives surface op-level
    // below via the wait-for graph).
    let mut sends: HashMap<(usize, usize, u32), usize> = HashMap::new();
    let mut recvs: HashMap<(usize, usize, u32), usize> = HashMap::new();
    for (rank, prog) in sys.programs.iter().enumerate() {
        for op in prog {
            match *op {
                Op::Send { dst, tag } => *sends.entry((rank, dst, tag)).or_default() += 1,
                Op::Recv { src, tag } => *recvs.entry((src, rank, tag)).or_default() += 1,
                _ => {}
            }
        }
    }
    let mut channels: Vec<(usize, usize, u32)> =
        sends.keys().chain(recvs.keys()).copied().collect();
    channels.sort_unstable();
    channels.dedup();
    for ch in &channels {
        let (s, r) = (
            sends.get(ch).copied().unwrap_or(0),
            recvs.get(ch).copied().unwrap_or(0),
        );
        if s != r {
            let (src, dst, tag) = *ch;
            report.push(format!(
                "unmatched channel: rank {src} -> rank {dst} tag {tag:#x} has {s} send(s) \
                 but {r} receive(s)"
            ));
        }
    }

    // Neighborhood subsystems, one deterministic check per symmetry class.
    let mut classes: BTreeMap<u64, NeighborhoodClass> = BTreeMap::new();
    let mut subsystem_deadlock = false;
    for center in 0..sys.programs.len() {
        let order = neighborhood_order(sys, center);
        let sub = project_subsystem(sys, &order);
        let sig = subsystem_signature(&sub);
        if let Some(cls) = classes.get_mut(&sig) {
            cls.members += 1;
            continue;
        }
        let (steps, blocked) = execute_deterministic(&sub);
        if !blocked.is_empty() {
            subsystem_deadlock = true;
            let mut lines = vec![format!(
                "neighborhood deadlock: rank {center}'s subsystem ({} rank(s)) wedges \
                 with {} op(s) executed; blocked:",
                order.len(),
                steps
            )];
            for (lr, pc) in &blocked {
                lines.push(format!(
                    "    rank {} (subsystem rank {lr}) blocked at op {pc}: `{}`",
                    order[*lr], sub.programs[*lr][*pc]
                ));
            }
            report.push(lines.join("\n"));
        }
        classes.insert(
            sig,
            NeighborhoodClass {
                signature: sig,
                representative: center,
                members: 1,
                subsystem_ranks: order.len(),
                subsystem_ops: steps,
            },
        );
    }

    // Global wait-for graph: starved receives + acyclicity.
    let mut wfg = build_wfg(sys);
    let starved = std::mem::take(&mut wfg.starved);
    for &(rank, op) in &starved {
        report.push(format!(
            "starved receive: rank {rank} op {op} `{}` waits on a channel that never \
             carries enough messages — this rank can never terminate",
            sys.programs[rank][op]
        ));
    }
    let wfg_edges = wfg.edges.iter().map(Vec::len).sum();
    let cycle_nodes = find_cycle(&wfg);
    let cycle: Option<Vec<(usize, usize)>> = cycle_nodes.map(|nodes| {
        // Render the cycle in "u waits for v" order (edges point at
        // dependencies, so the DFS path already reads that way).
        let steps: Vec<(usize, usize)> = nodes.iter().map(|&nid| wfg.ops[nid]).collect();
        let mut lines = vec![format!(
            "wait-for cycle ({} op(s)) — deadlock for every schedule:",
            steps.len()
        )];
        for (i, &(r, o)) in steps.iter().enumerate() {
            let (nr, no) = steps[(i + 1) % steps.len()];
            lines.push(format!(
                "    rank {r} op {o} `{}` cannot run until rank {nr} op {no} `{}` has",
                sys.programs[r][o], sys.programs[nr][no]
            ));
        }
        report.push(lines.join("\n"));
        steps
    });

    let refuted = cycle.is_some() || !starved.is_empty() || subsystem_deadlock;
    ParamResult {
        report,
        verdict: if refuted {
            Verdict::Refuted
        } else {
            Verdict::Proved
        },
        classes: classes.into_values().collect(),
        wfg_nodes: wfg.ops.len(),
        wfg_edges,
        cycle,
    }
}

/// Parameterized analogue of [`crate::model::verify_exchange`]: the
/// deadlock proof plus plan consistency, per-rank overlap order, and the
/// ghost-split check — everything needed to certify a full partitioned
/// problem at rank counts the explicit search cannot touch.
pub fn verify_exchange_parameterized(plans: &[PlanSummary], maps: &[HymvMaps]) -> ParamResult {
    let sys = System::algorithm2(plans, SendMode::Buffered);
    let mut result = check_system_parameterized(&sys);
    for v in check_plan_consistency(plans) {
        result.report.push(v);
    }
    for (rank, prog) in sys.programs.iter().enumerate() {
        for v in check_overlap_order(rank, prog) {
            result.report.push(v);
        }
    }
    for (rank, m) in maps.iter().enumerate() {
        for v in check_ghost_split(rank, m) {
            result.report.push(v);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check_system;

    fn ring_plans(p: usize) -> Vec<PlanSummary> {
        (0..p)
            .map(|r| PlanSummary {
                send_plan: vec![((r + p - 1) % p, 2), ((r + 1) % p, 2)],
                recv_plan: vec![((r + p - 1) % p, 2), ((r + 1) % p, 2)],
            })
            .collect()
    }

    #[test]
    fn ring_proved_and_one_class() {
        for p in [3usize, 8, 64, 1024] {
            let sys = System::algorithm2(&ring_plans(p), SendMode::Buffered);
            let r = check_system_parameterized(&sys);
            assert_eq!(r.verdict, Verdict::Proved, "p={p}: {}", r.report);
            assert!(r.report.is_clean(), "p={p}: {}", r.report);
            // Every rank's neighborhood is isomorphic on a ring of p>=3.
            assert_eq!(r.classes.len(), 1, "p={p}: {:?}", r.classes);
            assert_eq!(r.classes[0].members, p);
        }
    }

    #[test]
    fn verdicts_match_explicit_engine_on_small_rings() {
        for p in 1..=6usize {
            let sys = System::algorithm2(&ring_plans(p.max(1)), SendMode::Buffered);
            let explicit = check_system(&sys);
            let param = check_system_parameterized(&sys);
            assert_eq!(
                explicit.counterexample.is_some(),
                param.verdict == Verdict::Refuted,
                "p={p}"
            );
        }
    }

    #[test]
    fn recv_before_send_cycle_refuted_with_witness() {
        let tag = 3;
        let sys = System {
            programs: vec![
                vec![Op::Recv { src: 1, tag }, Op::Send { dst: 1, tag }],
                vec![Op::Recv { src: 0, tag }, Op::Send { dst: 0, tag }],
            ],
            mode: SendMode::Buffered,
        };
        let r = check_system_parameterized(&sys);
        assert_eq!(r.verdict, Verdict::Refuted);
        let cycle = r.cycle.expect("cycle witness");
        assert!(cycle.len() >= 2, "{cycle:?}");
        let text = format!("{}", r.report);
        assert!(text.contains("wait-for cycle"), "{text}");
        // The explicit engine agrees.
        assert!(check_system(&sys).counterexample.is_some());
    }

    #[test]
    fn synchronous_send_cycle_refuted_via_contraction() {
        let tag = 5;
        let sys = System {
            programs: vec![
                vec![Op::Send { dst: 1, tag }, Op::Recv { src: 1, tag }],
                vec![Op::Send { dst: 0, tag }, Op::Recv { src: 0, tag }],
            ],
            mode: SendMode::Synchronous,
        };
        let r = check_system_parameterized(&sys);
        assert_eq!(r.verdict, Verdict::Refuted);
        // Buffered, the same system is fine — and the parameterized proof
        // knows it.
        let buf = System {
            mode: SendMode::Buffered,
            ..sys
        };
        assert_eq!(check_system_parameterized(&buf).verdict, Verdict::Proved);
    }

    #[test]
    fn starved_receive_refuted_without_cycle() {
        let sys = System {
            programs: vec![vec![Op::ComputeIndep], vec![Op::Recv { src: 0, tag: 9 }]],
            mode: SendMode::Buffered,
        };
        let r = check_system_parameterized(&sys);
        assert_eq!(r.verdict, Verdict::Refuted);
        assert!(r.cycle.is_none());
        let text = format!("{}", r.report);
        assert!(text.contains("starved receive"), "{text}");
    }

    #[test]
    fn surplus_send_dirty_report_but_proved() {
        // Matches the explicit engine: terminates (verdict Proved), but
        // the unmatched channel still dirties the report.
        let sys = System {
            programs: vec![
                vec![Op::Send { dst: 1, tag: 2 }, Op::Send { dst: 1, tag: 2 }],
                vec![Op::Recv { src: 0, tag: 2 }],
            ],
            mode: SendMode::Buffered,
        };
        let r = check_system_parameterized(&sys);
        assert_eq!(r.verdict, Verdict::Proved);
        assert!(!r.report.is_clean());
        assert!(check_system(&sys).counterexample.is_none());
    }

    #[test]
    fn deterministic_execution_agrees_with_bfs_on_ring() {
        let sys = System::algorithm2(&ring_plans(5), SendMode::Buffered);
        let (steps, blocked) = execute_deterministic(&sys);
        assert!(blocked.is_empty(), "{blocked:?}");
        let total: usize = sys.programs.iter().map(Vec::len).sum();
        assert_eq!(steps, total);
    }

    #[test]
    fn derived_plans_have_transpose_symmetry() {
        use hymv_mesh::partition::{partition_mesh, PartitionMethod};
        use hymv_mesh::{ElementType, StructuredHexMesh};
        let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
        for p in [4usize, 9, 16] {
            let pm = partition_mesh(&mesh, p, PartitionMethod::Rcb);
            let maps: Vec<HymvMaps> = pm.parts.iter().map(HymvMaps::build).collect();
            let plans = derive_plan_summaries(&maps);
            assert!(check_plan_consistency(&plans).is_empty(), "p={p}");
            let r = verify_exchange_parameterized(&plans, &maps);
            assert_eq!(r.verdict, Verdict::Proved, "p={p}: {}", r.report);
            assert!(r.report.is_clean(), "p={p}: {}", r.report);
        }
    }
}

//! Workspace call-graph construction for the interprocedural effect
//! analysis (`hymv-verify effects`).
//!
//! Built on the shared [`crate::lexer`]: each source file is stripped of
//! comments/strings, tokenized, and walked by a brace-tracking item
//! parser that records every `fn` item (with its `impl` context, parameter
//! names, and body span) and every call site inside a body (bare calls,
//! `.method(...)` calls, `Path::assoc(...)` calls, `mac!(...)` macros, and
//! `(expr)(...)` indirect calls). `// verify: ...` marker comments in the
//! *original* text are parsed and attached to the next `fn` item.
//!
//! This is resolution **by name**, not by type: a call resolves to every
//! workspace function sharing its (qualified) name, and the effect solver
//! joins over all candidates. That over-approximates reachable effects
//! (sound for the phase rules, which reject on reachability) except where
//! calls leave the parsed world — free functions of external crates are
//! unknown (assumed pure unless in the intrinsic seed table) and indirect
//! calls are ⊤. DESIGN.md §12 states the caveats precisely.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::lexer::{line_of, strip_comments_and_strings, tokens, Tok, Token};

/// A `// verify: ...` marker directive attached to a function. Markers are
/// the anchors the inference cannot derive itself: trusted purity
/// assertions, effect declarations for behavior hidden behind data flow
/// (e.g. a `dependent: bool` argument selecting ghost reads), waivers, and
/// analysis entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// `pure` — force this fn's effect summary to ∅ (a trusted anchor;
    /// the fn is opaque to the analysis from here down).
    Pure,
    /// `kernel-entry` — numerical kernel entry point: the kernel purity
    /// rules (no ledger access, no wall clock/ambient RNG) apply to
    /// everything reachable from here.
    KernelEntry,
    /// `prove-bounds` — the bounds interpreter must certify this fn.
    ProveBounds,
    /// `collective-entry` — a phase entry point whose inferred collective
    /// sequence the collective-order pass reports (and whose reachable
    /// code the rank-divergence rule certifies).
    CollectiveEntry,
    /// `effect(name)` — add the named effect to this fn's direct effects
    /// (names as in [`crate::effects::effect::parse`], e.g. `ghost-read`).
    Effect(String),
    /// `allow(name)` — waive the named effect from this fn's *summary*
    /// (it still propagates to the waiving fn itself, not to callers).
    Allow(String),
}

impl Marker {
    /// Parse one comma-separated `// verify:` directive list.
    fn parse_list(body: &str) -> Vec<Marker> {
        let mut out = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let m = if part == "pure" {
                Marker::Pure
            } else if part == "kernel-entry" {
                Marker::KernelEntry
            } else if part == "prove-bounds" {
                Marker::ProveBounds
            } else if part == "collective-entry" {
                Marker::CollectiveEntry
            } else if let Some(inner) = part
                .strip_prefix("effect(")
                .and_then(|r| r.strip_suffix(')'))
            {
                Marker::Effect(inner.trim().to_string())
            } else if let Some(inner) = part
                .strip_prefix("allow(")
                .and_then(|r| r.strip_suffix(')'))
            {
                Marker::Allow(inner.trim().to_string())
            } else {
                continue; // unknown directives are reported by the caller
            };
            out.push(m);
        }
        out
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: last path segment; macro names keep their `!`.
    pub name: String,
    /// Qualifier, if syntactically visible: `Vec::new` → `Some("Vec")`,
    /// `comm.recv(..)` → `Some("comm")` (the receiver *expression* head —
    /// a value, not a type; resolution treats it as a weak hint only).
    pub hint: Option<String>,
    /// `.name(...)` method-call syntax.
    pub method: bool,
    /// `(expr)(...)` / `arr[i](...)` — an indirect call through a function
    /// value. Resolves to ⊤ (any effect).
    pub dynamic: bool,
    /// Byte offset of the name in the stripped text.
    pub offset: usize,
    /// 1-based source line.
    pub line: usize,
    /// Trimmed argument texts (receiver excluded for method calls).
    pub args: Vec<String>,
}

/// One `fn` item of the parsed workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Bare name.
    pub name: String,
    /// Qualified name: `Type::name` for fns inside `impl` blocks,
    /// `file_stem::name` for free fns.
    pub qual: String,
    /// Workspace-relative file label.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names in order, `self` excluded (so argument index `i`
    /// of a method call lines up with parameter index `i`).
    pub params: Vec<String>,
    /// Attached `// verify:` markers.
    pub markers: Vec<Marker>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Byte span of the body in the file's stripped text (after `{`, up to
    /// the matching `}`), if the item has a body. Index into
    /// [`CallGraph::files`] via `file_id`.
    pub body: Option<(usize, usize)>,
    /// Which [`CallGraph::files`] entry this fn was parsed from
    /// (`usize::MAX` for synthetic test nodes).
    pub file_id: usize,
}

/// One parsed source file (kept so downstream passes — the bounds
/// interpreter — can re-slice fn bodies).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative label.
    pub label: String,
    /// Comment/string-stripped text (same length as the original).
    pub stripped: String,
}

/// How a call site resolves against the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Indirect call: any effect is possible.
    Dynamic,
    /// Candidate fn ids sharing the (qualified) name; the solver joins
    /// over all of them.
    Candidates(Vec<usize>),
    /// No workspace fn of this name (an external or std call). Assumed
    /// effect-free unless the intrinsic seed table says otherwise.
    Unknown,
}

/// A parse-level problem worth surfacing (unknown marker directive,
/// orphaned marker with no following `fn`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNote {
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnNode>,
    pub notes: Vec<ParseNote>,
    by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
}

/// Max lines a `// verify:` marker may precede its `fn` by (attributes and
/// the signature may sit between).
const MARKER_RADIUS: usize = 8;

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "unsafe", "else", "let",
    "fn", "impl", "pub", "where", "break", "continue", "use", "mod", "struct", "enum", "trait",
    "type", "const", "static", "ref", "mut", "dyn", "Self", "crate", "super", "await", "async",
    "box", "yield",
];

impl CallGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse one source file into the graph. `label` is the
    /// workspace-relative path used in diagnostics; the module component
    /// of free-fn qualified names is its file stem.
    pub fn add_source(&mut self, label: &str, text: &str) {
        let stripped = strip_comments_and_strings(text);
        // Test modules are file-final in this workspace and legitimately
        // use literal tags, RNGs, and blocking receives: truncate, same as
        // the lint pass.
        let code_end = stripped.find("#[cfg(test)]").unwrap_or(stripped.len());
        let file_id = self.files.len();
        let module = Path::new(label)
            .file_stem()
            .map_or_else(|| label.to_string(), |s| s.to_string_lossy().into_owned());

        let toks = tokens(&stripped[..code_end]);
        let first_fn = self.fns.len();
        self.parse_items(&toks, &stripped, label, file_id, &module);
        self.attach_markers(label, text, first_fn);
        self.files.push(SourceFile {
            label: label.to_string(),
            stripped,
        });
        for idx in first_fn..self.fns.len() {
            self.index_fn(idx);
        }
    }

    /// Load the analyzed crates of the workspace at `root`: every runtime
    /// crate, including the `serve`/`check`/`mesh`/`prof`/`bench` layers
    /// the PR-6 analysis stopped short of (only the analyzer itself stays
    /// out of its own scope).
    pub fn load_workspace(root: &Path) -> Result<Self, String> {
        if !root.join("Cargo.toml").is_file() {
            return Err(format!(
                "{} is not a workspace root (no Cargo.toml)",
                root.display()
            ));
        }
        let mut graph = CallGraph::new();
        for krate in [
            "comm", "core", "la", "gpu", "fem", "trace", "serve", "check", "mesh", "prof", "bench",
        ] {
            let src = root.join("crates").join(krate).join("src");
            let mut files = Vec::new();
            walk_rs(&src, &mut files);
            for path in files {
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let label = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                graph.add_source(&label, &text);
            }
        }
        Ok(graph)
    }

    /// Add a bodiless synthetic fn for solver tests. `qual` is
    /// `Type::name` or a bare name.
    pub fn add_synthetic_fn(&mut self, qual: &str) -> usize {
        let name = qual.rsplit("::").next().unwrap_or(qual).to_string();
        let idx = self.fns.len();
        self.fns.push(FnNode {
            name,
            qual: qual.to_string(),
            file: "<synthetic>".to_string(),
            line: idx + 1,
            params: Vec::new(),
            markers: Vec::new(),
            is_unsafe: false,
            calls: Vec::new(),
            body: None,
            file_id: usize::MAX,
        });
        self.index_fn(idx);
        idx
    }

    /// Add a synthetic `caller → callee_name(args...)` edge (solver tests).
    pub fn add_synthetic_call(&mut self, caller: usize, callee: &str, args: &[&str]) {
        let line = self.fns[caller].line;
        self.fns[caller].calls.push(CallSite {
            name: callee.to_string(),
            hint: None,
            method: false,
            dynamic: false,
            offset: 0,
            line,
            args: args.iter().map(ToString::to_string).collect(),
        });
    }

    /// Add a synthetic indirect call (resolves to ⊤).
    pub fn add_dynamic_call(&mut self, caller: usize) {
        let line = self.fns[caller].line;
        self.fns[caller].calls.push(CallSite {
            name: "<indirect>".to_string(),
            hint: None,
            method: false,
            dynamic: true,
            offset: 0,
            line,
            args: Vec::new(),
        });
    }

    /// Attach a marker to a fn after the fact (synthetic tests).
    pub fn mark(&mut self, idx: usize, marker: Marker) {
        self.fns[idx].markers.push(marker);
    }

    /// Resolve a call site to candidate workspace fns.
    pub fn resolve(&self, call: &CallSite) -> Resolution {
        if call.dynamic {
            return Resolution::Dynamic;
        }
        // A `Type::name` path hint resolves narrowly when the qualified
        // name is known (a value-receiver hint like `comm` never is —
        // lowercase heads fall through to the bare-name multimap).
        if let Some(h) = &call.hint {
            if !call.method {
                if let Some(ids) = self.by_qual.get(&format!("{h}::{}", call.name)) {
                    return Resolution::Candidates(ids.clone());
                }
                if h.chars().next().is_some_and(char::is_uppercase) {
                    // A typed path (`Foo::bar`) that names no workspace
                    // item is external: don't fall back to the bare-name
                    // multimap, which would conflate `Vec::new` with every
                    // workspace `new`.
                    return Resolution::Unknown;
                }
            }
        }
        match self.by_name.get(&call.name) {
            Some(ids) => Resolution::Candidates(ids.clone()),
            None => Resolution::Unknown,
        }
    }

    fn index_fn(&mut self, idx: usize) {
        let f = &self.fns[idx];
        self.by_name.entry(f.name.clone()).or_default().push(idx);
        self.by_qual.entry(f.qual.clone()).or_default().push(idx);
    }

    /// The brace-tracking item walk: track `impl` contexts, open `fn`
    /// items on their body `{`, record call sites while inside a body.
    fn parse_items(
        &mut self,
        toks: &[Token<'_>],
        stripped: &str,
        label: &str,
        file_id: usize,
        module: &str,
    ) {
        #[derive(Debug)]
        enum Ctx {
            Impl(String),
            Fn(usize),
            Brace,
        }
        let mut stack: Vec<Ctx> = Vec::new();
        // Set when an `impl`/`fn` header was parsed and its `{` is pending.
        let mut pending: Option<Ctx> = None;
        let mut i = 0usize;
        while i < toks.len() {
            match toks[i].tok {
                Tok::Ident("impl") => {
                    if let Some((ty, brace_at)) = parse_impl_header(toks, i) {
                        pending = Some(Ctx::Impl(ty));
                        i = brace_at;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                Tok::Ident("fn") => {
                    if let Some(h) = parse_fn_header(toks, i) {
                        let impl_ty = stack.iter().rev().find_map(|c| match c {
                            Ctx::Impl(t) => Some(t.clone()),
                            _ => None,
                        });
                        let qual = match &impl_ty {
                            Some(t) => format!("{t}::{}", h.name),
                            None => format!("{module}::{}", h.name),
                        };
                        let is_unsafe = i >= 1 && toks[i - 1].is_ident("unsafe")
                            || i >= 2 && toks[i - 2].is_ident("unsafe");
                        let idx = self.fns.len();
                        self.fns.push(FnNode {
                            name: h.name,
                            qual,
                            file: label.to_string(),
                            line: line_of(stripped, toks[i].at),
                            params: h.params,
                            markers: Vec::new(),
                            is_unsafe,
                            calls: Vec::new(),
                            body: None,
                            file_id,
                        });
                        if let Some(end) = h.body_open {
                            pending = Some(Ctx::Fn(idx));
                            i = end;
                        } else {
                            i = h.resume; // trait declaration: no body
                        }
                    } else {
                        i += 1;
                    }
                    continue;
                }
                Tok::Punct(b'{') => {
                    stack.push(pending.take().unwrap_or(Ctx::Brace));
                    if let Some(Ctx::Fn(idx)) = stack.last() {
                        // Only the *outermost* body span is recorded (a
                        // nested fn keeps its own).
                        if self.fns[*idx].body.is_none() {
                            self.fns[*idx].body = Some((toks[i].at + 1, stripped.len()));
                        }
                    }
                    i += 1;
                    continue;
                }
                Tok::Punct(b'}') => {
                    if let Some(Ctx::Fn(idx)) = stack.last() {
                        let idx = *idx;
                        if let Some((start, _)) = self.fns[idx].body {
                            self.fns[idx].body = Some((start, toks[i].at));
                        }
                    }
                    stack.pop();
                    i += 1;
                    continue;
                }
                Tok::Ident(name) => {
                    // A call site requires an enclosing fn body.
                    let owner = stack.iter().rev().find_map(|c| match c {
                        Ctx::Fn(idx) => Some(*idx),
                        _ => None,
                    });
                    if let Some(owner) = owner {
                        if let Some((mut site, resume)) = parse_call(toks, i, stripped, name) {
                            // `Self::helper(...)` would otherwise resolve
                            // against the unknown qual `Self::helper` and
                            // be dropped as external; substitute the
                            // enclosing impl type so the edge is real.
                            if site.hint.as_deref() == Some("Self") {
                                if let Some(ty) = stack.iter().rev().find_map(|c| match c {
                                    Ctx::Impl(t) => Some(t.clone()),
                                    _ => None,
                                }) {
                                    site.hint = Some(ty);
                                }
                            }
                            self.fns[owner].calls.push(site);
                            i = resume;
                            continue;
                        }
                    }
                    i += 1;
                }
                Tok::Punct(b')' | b']') => {
                    // `(expr)(...)` / `arr[i](...)`: an indirect call.
                    let owner = stack.iter().rev().find_map(|c| match c {
                        Ctx::Fn(idx) => Some(*idx),
                        _ => None,
                    });
                    if let (Some(owner), Some(next)) = (owner, toks.get(i + 1)) {
                        // `.method()` chains and ordinary grouping also put
                        // `)` before `(` only via an interposed token, so a
                        // directly following `(` is a call of the value.
                        if next.is_punct(b'(') {
                            let at = toks[i].at;
                            self.fns[owner].calls.push(CallSite {
                                name: "<indirect>".to_string(),
                                hint: None,
                                method: false,
                                dynamic: true,
                                offset: at,
                                line: line_of(stripped, at),
                                args: Vec::new(),
                            });
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Scan the original text for `// verify:` markers and attach each to
    /// the next parsed `fn` within [`MARKER_RADIUS`] lines.
    fn attach_markers(&mut self, label: &str, text: &str, first_fn: usize) {
        for (lineno0, line) in text.lines().enumerate() {
            let Some(at) = line.find("// verify:") else {
                continue;
            };
            let lineno = lineno0 + 1;
            let body = &line[at + "// verify:".len()..];
            let markers = Marker::parse_list(body);
            if markers.is_empty() {
                self.notes.push(ParseNote {
                    file: label.to_string(),
                    line: lineno,
                    message: format!("unrecognized `// verify:` directive `{}`", body.trim()),
                });
                continue;
            }
            let target = self.fns[first_fn..]
                .iter()
                .position(|f| f.line >= lineno && f.line - lineno <= MARKER_RADIUS)
                .map(|p| p + first_fn);
            match target {
                Some(idx) => self.fns[idx].markers.extend(markers),
                None => self.notes.push(ParseNote {
                    file: label.to_string(),
                    line: lineno,
                    message: format!(
                        "orphaned `// verify:` marker (no `fn` within {MARKER_RADIUS} lines)"
                    ),
                }),
            }
        }
    }
}

struct FnHeader {
    name: String,
    params: Vec<String>,
    /// Token index of the body `{`, if the item has one.
    body_open: Option<usize>,
    /// Token index to resume from when there is no body.
    resume: usize,
}

/// Parse `fn name <generics?> ( params ) -> ret where ... {` starting at
/// the `fn` token. Returns `None` if the shape is unrecognizable.
fn parse_fn_header(toks: &[Token<'_>], fn_at: usize) -> Option<FnHeader> {
    let name = match toks.get(fn_at + 1)?.tok {
        Tok::Ident(n) => n.to_string(),
        _ => return None,
    };
    let mut i = fn_at + 2;
    // Skip generics (the `>` of a `-> R` arrow inside a bound like
    // `F: FnOnce() -> R` is not a closer).
    if toks.get(i)?.is_punct(b'<') {
        let mut depth = 0isize;
        while i < toks.len() {
            if toks[i].is_punct(b'<') {
                depth += 1;
            } else if toks[i].is_punct(b'>') && !(i >= 1 && toks[i - 1].is_punct(b'-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !toks.get(i)?.is_punct(b'(') {
        return None;
    }
    // Parameter names: at paren depth 1, an ident directly followed by `:`
    // is a parameter pattern head (`mut x: T` included via the ident test;
    // `self` needs no `:`). Nested parens (tuple patterns, fn-ptr types)
    // are skipped wholesale.
    let mut params = Vec::new();
    let mut depth = 0isize;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'(') => depth += 1,
            Tok::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            Tok::Ident(id)
                if depth == 1
                    && id != "self"
                    && id != "mut"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                    && !toks.get(i + 2).is_some_and(|t| t.is_punct(b':')) =>
            {
                params.push(id.to_string());
                // Skip the type up to the next depth-1 comma so type
                // tokens (e.g. `dyn Fn(usize)`) can't add parameters.
                let mut d = depth;
                while i < toks.len() {
                    match toks[i].tok {
                        Tok::Punct(b'(' | b'[') => d += 1,
                        Tok::Punct(b')' | b']') => {
                            if d == 1 {
                                break;
                            }
                            d -= 1;
                        }
                        Tok::Punct(b',') if d == 1 => break,
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    // Find the body `{` or the declaration-terminating `;`. Angle brackets
    // of return types (`-> Vec<f64>`) contain no braces; `where` clauses
    // likewise.
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(b'{') {
            return Some(FnHeader {
                name,
                params,
                body_open: Some(j),
                resume: j,
            });
        }
        if toks[j].is_punct(b';') {
            return Some(FnHeader {
                name,
                params,
                body_open: None,
                resume: j + 1,
            });
        }
        j += 1;
    }
    None
}

/// Parse an `impl` header starting at the `impl` token: returns the
/// implemented-on type name (after `for` if present, else the first type)
/// and the token index of the opening `{`.
fn parse_impl_header(toks: &[Token<'_>], impl_at: usize) -> Option<(String, usize)> {
    let mut i = impl_at + 1;
    // Skip generics (same arrow caveat as in `parse_fn_header`).
    if toks.get(i)?.is_punct(b'<') {
        let mut depth = 0isize;
        while i < toks.len() {
            if toks[i].is_punct(b'<') {
                depth += 1;
            } else if toks[i].is_punct(b'>') && !(i >= 1 && toks[i - 1].is_punct(b'-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut first_ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() && !toks[i].is_punct(b'{') {
        match toks[i].tok {
            Tok::Ident("for") => saw_for = true,
            Tok::Ident("where") => break,
            Tok::Ident(id) if id != "dyn" && id != "mut" => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(id.to_string());
                    }
                } else if first_ty.is_none() {
                    first_ty = Some(id.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    while i < toks.len() && !toks[i].is_punct(b'{') {
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    after_for.or(first_ty).map(|ty| (ty, i))
}

/// Try to parse a call site at token `i` (an ident). Returns the site and
/// the token index to resume from (just past the name — the argument list
/// is walked again by the main loop so nested calls are still seen).
fn parse_call(
    toks: &[Token<'_>],
    i: usize,
    stripped: &str,
    name: &str,
) -> Option<(CallSite, usize)> {
    if NON_CALL_KEYWORDS.contains(&name) {
        return None;
    }
    let next = toks.get(i + 1)?;
    // Macro call: `name!(...)` / `name![...]`.
    let (is_macro, open_tok) = if next.is_punct(b'!') {
        match toks.get(i + 2) {
            Some(t) if t.is_punct(b'(') || t.is_punct(b'[') => (true, i + 2),
            _ => return None,
        }
    } else if next.is_punct(b'(') {
        (false, i + 1)
    } else if next.is_punct(b':')
        && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct(b'<'))
    {
        // Turbofish: `name::<T>(...)`. Skip to the matching `>` (arrow
        // guard as in the generics skip) and require the call paren.
        let mut depth = 0isize;
        let mut j = i + 3;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct(b'<') {
                depth += 1;
            } else if toks[j].is_punct(b'>') && !toks[j - 1].is_punct(b'-') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct(b'(')) {
            open = Some(j);
        }
        (false, open?)
    } else {
        return None;
    };
    // A path segment *before* the name: `A::name(` → hint A. Exclude
    // `name` itself being an intermediate segment (`a::name::b`): the
    // token after the paren-check already guaranteed `(`.
    let (method, hint) = if !is_macro && i >= 1 && toks[i - 1].is_punct(b'.') {
        let hint = match toks.get(i.wrapping_sub(2)) {
            Some(Token {
                tok: Tok::Ident(h), ..
            }) => Some((*h).to_string()),
            _ => None,
        };
        (true, hint)
    } else if !is_macro && i >= 2 && toks[i - 1].is_punct(b':') && toks[i - 2].is_punct(b':') {
        let hint = match toks.get(i.wrapping_sub(3)) {
            Some(Token {
                tok: Tok::Ident(h), ..
            }) => Some((*h).to_string()),
            _ => None,
        };
        (false, hint)
    } else {
        (false, None)
    };
    // A definition, not a call: `fn name(`.
    if i >= 1 && toks[i - 1].is_ident("fn") {
        return None;
    }
    let args = if is_macro {
        Vec::new() // macro "arguments" are tokens, not expressions
    } else {
        let open = toks[open_tok].at;
        match crate::lint::split_args(stripped, open) {
            Some((args, _)) => args.iter().map(|a| a.trim().to_string()).collect(),
            None => Vec::new(),
        }
    };
    let at = toks[i].at;
    let display = if is_macro {
        format!("{name}!")
    } else {
        name.to_string()
    };
    Some((
        CallSite {
            name: display,
            hint,
            method,
            dynamic: false,
            offset: at,
            line: line_of(stripped, at),
            args,
        },
        i + 1,
    ))
}

fn walk_rs(dir: &Path, files: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(&*name, "target" | "vendor" | "tests" | "benches" | ".git") {
                continue;
            }
            walk_rs(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        let mut g = CallGraph::new();
        g.add_source("crates/demo/src/demo.rs", src);
        g
    }

    #[test]
    fn free_and_impl_fns_get_qualified_names() {
        let g = graph_of(
            "pub fn top(x: usize) -> usize { helper(x) }\n\
             struct Foo;\n\
             impl Foo {\n    fn method(&self, y: usize) { top(y); }\n}\n\
             impl Drop for Foo {\n    fn drop(&mut self) {}\n}\n",
        );
        let quals: Vec<&str> = g.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["demo::top", "Foo::method", "Foo::drop"]);
        assert_eq!(g.fns[0].params, ["x"]);
        assert_eq!(g.fns[1].params, ["y"]); // self excluded
    }

    #[test]
    fn call_sites_record_shape_and_args() {
        let g = graph_of(
            "fn f(comm: &mut Comm, tag: u32) {\n\
             \x20   comm.recv(0, tag);\n\
             \x20   Vec::with_capacity(n);\n\
             \x20   helper(a, b + 1);\n\
             \x20   vec![0.0; n];\n\
             \x20   (self.kernel)(ke, ue, ve);\n\
             }\n",
        );
        let f = &g.fns[0];
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["recv", "with_capacity", "helper", "vec!", "<indirect>"]
        );
        assert!(f.calls[0].method);
        assert_eq!(f.calls[0].hint.as_deref(), Some("comm"));
        assert_eq!(f.calls[0].args, ["0", "tag"]);
        assert_eq!(f.calls[1].hint.as_deref(), Some("Vec"));
        assert!(!f.calls[1].method);
        assert_eq!(f.calls[2].args, ["a", "b + 1"]);
        assert!(f.calls[4].dynamic);
    }

    #[test]
    fn self_path_calls_resolve_to_the_impl_type() {
        let g = graph_of(
            "struct Foo;\n\
             impl Foo {\n\
             \x20   fn outer(&self) { Self::inner(); }\n\
             \x20   fn inner() {}\n\
             }\n",
        );
        let outer = &g.fns[0];
        assert_eq!(outer.calls[0].hint.as_deref(), Some("Foo"));
        match g.resolve(&outer.calls[0]) {
            Resolution::Candidates(ids) => assert_eq!(g.fns[ids[0]].qual, "Foo::inner"),
            other => panic!("Self:: call did not resolve narrowly: {other:?}"),
        }
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let g = graph_of(
            "fn f(n: usize) {\n\
             \x20   if (n > 0) { work(n); }\n\
             \x20   while (n > 1) { break; }\n\
             \x20   match (n) { _ => {} }\n\
             }\n",
        );
        let names: Vec<&str> = g.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["work"]);
    }

    #[test]
    fn markers_attach_across_attributes() {
        let g = graph_of(
            "// verify: kernel-entry, prove-bounds\n\
             #[inline]\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn emv_x(ke: &[f64]) {}\n\
             // verify: effect(ghost-read)\n\
             fn run_dep() {}\n\
             // verify: pure\n\
             fn anchor() {}\n",
        );
        assert_eq!(g.fns[0].markers, [Marker::KernelEntry, Marker::ProveBounds]);
        assert!(g.fns[0].is_unsafe);
        assert_eq!(g.fns[1].markers, [Marker::Effect("ghost-read".to_string())]);
        assert_eq!(g.fns[2].markers, [Marker::Pure]);
    }

    #[test]
    fn unknown_and_orphaned_markers_are_noted() {
        let g = graph_of("// verify: frobnicate\nfn f() {}\nfn g() {}\n// verify: pure\n");
        assert_eq!(g.notes.len(), 2, "{:?}", g.notes);
        assert!(
            g.notes[0].message.contains("unrecognized"),
            "{}",
            g.notes[0]
        );
        assert!(g.notes[1].message.contains("orphaned"), "{}", g.notes[1]);
    }

    #[test]
    fn resolution_policy_typed_paths_narrow_lowercase_fall_back() {
        let g = graph_of(
            "struct Plan;\n\
             impl Plan {\n    fn build(&self) {}\n}\n\
             fn build() {}\n\
             fn caller(p: &Plan) { Plan::build(p); build(); Vec::new(); p.build(); }\n",
        );
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let calls = &g.fns[caller].calls;
        // Typed path: exactly the impl fn.
        match g.resolve(&calls[0]) {
            Resolution::Candidates(ids) => {
                assert_eq!(ids.len(), 1);
                assert_eq!(g.fns[ids[0]].qual, "Plan::build");
            }
            other => panic!("{other:?}"),
        }
        // Bare name: both candidates.
        match g.resolve(&calls[1]) {
            Resolution::Candidates(ids) => assert_eq!(ids.len(), 2),
            other => panic!("{other:?}"),
        }
        // External typed path: unknown, not the bare-name multimap.
        assert_eq!(g.resolve(&calls[2]), Resolution::Unknown);
        // Method call: bare-name candidates.
        match g.resolve(&calls[3]) {
            Resolution::Candidates(ids) => assert_eq!(ids.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn test_modules_are_truncated() {
        let g = graph_of(
            "fn live() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn t() { comm.recv(0, 7); }\n}\n",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }

    #[test]
    fn bodies_span_the_braces() {
        let src = "fn f() { inner(); }\nfn g() {}\n";
        let g = graph_of(src);
        let (s, e) = g.fns[0].body.unwrap();
        assert!(g.files[0].stripped[s..e].contains("inner()"));
        assert!(!g.files[0].stripped[s..e].contains("fn g"));
    }

    #[test]
    fn nested_fn_bodies_attribute_calls_to_the_inner_fn() {
        let g = graph_of("fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n");
        let outer = g.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = g.fns.iter().position(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> = g.fns[outer].calls.iter().map(|c| c.name.as_str()).collect();
        let inner_calls: Vec<&str> = g.fns[inner].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, ["inner"]);
        assert_eq!(inner_calls, ["leaf"]);
    }
}

//! The unsafe-kernel bounds interpreter (`hymv-verify effects`, proof
//! stage).
//!
//! The SIMD EMV kernels in `crates/la/src/dense.rs` state their
//! preconditions as `debug_assert!`s and then perform unchecked lane
//! loads/stores through the `lanes::*` helpers. This pass re-derives, for
//! every kernel marked `// verify: prove-bounds`, that those preconditions
//! **entail** every lane access in bounds — symbolically, for all `nd`,
//! `bw`, and loop trip counts at once, padded tails included.
//!
//! ## The abstract domain
//!
//! Values are multivariate polynomials over the kernel's symbols (`nd`,
//! `bw`, loop variables, `let`-bound lengths) with integer coefficients
//! ([`Poly`]); every symbol is a nonnegative integer (`usize`). Facts
//! collected from the body:
//!
//! * `let nd = ue.len();` / `debug_assert_eq!(ke.len(), nd * nd);` —
//!   slice-length equalities,
//! * `let chunks = bw / 4;` — a floor-division symbol with the sound
//!   bound `4·chunks ≤ bw` (strengthened to equality when a
//!   `debug_assert!(bw % 4 == 0)` divisibility fact is present),
//! * `debug_assert!(bw <= 32)` — upper bounds,
//! * `for c in lo..hi { ... }` — `c ≤ hi − 1` (and `c ≥ 0` as usize).
//!
//! An access `lanes::load4(s, idx)` yields the obligation
//! `len(s) − idxmax − 4 ≥ 0` where `idxmax` substitutes every loop
//! variable by its upper bound (rejected if `idx` is not monotone in the
//! loop variables). The prover then rewrites the obligation with the
//! floor-division and upper-bound facts until every coefficient is
//! nonnegative (⟹ the polynomial is ≥ 0 for all nonnegative symbol
//! values) or no rewrite applies (⟹ reject, printing the residual).
//!
//! Alignment is handled structurally: only the *unaligned* lane helpers
//! are recognized; every raw-memory construct (`.add`, `as_ptr`,
//! `get_unchecked`, aligned or masked or gathering intrinsics, ...) in a
//! `prove-bounds` kernel is rejected outright, so nothing with an
//! alignment precondition can appear in certified code.
//!
//! [`check_slab_contract`] is the bridge to the runtime: it checks that a
//! concrete `BlockPlan`-style slab layout (`keb`/`ue`/`ve` lengths for a
//! given `nd`, `bw`) satisfies exactly the kernel preconditions the
//! certificates assume, closing the loop against the metadata `alias.rs`
//! proves collision-free.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::callgraph::{CallGraph, Marker};
use crate::lexer::{line_of, tokens, Tok, Token};

/// A certificate: every unchecked access of this kernel is proved
/// in-bounds from its stated preconditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCert {
    /// Qualified kernel name.
    pub kernel: String,
    pub file: String,
    pub line: usize,
    /// Number of unchecked accesses proved.
    pub accesses: usize,
    /// Number of loop nests walked.
    pub loops: usize,
}

/// A bounds-proof failure (or an unmodeled construct in a kernel that
/// asked to be proved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsDiag {
    pub file: String,
    pub line: usize,
    pub kernel: String,
    pub message: String,
}

impl fmt::Display for AbsDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.kernel, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Polynomials
// ---------------------------------------------------------------------------

/// A multivariate polynomial with `i64` coefficients: monomials are
/// sorted symbol multisets. All symbols range over nonnegative integers,
/// so "every coefficient ≥ 0" entails "value ≥ 0".
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Poly {
    /// sorted var multiset -> coefficient (no zero coefficients stored).
    terms: BTreeMap<Vec<String>, i64>,
}

impl Poly {
    fn zero() -> Self {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    fn constant(c: i64) -> Self {
        let mut p = Poly::zero();
        if c != 0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    fn var(name: &str) -> Self {
        let mut p = Poly::zero();
        p.terms.insert(vec![name.to_string()], 1);
        p
    }

    fn add_term(&mut self, vars: Vec<String>, coeff: i64) {
        let entry = self.terms.entry(vars).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            let vars = self
                .terms
                .iter()
                .find(|(_, &c)| c == 0)
                .map(|(v, _)| v.clone());
            if let Some(v) = vars {
                self.terms.remove(&v);
            }
        }
    }

    fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (v, &c) in &other.terms {
            out.add_term(v.clone(), c);
        }
        out
    }

    fn sub(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (v, &c) in &other.terms {
            out.add_term(v.clone(), -c);
        }
        out
    }

    fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (va, &ca) in &self.terms {
            for (vb, &cb) in &other.terms {
                let mut v = va.clone();
                v.extend(vb.iter().cloned());
                v.sort();
                out.add_term(v, ca * cb);
            }
        }
        out
    }

    /// Every monomial mentioning `name` has a nonnegative coefficient
    /// (⟹ the poly is monotone nondecreasing in `name` over ℕ).
    fn monotone_in(&self, name: &str) -> bool {
        self.terms
            .iter()
            .all(|(v, &c)| c >= 0 || !v.iter().any(|s| s == name))
    }

    /// Substitute `name := rep` (polynomial composition).
    fn subst(&self, name: &str, rep: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (v, &c) in &self.terms {
            let (with, without): (Vec<_>, Vec<_>) = v.iter().partition(|s| *s == name);
            let mut term = Poly::constant(c);
            let mut rest = Poly::zero();
            rest.terms.insert(without.into_iter().cloned().collect(), 1);
            term = term.mul(&rest);
            for _ in 0..with.len() {
                term = term.mul(rep);
            }
            out = out.add(&term);
        }
        out
    }

    fn all_nonneg(&self) -> bool {
        self.terms.values().all(|&c| c >= 0)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (v, &c) in &self.terms {
            if !first {
                write!(f, " ")?;
            }
            if c >= 0 && !first {
                write!(f, "+ ")?;
            } else if c < 0 {
                write!(f, "- ")?;
            }
            first = false;
            let mag = c.abs();
            if v.is_empty() {
                write!(f, "{mag}")?;
            } else {
                if mag != 1 {
                    write!(f, "{mag}·")?;
                }
                write!(f, "{}", v.join("·"))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Index-expression parsing (over lexer tokens)
// ---------------------------------------------------------------------------

/// Parse `+ - * ( ) int ident` index arithmetic into a [`Poly`].
fn parse_expr(toks: &[Token<'_>]) -> Result<Poly, String> {
    let (p, rest) = parse_sum(toks)?;
    if !rest.is_empty() {
        return Err(format!(
            "trailing tokens after expression ({} left)",
            rest.len()
        ));
    }
    Ok(p)
}

fn parse_sum<'t, 'a>(toks: &'t [Token<'a>]) -> Result<(Poly, &'t [Token<'a>]), String> {
    let (mut acc, mut rest) = parse_prod(toks)?;
    loop {
        match rest.first() {
            Some(t) if t.is_punct(b'+') => {
                let (rhs, r) = parse_prod(&rest[1..])?;
                acc = acc.add(&rhs);
                rest = r;
            }
            Some(t) if t.is_punct(b'-') => {
                let (rhs, r) = parse_prod(&rest[1..])?;
                acc = acc.sub(&rhs);
                rest = r;
            }
            _ => return Ok((acc, rest)),
        }
    }
}

fn parse_prod<'t, 'a>(toks: &'t [Token<'a>]) -> Result<(Poly, &'t [Token<'a>]), String> {
    let (mut acc, mut rest) = parse_atom(toks)?;
    while rest.first().is_some_and(|t| t.is_punct(b'*')) {
        let (rhs, r) = parse_atom(&rest[1..])?;
        acc = acc.mul(&rhs);
        rest = r;
    }
    Ok((acc, rest))
}

fn parse_atom<'t, 'a>(toks: &'t [Token<'a>]) -> Result<(Poly, &'t [Token<'a>]), String> {
    match toks.first().map(|t| t.tok) {
        Some(Tok::Int(s)) => {
            let v = parse_int(s).ok_or_else(|| format!("unsupported literal `{s}`"))?;
            Ok((Poly::constant(v), &toks[1..]))
        }
        Some(Tok::Ident(s)) => Ok((Poly::var(s), &toks[1..])),
        Some(Tok::Punct(b'(')) => {
            let (p, rest) = parse_sum(&toks[1..])?;
            match rest.first() {
                Some(t) if t.is_punct(b')') => Ok((p, &rest[1..])),
                _ => Err("unbalanced parenthesis in index expression".to_string()),
            }
        }
        other => Err(format!("unsupported index syntax near {other:?}")),
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s: String = s.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    s.parse().ok()
}

// ---------------------------------------------------------------------------
// Kernel interpretation
// ---------------------------------------------------------------------------

/// The unaligned lane helpers: (name, lane count). The slice is argument
/// 0 and the index argument 1 for all of them.
const LANE_HELPERS: &[(&str, i64)] = &[
    ("load4", 4),
    ("store4", 4),
    ("load8", 8),
    ("store8", 8),
    ("read1", 1),
    ("add1", 1),
    // Broadcast helpers (multivector kernels): read one scalar, splat it.
    ("bcast4", 1),
    ("bcast8", 1),
];

/// Raw-memory constructs that are never allowed inside a `prove-bounds`
/// kernel (method position, after a `.`).
const BANNED_METHODS: &[&str] = &[
    "add",
    "offset",
    "get_unchecked",
    "get_unchecked_mut",
    "as_ptr",
    "as_mut_ptr",
    "read",
    "write",
    "read_unaligned",
    "write_unaligned",
];

/// Raw-memory constructs banned in free/assoc position.
const BANNED_CALLS: &[&str] = &[
    "from_raw_parts",
    "from_raw_parts_mut",
    "copy_nonoverlapping",
    "copy",
    "write_bytes",
    "transmute",
];

/// Value-only SIMD intrinsics (no memory operand) the interpreter
/// whitelists; any other `_mm*` intrinsic — loads, stores, gathers,
/// masked or aligned forms — is rejected.
const VALUE_INTRINSIC_SUFFIXES: &[&str] = &[
    "set1_pd",
    "setzero_pd",
    "fmadd_pd",
    "add_pd",
    "mul_pd",
    "sub_pd",
];

struct LoopFrame {
    var: String,
    /// Exclusive upper bound of the range.
    hi: Poly,
    /// Brace depth of the loop body (pop when depth falls below).
    depth: usize,
}

struct Kctx {
    /// slice name -> symbolic length.
    lens: BTreeMap<String, Poly>,
    /// `q = ⌊x / k⌋` facts.
    floordivs: Vec<(String, Poly, i64)>,
    /// `k | x` facts (x a single symbol).
    divides: Vec<(i64, String)>,
    /// `sym ≤ n` facts.
    upper: Vec<(String, i64)>,
    loops: Vec<LoopFrame>,
}

/// Certify every `// verify: prove-bounds` kernel in `text`.
pub fn certify_source(label: &str, text: &str) -> (Vec<KernelCert>, Vec<AbsDiag>) {
    let mut graph = CallGraph::new();
    graph.add_source(label, text);
    let mut certs = Vec::new();
    let mut diags = Vec::new();
    for f in &graph.fns {
        if !f.markers.contains(&Marker::ProveBounds) {
            continue;
        }
        let Some((s, e)) = f.body else {
            diags.push(AbsDiag {
                file: f.file.clone(),
                line: f.line,
                kernel: f.qual.clone(),
                message: "`prove-bounds` on a bodiless fn".to_string(),
            });
            continue;
        };
        let stripped = &graph.files[f.file_id].stripped;
        match interpret_kernel(&f.qual, &f.file, stripped, s, e.min(stripped.len())) {
            Ok((accesses, loops)) => certs.push(KernelCert {
                kernel: f.qual.clone(),
                file: f.file.clone(),
                line: f.line,
                accesses,
                loops,
            }),
            Err(mut ds) => diags.append(&mut ds),
        }
    }
    (certs, diags)
}

/// Certify a file on disk (the CLI entry: `crates/la/src/dense.rs`).
pub fn certify_file(path: &Path) -> Result<(Vec<KernelCert>, Vec<AbsDiag>), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(certify_source(&path.to_string_lossy(), &text))
}

/// The runtime bridge: check that a concrete batched slab (`keb`, `ue`,
/// `ve` lengths for a given `nd`, `bw`) satisfies the batched kernels'
/// proved preconditions exactly.
pub fn check_slab_contract(
    nd: usize,
    bw: usize,
    keb_len: usize,
    ue_len: usize,
    ve_len: usize,
) -> Result<(), String> {
    if nd == 0 || bw == 0 {
        return Err(format!("degenerate slab: nd={nd} bw={bw}"));
    }
    let want = [
        ("keb", keb_len, "nd * nd * bw", nd * nd * bw),
        ("ue", ue_len, "nd * bw", nd * bw),
        ("ve", ve_len, "nd * bw", nd * bw),
    ];
    for (name, got, formula, expect) in want {
        if got != expect {
            return Err(format!(
                "slab {name} length {got} violates the proved kernel precondition \
                 {formula} = {expect} (nd={nd}, bw={bw})"
            ));
        }
    }
    Ok(())
}

/// The multivector analog of [`check_slab_contract`]: a width-`nvec`
/// SpMM slab keeps the batch-interleaved `keb` but widens the `ue`/`ve`
/// panels to `nd·bw·nvec` (`nvec` contiguous column values per lane).
pub fn check_mv_slab_contract(
    nd: usize,
    bw: usize,
    nvec: usize,
    keb_len: usize,
    ue_len: usize,
    ve_len: usize,
) -> Result<(), String> {
    if nvec == 0 {
        return Err("degenerate multivector slab: nvec=0".to_string());
    }
    check_slab_contract(nd, bw, keb_len, ue_len / nvec, ve_len / nvec)?;
    for (name, got) in [("ue", ue_len), ("ve", ve_len)] {
        if got % nvec != 0 {
            return Err(format!(
                "multivector slab {name} length {got} is not a multiple of nvec={nvec}"
            ));
        }
    }
    Ok(())
}

/// Walk one kernel body: collect facts, prove every lane access, reject
/// unmodeled unsafe constructs. Returns (accesses proved, loops walked).
#[allow(clippy::too_many_lines)]
fn interpret_kernel(
    qual: &str,
    file: &str,
    stripped: &str,
    body_start: usize,
    body_end: usize,
) -> Result<(usize, usize), Vec<AbsDiag>> {
    let body = &stripped[body_start..body_end];
    let toks = tokens(body);
    let mut ctx = Kctx {
        lens: BTreeMap::new(),
        floordivs: Vec::new(),
        divides: Vec::new(),
        upper: Vec::new(),
        loops: Vec::new(),
    };
    let mut diags: Vec<AbsDiag> = Vec::new();
    let diag = |at: usize, message: String| AbsDiag {
        file: file.to_string(),
        line: line_of(stripped, body_start + at),
        kernel: qual.to_string(),
        message,
    };
    let mut accesses = 0usize;
    let mut loops = 0usize;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                while ctx.loops.last().is_some_and(|fr| fr.depth > depth) {
                    ctx.loops.pop();
                }
                i += 1;
            }
            Tok::Ident("for") => {
                match parse_for_header(&toks[i..]) {
                    Ok((var, hi, brace_rel)) => {
                        loops += 1;
                        ctx.loops.push(LoopFrame {
                            var,
                            hi,
                            depth: depth + 1,
                        });
                        i += brace_rel; // the `{` itself is handled above
                    }
                    Err(e) => {
                        diags.push(diag(toks[i].at, format!("unsupported loop form: {e}")));
                        i += 1;
                    }
                }
            }
            Tok::Ident("let") => {
                collect_let_facts(&toks[i..], &mut ctx);
                i += 1;
            }
            Tok::Ident(name @ ("debug_assert_eq" | "assert_eq"))
                if toks.get(i + 1).is_some_and(|t| t.is_punct(b'!')) =>
            {
                let _ = name;
                collect_len_fact(&toks[i + 2..], &mut ctx);
                i += 2;
            }
            Tok::Ident(name @ ("debug_assert" | "assert"))
                if toks.get(i + 1).is_some_and(|t| t.is_punct(b'!')) =>
            {
                let _ = name;
                collect_bound_facts(&toks[i + 2..], &mut ctx);
                i += 2;
            }
            Tok::Ident("lanes")
                if toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(b':')) =>
            {
                let Some(helper) = toks.get(i + 3) else {
                    i += 1;
                    continue;
                };
                let Tok::Ident(hname) = helper.tok else {
                    i += 1;
                    continue;
                };
                let Some(&(_, lanes)) = LANE_HELPERS.iter().find(|&&(n, _)| n == hname) else {
                    diags.push(diag(
                        toks[i].at,
                        format!("unknown lanes helper `lanes::{hname}`"),
                    ));
                    i += 4;
                    continue;
                };
                if !toks.get(i + 4).is_some_and(|t| t.is_punct(b'(')) {
                    i += 4;
                    continue;
                }
                match prove_access(&toks[i + 4..], hname, lanes, &ctx) {
                    Ok(()) => accesses += 1,
                    Err(e) => diags.push(diag(
                        toks[i].at,
                        format!("cannot prove `lanes::{hname}` in bounds: {e}"),
                    )),
                }
                // Continue scanning *inside* the argument list so nested
                // helper calls (e.g. `add1(ve, i, read1(ke, ..) * u)`) are
                // still visited.
                i += 5;
            }
            Tok::Ident(name) => {
                // Banned raw-memory constructs.
                let is_method = i >= 1 && toks[i - 1].is_punct(b'.');
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct(b'('));
                if is_method && called && BANNED_METHODS.contains(&name) {
                    diags.push(diag(
                        toks[i].at,
                        format!("raw-memory method `.{name}(..)` in a prove-bounds kernel"),
                    ));
                } else if called && !is_method && BANNED_CALLS.contains(&name) {
                    diags.push(diag(
                        toks[i].at,
                        format!("raw-memory call `{name}(..)` in a prove-bounds kernel"),
                    ));
                } else if called && name.starts_with("_mm") {
                    let ok = VALUE_INTRINSIC_SUFFIXES
                        .iter()
                        .any(|suf| name.ends_with(suf));
                    if !ok {
                        diags.push(diag(
                            toks[i].at,
                            format!(
                                "unmodeled SIMD intrinsic `{name}` (memory, masked, aligned, \
                                 and gather forms must go through the `lanes::*` helpers)"
                            ),
                        ));
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    if diags.is_empty() {
        Ok((accesses, loops))
    } else {
        Err(diags)
    }
}

/// Parse `for VAR in LO..HI {`, returning (var, hi, relative index of the
/// `{`). `toks[0]` is the `for`.
fn parse_for_header(toks: &[Token<'_>]) -> Result<(String, Poly, usize), String> {
    let var = match toks.get(1).map(|t| t.tok) {
        Some(Tok::Ident(v)) => v.to_string(),
        other => return Err(format!("pattern loops are not modeled (got {other:?})")),
    };
    if !toks.get(2).is_some_and(|t| t.is_ident("in")) {
        return Err("expected `in`".to_string());
    }
    // Find the `..` at paren depth 0, then the `{`.
    let mut j = 3;
    let mut depth = 0isize;
    let mut dots_at = None;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct(b'(') => depth += 1,
            Tok::Punct(b')') => depth -= 1,
            Tok::Punct(b'.') if depth == 0 && toks.get(j + 1).is_some_and(|t| t.is_punct(b'.')) => {
                dots_at = Some(j);
                break;
            }
            Tok::Punct(b'{') if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let dots = dots_at.ok_or_else(|| "only `lo..hi` range loops are modeled".to_string())?;
    let mut k = dots + 2;
    let mut depth = 0isize;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Punct(b'(') => depth += 1,
            Tok::Punct(b')') => depth -= 1,
            Tok::Punct(b'{') if depth == 0 => break,
            Tok::Punct(b'=') if depth == 0 => {
                return Err("inclusive ranges (`..=`) are not modeled".to_string())
            }
            _ => {}
        }
        k += 1;
    }
    if k >= toks.len() {
        return Err("no loop body brace".to_string());
    }
    let hi = parse_expr(&toks[dots + 2..k]).map_err(|e| format!("range bound: {e}"))?;
    // The lower bound only matters for nonnegativity, which usize gives
    // for free — parse it to reject unsupported syntax early.
    parse_expr(&toks[3..dots]).map_err(|e| format!("range bound: {e}"))?;
    Ok((var, hi, k))
}

/// `let NAME = s.len();` and `let NAME = X / K;` facts. `toks[0]` is the
/// `let`. Anything else is left to the generic scan.
fn collect_let_facts(toks: &[Token<'_>], ctx: &mut Kctx) {
    let mut j = 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(Tok::Ident(name)) = toks.get(j).map(|t| t.tok) else {
        return;
    };
    if !toks.get(j + 1).is_some_and(|t| t.is_punct(b'=')) {
        return;
    }
    let rhs_start = j + 2;
    // Find the `;` at depth 0.
    let mut depth = 0isize;
    let mut end = rhs_start;
    while end < toks.len() {
        match toks[end].tok {
            Tok::Punct(b'(' | b'[') => depth += 1,
            Tok::Punct(b')' | b']') => depth -= 1,
            Tok::Punct(b';') if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    let rhs = &toks[rhs_start..end.min(toks.len())];
    // `let nd = ue.len();`
    if rhs.len() == 5
        && rhs[1].is_punct(b'.')
        && rhs[2].is_ident("len")
        && rhs[3].is_punct(b'(')
        && rhs[4].is_punct(b')')
    {
        if let Tok::Ident(slice) = rhs[0].tok {
            ctx.lens.insert(slice.to_string(), Poly::var(name));
            return;
        }
    }
    // `let chunks = X / K;` (floor division over usize).
    if let Some(slash) = rhs.iter().position(|t| t.is_punct(b'/')) {
        if let (Ok(x), Some(Tok::Int(ks))) =
            (parse_expr(&rhs[..slash]), rhs.get(slash + 1).map(|t| t.tok))
        {
            if rhs.len() == slash + 2 {
                if let Some(k) = parse_int(ks) {
                    if k > 0 {
                        ctx.floordivs.push((name.to_string(), x, k));
                    }
                }
            }
        }
    }
}

/// `debug_assert_eq!(s.len(), EXPR)` (either order). `toks[0]` is the `(`.
fn collect_len_fact(toks: &[Token<'_>], ctx: &mut Kctx) {
    let Some(args) = split_token_args(toks) else {
        return;
    };
    if args.len() != 2 {
        return;
    }
    let as_len = |ts: &[Token<'_>]| -> Option<String> {
        if ts.len() == 5
            && ts[1].is_punct(b'.')
            && ts[2].is_ident("len")
            && ts[3].is_punct(b'(')
            && ts[4].is_punct(b')')
        {
            if let Tok::Ident(s) = ts[0].tok {
                return Some(s.to_string());
            }
        }
        None
    };
    for (a, b) in [(0usize, 1usize), (1, 0)] {
        if let (Some(slice), Ok(len)) = (as_len(args[a]), parse_expr(args[b])) {
            ctx.lens.insert(slice, len);
            return;
        }
    }
}

/// `debug_assert!(a % k == 0 && a <= n && ...)` facts. `toks[0]` is `(`.
fn collect_bound_facts(toks: &[Token<'_>], ctx: &mut Kctx) {
    let Some(args) = split_token_args(toks) else {
        return;
    };
    let Some(cond) = args.first() else {
        return;
    };
    // Split the condition on top-level `&&`.
    let mut parts: Vec<&[Token<'_>]> = Vec::new();
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut j = 0usize;
    while j < cond.len() {
        match cond[j].tok {
            Tok::Punct(b'(' | b'[') => depth += 1,
            Tok::Punct(b')' | b']') => depth -= 1,
            Tok::Punct(b'&') if depth == 0 && cond.get(j + 1).is_some_and(|t| t.is_punct(b'&')) => {
                parts.push(&cond[start..j]);
                j += 2;
                start = j;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    parts.push(&cond[start..]);
    for p in parts {
        // `x % k == 0`
        if p.len() == 6 && p[1].is_punct(b'%') && p[3].is_punct(b'=') && p[4].is_punct(b'=') {
            if let (Tok::Ident(x), Tok::Int(ks), Tok::Int(zero)) = (p[0].tok, p[2].tok, p[5].tok) {
                if parse_int(zero) == Some(0) {
                    if let Some(k) = parse_int(ks) {
                        if k > 0 {
                            ctx.divides.push((k, x.to_string()));
                        }
                    }
                }
            }
        }
        // `x <= n`
        if p.len() == 4 && p[1].is_punct(b'<') && p[2].is_punct(b'=') {
            if let (Tok::Ident(x), Tok::Int(ns)) = (p[0].tok, p[3].tok) {
                if let Some(n) = parse_int(ns) {
                    ctx.upper.push((x.to_string(), n));
                }
            }
        }
    }
}

/// Split a parenthesized argument list into top-level token slices.
/// `toks[0]` must be the `(`.
fn split_token_args<'t, 'a>(toks: &'t [Token<'a>]) -> Option<Vec<&'t [Token<'a>]>> {
    if !toks.first().is_some_and(|t| t.is_punct(b'(')) {
        return None;
    }
    let mut depth = 1isize;
    let mut args = Vec::new();
    let mut start = 1usize;
    let mut j = 1usize;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct(b'(' | b'[') => depth += 1,
            Tok::Punct(b')' | b']') => {
                depth -= 1;
                if depth == 0 {
                    if j > start || !args.is_empty() {
                        args.push(&toks[start..j]);
                    }
                    return Some(args);
                }
            }
            Tok::Punct(b',') if depth == 1 => {
                args.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Prove one `lanes::helper(slice, idx, ...)` access in bounds.
/// `toks[0]` is the `(` of the argument list.
fn prove_access(toks: &[Token<'_>], helper: &str, lanes: i64, ctx: &Kctx) -> Result<(), String> {
    let args = split_token_args(toks).ok_or("unbalanced argument list")?;
    if args.len() < 2 {
        return Err(format!("`lanes::{helper}` needs (slice, index, ..)"));
    }
    let slice = match args[0] {
        [Token {
            tok: Tok::Ident(s), ..
        }] => *s,
        _ => return Err("slice argument must be a plain identifier".to_string()),
    };
    let len = ctx
        .lens
        .get(slice)
        .ok_or_else(|| format!("no length fact for slice `{slice}`"))?;
    let idx = parse_expr(args[1]).map_err(|e| format!("index expression: {e}"))?;

    // Substitute every loop variable by its maximum (hi − 1), innermost
    // first so outer variables in inner bounds resolve. Soundness needs
    // the index monotone in each substituted variable.
    let mut worst = idx;
    for fr in ctx.loops.iter().rev() {
        if !worst.monotone_in(&fr.var) {
            return Err(format!("index not monotone in loop variable `{}`", fr.var));
        }
        worst = worst.subst(&fr.var, &fr.hi.sub(&Poly::constant(1)));
    }
    let mut p = len.sub(&worst).sub(&Poly::constant(lanes));

    // Rewrite to all-nonnegative coefficients using the collected facts.
    for _round in 0..32 {
        if p.all_nonneg() {
            return Ok(());
        }
        if !rewrite_once(&mut p, ctx) {
            break;
        }
    }
    Err(format!(
        "residual `{p} ≥ 0` not provable from the stated preconditions"
    ))
}

/// One fact-rewrite step on `p` (lower-bounding transformations only, so
/// `p' ≥ 0 ⟹ p ≥ 0`). Returns false when no rewrite applies.
fn rewrite_once(p: &mut Poly, ctx: &Kctx) -> bool {
    // Floor-division: `q = ⌊x/k⌋` gives `k·q ≤ x`. A *negative* multiple
    // of q may be replaced by the same multiple of x/k (this lowers p).
    // With a `k | x` divisibility fact, `k·q == x` exactly and positive
    // multiples may be rewritten too.
    for (q, x, k) in &ctx.floordivs {
        let exact = match x.terms.iter().collect::<Vec<_>>()[..] {
            [(vars, &1)] if vars.len() == 1 => {
                ctx.divides.iter().any(|(dk, dx)| dk == k && *dx == vars[0])
            }
            _ => false,
        };
        let target = p.terms.iter().find_map(|(vars, &c)| {
            let occ = vars.iter().filter(|s| *s == q).count();
            if occ == 1 && c % k == 0 && (c < 0 || exact) {
                Some((vars.clone(), c))
            } else {
                None
            }
        });
        if let Some((vars, c)) = target {
            p.add_term(vars.clone(), -c);
            let mut rest = Poly::zero();
            let without: Vec<String> = {
                let mut v = vars.clone();
                let pos = v.iter().position(|s| s == q).expect("occurrence checked");
                v.remove(pos);
                v
            };
            rest.terms.insert(without, 1);
            let replacement = Poly::constant(c / k).mul(x).mul(&rest);
            *p = p.add(&replacement);
            return true;
        }
    }
    // Upper bounds: a negative multiple of `s` with `s ≤ n` may be
    // replaced by the same multiple of n.
    for (s, n) in &ctx.upper {
        let target = p.terms.iter().find_map(|(vars, &c)| {
            if c < 0 && vars.iter().any(|v| v == s) {
                Some((vars.clone(), c))
            } else {
                None
            }
        });
        if let Some((vars, c)) = target {
            p.add_term(vars.clone(), -c);
            let without: Vec<String> = {
                let mut v = vars.clone();
                let pos = v.iter().position(|x| x == s).expect("occurrence checked");
                v.remove(pos);
                v
            };
            let mut rest = Poly::zero();
            rest.terms.insert(without, 1);
            let replacement = Poly::constant(c * n).mul(&rest);
            *p = p.add(&replacement);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_AVX2: &str = r#"
// verify: prove-bounds
unsafe fn emv_avx2_impl(ke: &[f64], ue: &[f64], ve: &mut [f64]) {
    let nd = ue.len();
    debug_assert_eq!(ke.len(), nd * nd);
    debug_assert_eq!(ve.len(), nd);
    ve.fill(0.0);
    let chunks = nd / 4;
    for j in 0..nd {
        let u = lanes::read1(ue, j);
        let ub = _mm256_set1_pd(u);
        for c in 0..chunks {
            let k = lanes::load4(ke, j * nd + 4 * c);
            let v = lanes::load4(ve, 4 * c);
            lanes::store4(ve, 4 * c, _mm256_fmadd_pd(k, ub, v));
        }
        for i in 4 * chunks..nd {
            lanes::add1(ve, i, lanes::read1(ke, j * nd + i) * u);
        }
    }
}
"#;

    #[test]
    fn per_element_kernel_certifies() {
        let (certs, diags) = certify_source("crates/la/src/dense.rs", GOOD_AVX2);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(certs.len(), 1);
        assert_eq!(certs[0].kernel, "dense::emv_avx2_impl");
        // read1 + 2×load4 + store4 + read1 + add1.
        assert_eq!(certs[0].accesses, 6);
        assert_eq!(certs[0].loops, 3);
    }

    const GOOD_BATCH: &str = r#"
// verify: prove-bounds
unsafe fn emv_batch_avx2_impl(keb: &[f64], ue: &[f64], ve: &mut [f64], nd: usize, bw: usize) {
    debug_assert_eq!(keb.len(), nd * nd * bw);
    debug_assert_eq!(ue.len(), nd * bw);
    debug_assert_eq!(ve.len(), nd * bw);
    debug_assert!(bw % 4 == 0 && bw <= 32);
    let chunks = bw / 4;
    for i in 0..nd {
        let mut acc = [_mm256_setzero_pd(); 8];
        for j in 0..nd {
            for c in 0..chunks {
                let k = lanes::load4(keb, (j * nd + i) * bw + 4 * c);
                let u = lanes::load4(ue, j * bw + 4 * c);
                acc[c] = _mm256_fmadd_pd(k, u, acc[c]);
            }
        }
        for c in 0..chunks {
            lanes::store4(ve, i * bw + 4 * c, acc[c]);
        }
    }
}
"#;

    #[test]
    fn batched_kernel_certifies() {
        let (certs, diags) = certify_source("crates/la/src/dense.rs", GOOD_BATCH);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(certs.len(), 1);
        assert_eq!(certs[0].accesses, 3);
    }

    const GOOD_BATCH_MV: &str = r#"
// verify: prove-bounds
unsafe fn emv_batch_mv_avx2_impl(keb: &[f64], ue: &[f64], ve: &mut [f64], nd: usize, bw: usize, nvec: usize) {
    debug_assert_eq!(keb.len(), nd * nd * bw);
    debug_assert_eq!(ue.len(), nd * bw * nvec);
    debug_assert_eq!(ve.len(), nd * bw * nvec);
    debug_assert!(nvec % 4 == 0 && nvec <= 32);
    let chunks = nvec / 4;
    for k in 0..bw {
        for i in 0..nd {
            let mut acc = [_mm256_setzero_pd(); 8];
            for j in 0..nd {
                let ke = lanes::bcast4(keb, (j * nd + i) * bw + k);
                for c in 0..chunks {
                    let u = lanes::load4(ue, (j * bw + k) * nvec + 4 * c);
                    acc[c] = _mm256_fmadd_pd(ke, u, acc[c]);
                }
            }
            for c in 0..chunks {
                lanes::store4(ve, (i * bw + k) * nvec + 4 * c, acc[c]);
            }
        }
    }
}
"#;

    /// The multivector kernel shape: a `bcast4` of one `keb` scalar
    /// amortized over `nvec/4` column chunks, panels strided by `nvec`.
    #[test]
    fn multivector_kernel_certifies() {
        let (certs, diags) = certify_source("crates/la/src/dense.rs", GOOD_BATCH_MV);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(certs.len(), 1);
        // bcast4 + load4 + store4.
        assert_eq!(certs[0].accesses, 3);
    }

    #[test]
    fn multivector_off_by_one_is_rejected() {
        let broken = GOOD_BATCH_MV.replace(
            "(i * bw + k) * nvec + 4 * c",
            "(i * bw + k) * nvec + 4 * c + 1",
        );
        let (certs, diags) = certify_source("crates/la/src/dense.rs", &broken);
        assert!(certs.is_empty());
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("cannot prove `lanes::store4` in bounds")),
            "{diags:?}"
        );
    }

    #[test]
    fn mv_slab_contract_checks_widened_panels() {
        // nd=8, bw=4, nvec=8: keb unchanged, panels ×nvec.
        assert!(check_mv_slab_contract(8, 4, 8, 8 * 8 * 4, 8 * 4 * 8, 8 * 4 * 8).is_ok());
        let err = check_mv_slab_contract(8, 4, 8, 8 * 8 * 4, 8 * 4 * 8 - 8, 8 * 4 * 8).unwrap_err();
        assert!(
            err.contains("violates the proved kernel precondition"),
            "{err}"
        );
        let err = check_mv_slab_contract(8, 4, 3, 8 * 8 * 4, 8 * 4 * 3 + 1, 8 * 4 * 3).unwrap_err();
        assert!(err.contains("not a multiple of nvec"), "{err}");
        assert!(check_mv_slab_contract(8, 4, 0, 8 * 8 * 4, 0, 0).is_err());
    }

    #[test]
    fn off_by_one_kernel_is_rejected() {
        // The deliberately broken fixture: `+ 1` pushes the last lane out.
        let broken = GOOD_AVX2.replace("j * nd + 4 * c", "j * nd + 4 * c + 1");
        let (certs, diags) = certify_source("crates/la/src/dense.rs", &broken);
        assert!(certs.is_empty());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("cannot prove `lanes::load4` in bounds"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("residual"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn missing_modulus_fact_fails_the_batch_proof() {
        // Without `bw % 4 == 0` the store tail cannot be tight... the
        // load obligations still hold (floor division lower-bounds), but
        // removing the *length fact* must break the proof.
        let broken = GOOD_BATCH.replace("debug_assert_eq!(ue.len(), nd * bw);", "");
        let (certs, diags) = certify_source("crates/la/src/dense.rs", &broken);
        assert!(certs.is_empty());
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no length fact for slice `ue`")),
            "{diags:?}"
        );
    }

    #[test]
    fn raw_pointer_constructs_are_rejected() {
        let src = r#"
// verify: prove-bounds
unsafe fn sneaky(ke: &[f64], ue: &[f64], ve: &mut [f64]) {
    let nd = ue.len();
    debug_assert_eq!(ke.len(), nd * nd);
    let p = ke.as_ptr();
    let x = *p.add(3);
    let y = *ke.get_unchecked(0);
    let v = _mm256_loadu_pd(p);
}
"#;
        let (certs, diags) = certify_source("crates/la/src/x.rs", src);
        assert!(certs.is_empty());
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`.as_ptr(..)`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`.add(..)`")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("`.get_unchecked(..)`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("unmodeled SIMD intrinsic `_mm256_loadu_pd`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn non_monotone_index_is_rejected() {
        let src = r#"
// verify: prove-bounds
unsafe fn downward(ke: &[f64], ue: &[f64], nd: usize) {
    debug_assert_eq!(ke.len(), nd * nd);
    debug_assert_eq!(ue.len(), nd);
    for j in 0..nd {
        let x = lanes::read1(ke, nd * nd - j);
    }
}
"#;
        let (_certs, diags) = certify_source("crates/la/src/x.rs", src);
        assert!(
            diags.iter().any(|d| d.message.contains("not monotone")),
            "{diags:?}"
        );
    }

    #[test]
    fn unmarked_fns_are_ignored() {
        let src = "unsafe fn free(p: *const f64) { let x = *p.add(1); }\n";
        let (certs, diags) = certify_source("crates/la/src/x.rs", src);
        assert!(certs.is_empty() && diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn slab_contract_matches_kernel_preconditions() {
        assert!(check_slab_contract(8, 4, 8 * 8 * 4, 8 * 4, 8 * 4).is_ok());
        let err = check_slab_contract(8, 4, 8 * 8 * 4 - 1, 8 * 4, 8 * 4).unwrap_err();
        assert!(err.contains("keb"), "{err}");
        assert!(check_slab_contract(0, 4, 0, 0, 0).is_err());
    }

    #[test]
    fn poly_arithmetic_and_display() {
        let nd = Poly::var("nd");
        let p = nd.mul(&nd).sub(&Poly::var("nd")).add(&Poly::constant(-3));
        assert!(!p.all_nonneg());
        assert!(p.monotone_in("bw"));
        assert!(!p.sub(&nd.mul(&nd)).monotone_in("nd"));
        let s = format!("{p}");
        assert!(s.contains("nd·nd"), "{s}");
    }
}

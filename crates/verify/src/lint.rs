//! The workspace lint pass: source-level rules the type system cannot
//! express, enforced by a comment/string-aware token scan (the build
//! sandbox has no `syn`, so this is a hand-rolled lexer, not a full
//! parser — see the soundness notes in `DESIGN.md` §9).
//!
//! Rules:
//!
//! * **`raw-tag-literal`** — every `Comm` call site must pass its tag as a
//!   named constant, never an integer literal: literals silently collide
//!   across modules and can wander into the reserved range
//!   [`hymv_comm::RESERVED_TAG_BASE`] that the runtime auditor owns.
//! * **`blocking-recv-in-overlap`** — between `scatter_begin` and
//!   `scatter_end` only computation may run; a blocking `recv`/`recv_any`
//!   there destroys the communication/computation overlap Algorithm 2
//!   exists to provide (and can deadlock against the in-flight scatter).
//! * **`unsafe-without-safety`** — each `#[allow(unsafe_code)]` opt-out
//!   must carry a `// SAFETY:` comment within three lines, stating the
//!   invariant that makes the unsafe block sound.
//! * **`nondeterminism-in-kernel`** — wall-clock and ambient-RNG calls are
//!   banned inside the numerical crates (`crates/la`, `crates/core`):
//!   HYMV's results must be bitwise reproducible, and its timing flows
//!   through the virtual-time ledger (`thread_cpu_time`), not wall clocks.
//! * **`ledger-access-in-kernel`** — the virtual-time ledger is owned by
//!   `hymv-comm`: operator and kernel code must never read the thread
//!   clock (`thread_cpu_time`) or touch the [`hymv_comm::Ledger`]
//!   directly. Doing so double-charges or skips virtual time, skewing
//!   every traced span and the `vt_seconds` gauges. Timing flows only
//!   through `Comm::work`/`work_with`/`timed_work`/`traced`.
//! * **`envelope-bypass`** — per-SPMV ghost traffic (`TAG_SCATTER`,
//!   `TAG_GATHER`, `TAG_GHOSTS`) must ride the sequence-numbered,
//!   checksummed envelope channel (`send_enveloped`/`recv_enveloped`);
//!   a raw `isend`/`recv` on those tags silently opts out of loss,
//!   duplication, and corruption recovery (DESIGN.md §10). Only the two
//!   owning modules (`crates/core/src/exchange.rs`,
//!   `crates/la/src/dist_csr.rs`), which gate the raw path behind the
//!   bench-only `raw_transport` flag, may touch these tags directly.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::line_of;
pub use crate::lexer::strip_comments_and_strings;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation with the offending snippet.
    pub message: String,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Find every `name(` call site in `stripped` where `name` stands alone as
/// an identifier (not a suffix of a longer name), yielding the byte offset
/// of the name.
pub(crate) fn call_sites<'a>(stripped: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let b = stripped.as_bytes();
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(rel) = stripped[from..].find(name) {
            let at = from + rel;
            from = at + name.len();
            let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
            // Allow whitespace between the name and the open paren.
            let mut j = at + name.len();
            while j < b.len() && (b[j] == b' ' || b[j] == b'\t' || b[j] == b'\n') {
                j += 1;
            }
            if pre_ok && j < b.len() && b[j] == b'(' {
                return Some(at);
            }
        }
        None
    })
}

/// Split the argument list of the call whose `(` is at `open`, honoring
/// nested parens/brackets/braces. Returns `(args, close_offset)`; `None`
/// if the call is unterminated.
pub(crate) fn split_args(stripped: &str, open: usize) -> Option<(Vec<&str>, usize)> {
    let b = stripped.as_bytes();
    debug_assert_eq!(b[open], b'(');
    let mut depth = 0isize;
    let mut args = Vec::new();
    let mut arg_start = open + 1;
    let mut j = open;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    args.push(&stripped[arg_start..j]);
                    return Some((args, j));
                }
            }
            b',' if depth == 1 => {
                args.push(&stripped[arg_start..j]);
                arg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True if `arg` is a bare integer literal (decimal or hex, underscores,
/// optional `u32`/`usize`-style suffix) — the thing the tag rule bans.
pub(crate) fn is_int_literal(arg: &str) -> bool {
    let t = arg.trim();
    if t.is_empty() {
        return false;
    }
    let (body, hex) = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0X"))
        .map_or((t, false), |rest| (rest, true));
    if body.is_empty() {
        return false;
    }
    let mut seen_digit = false;
    for (pos, c) in body.char_indices() {
        let is_digit = if hex {
            c.is_ascii_hexdigit()
        } else {
            c.is_ascii_digit()
        };
        if is_digit {
            seen_digit = true;
        } else if c == '_' {
            continue;
        } else {
            // Allow an integer-type suffix (u32, i64, usize...).
            let suffix = &body[pos..];
            return seen_digit
                && matches!(
                    suffix,
                    "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64" | "isize"
                );
        }
    }
    seen_digit
}

/// Parse the numeric value of a literal the tag rule flagged (for the
/// reserved-range note); underscores and suffixes tolerated.
fn literal_value(arg: &str) -> Option<u64> {
    let t: String = arg.trim().chars().filter(|&c| c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let hex: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        u64::from_str_radix(&hex, 16).ok()
    } else {
        let dec: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        dec.parse().ok()
    }
}

/// Comm-API methods taking a tag, with the tag's 0-based argument index.
pub(crate) const TAG_METHODS: &[(&str, usize)] = &[
    ("isend", 1),
    ("irecv", 1),
    ("recv", 1),
    ("send", 1),
    ("exchange_sparse", 1),
    ("recv_any", 0),
];

fn lint_raw_tags(file: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    for &(name, tag_pos) in TAG_METHODS {
        for at in call_sites(stripped, name) {
            let open = at + stripped[at..].find('(').expect("call site has paren");
            let Some((args, _)) = split_args(stripped, open) else {
                continue;
            };
            let Some(arg) = args.get(tag_pos) else {
                continue;
            };
            if is_int_literal(arg) {
                let lit = arg.trim();
                let reserved_note = match literal_value(arg) {
                    Some(v) if v >= u64::from(hymv_comm::RESERVED_TAG_BASE) => format!(
                        " — worse, it lies in the reserved range (>= {:#x}) owned by the runtime",
                        hymv_comm::RESERVED_TAG_BASE
                    ),
                    _ => String::new(),
                };
                out.push(LintDiag {
                    file: file.to_string(),
                    line: line_of(stripped, at),
                    rule: "raw-tag-literal",
                    message: format!(
                        "`{name}` called with raw tag literal `{lit}`; use a named tag \
                         constant{reserved_note}"
                    ),
                });
            }
        }
    }
}

fn lint_recv_in_overlap(file: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    // Collect overlap windows: from each `scatter_begin(` to the next
    // `scatter_end(`.
    let begins: Vec<usize> = call_sites(stripped, "scatter_begin").collect();
    let ends: Vec<usize> = call_sites(stripped, "scatter_end").collect();
    for &b in &begins {
        let close = ends
            .iter()
            .copied()
            .find(|&e| e > b)
            .unwrap_or(stripped.len());
        for name in ["recv", "recv_any"] {
            for at in call_sites(stripped, name) {
                if at > b && at < close {
                    out.push(LintDiag {
                        file: file.to_string(),
                        line: line_of(stripped, at),
                        rule: "blocking-recv-in-overlap",
                        message: format!(
                            "blocking `{name}` inside the scatter overlap window (between \
                             `scatter_begin` at line {} and `scatter_end`): only computation \
                             may run while the scatter is in flight",
                            line_of(stripped, b)
                        ),
                    });
                }
            }
        }
    }
}

/// Lines a `// SAFETY:` comment may sit away from its
/// `#[allow(unsafe_code)]` attribute.
const SAFETY_RADIUS: usize = 3;

fn lint_unsafe_safety(file: &str, original: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    // Attribute detection on the stripped text (so the token inside a
    // string or comment doesn't count); SAFETY search on the original
    // (the SAFETY comment *is* a comment).
    let lines: Vec<&str> = original.lines().collect();
    for (idx, l) in stripped.lines().enumerate() {
        if !l.contains("#[allow(unsafe_code)]") {
            continue;
        }
        let lo = idx.saturating_sub(SAFETY_RADIUS);
        let hi = (idx + SAFETY_RADIUS + 1).min(lines.len());
        if !lines[lo..hi].iter().any(|n| n.contains("SAFETY")) {
            out.push(LintDiag {
                file: file.to_string(),
                line: idx + 1,
                rule: "unsafe-without-safety",
                message: format!(
                    "`#[allow(unsafe_code)]` without a `// SAFETY:` comment within \
                     {SAFETY_RADIUS} lines: state the invariant that makes the unsafe sound"
                ),
            });
        }
    }
}

/// Banned nondeterminism sources inside the numerical crates.
const KERNEL_BANNED: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock time"),
    ("SystemTime", "wall-clock time"),
    ("gettimeofday", "wall-clock time"),
    ("thread_rng", "ambient (OS-seeded) RNG"),
    ("rand::random", "ambient (OS-seeded) RNG"),
    ("from_entropy", "OS-entropy RNG seeding"),
];

fn lint_kernel_nondeterminism(file: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    for &(pat, what) in KERNEL_BANNED {
        let mut from = 0usize;
        while let Some(rel) = stripped[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            let b = stripped.as_bytes();
            let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
            let post = at + pat.len();
            let post_ok = post >= b.len() || !(b[post].is_ascii_alphanumeric() || b[post] == b'_');
            if pre_ok && post_ok {
                out.push(LintDiag {
                    file: file.to_string(),
                    line: line_of(stripped, at),
                    rule: "nondeterminism-in-kernel",
                    message: format!(
                        "`{pat}` ({what}) inside a kernel crate: results must be bitwise \
                         reproducible; time flows through the virtual-time ledger \
                         (`thread_cpu_time`) only"
                    ),
                });
            }
        }
    }
}

/// True when `file` (workspace-relative, `/`-separated) belongs to the
/// numerical kernel crates the nondeterminism rule guards.
fn is_kernel_file(file: &str) -> bool {
    let f = file.replace('\\', "/");
    f.starts_with("crates/la/src/") || f.starts_with("crates/core/src/")
}

/// Identifiers only the comm crate may touch: reading the thread clock or
/// the ledger directly from operator code corrupts the virtual-time
/// accounting every trace span is stamped with.
const LEDGER_BANNED: &[(&str, &str)] = &[
    ("thread_cpu_time", "direct thread-clock read"),
    ("Ledger", "direct ledger access"),
];

fn lint_ledger_access(file: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    let b = stripped.as_bytes();
    let mut hits: Vec<(usize, &str, &str)> = Vec::new();
    for &(pat, what) in LEDGER_BANNED {
        let mut from = 0usize;
        while let Some(rel) = stripped[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
            let post = at + pat.len();
            let post_ok = post >= b.len() || !(b[post].is_ascii_alphanumeric() || b[post] == b'_');
            if pre_ok && post_ok {
                hits.push((at, pat, what));
            }
        }
    }
    // The `Comm::ledger()` accessor is the same back door by another name.
    for at in call_sites(stripped, "ledger") {
        hits.push((at, "ledger()", "direct ledger access"));
    }
    for (at, pat, what) in hits {
        out.push(LintDiag {
            file: file.to_string(),
            line: line_of(stripped, at),
            rule: "ledger-access-in-kernel",
            message: format!(
                "`{pat}` ({what}) inside a kernel crate: the virtual-time ledger is owned \
                 by hymv-comm; charge time through `Comm::work`/`work_with`/`timed_work`/\
                 `traced` so spans and vt gauges stay consistent"
            ),
        });
    }
}

/// Ghost-exchange tags whose traffic must use the envelope channel.
const ENVELOPE_TAGS: &[&str] = &["TAG_SCATTER", "TAG_GATHER", "TAG_GHOSTS"];

/// The two modules that own the envelope framing for their tags and may
/// legitimately touch the raw transport (behind `raw_transport`).
const ENVELOPE_OWNERS: &[&str] = &["crates/core/src/exchange.rs", "crates/la/src/dist_csr.rs"];

/// True if the trimmed argument *is* the named constant (optionally
/// path-qualified), not merely a longer identifier containing it.
fn is_tag_const(arg: &str, name: &str) -> bool {
    let t = arg.trim();
    t == name || t.ends_with(&format!("::{name}"))
}

fn lint_envelope_bypass(file: &str, stripped: &str, out: &mut Vec<LintDiag>) {
    if ENVELOPE_OWNERS.contains(&file.replace('\\', "/").as_str()) {
        return;
    }
    for &(name, tag_pos) in TAG_METHODS {
        for at in call_sites(stripped, name) {
            let open = at + stripped[at..].find('(').expect("call site has paren");
            let Some((args, _)) = split_args(stripped, open) else {
                continue;
            };
            let Some(arg) = args.get(tag_pos) else {
                continue;
            };
            if let Some(tag) = ENVELOPE_TAGS.iter().find(|t| is_tag_const(arg, t)) {
                out.push(LintDiag {
                    file: file.to_string(),
                    line: line_of(stripped, at),
                    rule: "envelope-bypass",
                    message: format!(
                        "raw `{name}` on `{tag}`: ghost-exchange traffic must use the \
                         sequence-numbered/checksummed envelope channel \
                         (`send_enveloped`/`recv_enveloped`) so injected loss, duplication, \
                         and corruption are recovered (DESIGN.md §10)"
                    ),
                });
            }
        }
    }
}

/// Lint one source file's text. `file` is the workspace-relative label
/// used in diagnostics (and for the kernel-crate scoping).
///
/// Content rules run on comment/string-stripped text truncated at the
/// first `#[cfg(test)]` line (test modules are file-final in this
/// workspace and legitimately use literal tags and RNGs); the SAFETY rule
/// runs on the full original text.
pub fn lint_source(file: &str, text: &str) -> Vec<LintDiag> {
    let mut out = Vec::new();
    let stripped_full = strip_comments_and_strings(text);
    let code = match stripped_full.find("#[cfg(test)]") {
        Some(at) => &stripped_full[..at],
        None => &stripped_full[..],
    };
    lint_raw_tags(file, code, &mut out);
    lint_recv_in_overlap(file, code, &mut out);
    lint_envelope_bypass(file, code, &mut out);
    if is_kernel_file(file) {
        lint_kernel_nondeterminism(file, code, &mut out);
        lint_ledger_access(file, code, &mut out);
    }
    lint_unsafe_safety(file, text, &stripped_full, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn walk_rs(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Integration tests and benches use literal tags and ambient
            // randomness legitimately; target/vendor are not ours.
            if matches!(&*name, "target" | "vendor" | "tests" | "benches" | ".git") {
                continue;
            }
            walk_rs(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// Lint every non-test source file of the workspace rooted at `root`
/// (must contain `Cargo.toml`): `src/` and `crates/*/src/`, skipping
/// `vendor/`, `target/`, `tests/`, and `benches/`.
pub fn lint_workspace(root: &Path) -> Result<Vec<LintDiag>, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} is not a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    walk_rs(&root.join("src"), &mut files);
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut entries: Vec<_> = entries.flatten().collect();
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for entry in entries {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files);
            }
        }
    }
    let mut out = Vec::new();
    for path in files {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_source(&label, &text));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_preserving_lines() {
        let src = "let a = 1; // recv(0, 7)\nlet s = \"isend(1, 7, x)\";\n/* recv_any(3) */ let c = 'x';\nlet l: &'static str = s;\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("recv"));
        assert!(!out.contains("isend"));
        assert!(out.contains("'static"), "{out}");
        assert!(!out.contains("'x'"));
    }

    #[test]
    fn stripper_handles_nested_and_raw() {
        let src = "/* outer /* inner recv(0,1) */ still */ let r = r#\"recv_any(2)\"#;";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("recv"), "{out}");
    }

    #[test]
    fn raw_tag_literal_flagged_with_line() {
        let src = "fn f(comm: &mut Comm) {\n    comm.isend(next, 7, payload);\n}\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "raw-tag-literal");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains('7'), "{}", v[0].message);
    }

    #[test]
    fn named_tags_and_lookalike_methods_pass() {
        let src = "comm.isend(next, TAG_TRIPLES, payload);\n\
                   comm.isend_internal(next, 7, x);\n\
                   let recv_plan = plans.recv_plan(0);\n\
                   comm.recv(src, tag);\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn recv_any_literal_is_arg_zero() {
        let src = "let m = comm.recv_any(3);\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("recv_any"));
    }

    #[test]
    fn reserved_range_literal_gets_extra_note() {
        let src = "comm.isend(1, 0xF000_0001, x);\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("reserved range"), "{}", v[0].message);
    }

    #[test]
    fn blocking_recv_in_overlap_flagged() {
        let src = "ex.scatter_begin(comm, &u);\nlet m = comm.recv(peer, TAG_X);\nex.scatter_end(comm, &mut u);\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "blocking-recv-in-overlap");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn irecv_in_overlap_passes() {
        let src = "ex.scatter_begin(comm, &u);\nlet h = comm.irecv(peer, TAG_X);\nex.scatter_end(comm, &mut u);\nlet m = comm.recv(peer, TAG_X);\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let src = "fn f() {\n    #[allow(unsafe_code)]\n    unsafe { do_it() }\n}\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-without-safety");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_nearby_safety_passes() {
        let src =
            "// SAFETY: the contract holds because X.\n#[allow(unsafe_code)]\nunsafe { do_it() }\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn kernel_nondeterminism_scoped_to_kernel_crates() {
        let src = "let t = Instant::now();\nlet r = thread_rng();\n";
        let v = lint_source("crates/core/src/foo.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|d| d.rule == "nondeterminism-in-kernel"));
        // The same text outside a kernel crate is fine (e.g. bench code).
        assert!(lint_source("crates/bench/src/foo.rs", src).is_empty());
    }

    #[test]
    fn ledger_access_scoped_to_kernel_crates() {
        let src = "let t0 = hymv_comm::thread_cpu_time();\n\
                   let l: &Ledger = comm.ledger();\n";
        let v = lint_source("crates/la/src/foo.rs", src);
        assert_eq!(v.len(), 3, "{v:?}"); // thread_cpu_time + Ledger + ledger()
        assert!(v.iter().all(|d| d.rule == "ledger-access-in-kernel"));
        assert_eq!(v[0].line, 1);
        // Sanctioned timing APIs and lookalike identifiers pass.
        let ok = "let (out, dt) = comm.timed_work(|c| pack(c));\n\
                  let stats = comm.stats();\nlet my_ledger = 1;\n";
        assert!(lint_source("crates/core/src/foo.rs", ok).is_empty());
        // Outside the kernel crates (e.g. the comm crate itself, bench
        // harnesses) the ledger is fair game.
        assert!(lint_source("crates/bench/src/foo.rs", src).is_empty());
    }

    #[test]
    fn envelope_bypass_flagged_outside_owners() {
        let src = "comm.isend(next, TAG_SCATTER, payload);\n\
                   let v = comm.recv(peer, TAG_GHOSTS);\n\
                   comm.isend(next, exchange::TAG_GATHER, payload);\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|d| d.rule == "envelope-bypass"));
        assert_eq!(v[0].line, 1);
        assert!(v[1].message.contains("TAG_GHOSTS"), "{}", v[1].message);
    }

    #[test]
    fn envelope_owners_and_enveloped_calls_pass() {
        let src = "comm.isend(next, TAG_SCATTER, payload);\n";
        assert!(lint_source("crates/core/src/exchange.rs", src).is_empty());
        assert!(lint_source("crates/la/src/dist_csr.rs", src).is_empty());
        let ok = "comm.send_enveloped(next, TAG_SCATTER, &vals);\n\
                  let v = comm.recv_enveloped(peer, TAG_GATHER);\n\
                  comm.isend(next, TAG_SCATTERED, payload);\n";
        assert!(lint_source("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_content_rules() {
        let src = "comm.recv(src, tag);\n#[cfg(test)]\nmod tests {\n    fn t(comm: &mut Comm) { comm.isend(1, 7, x); }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }
}

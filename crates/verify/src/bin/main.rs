//! `hymv-verify` — static analysis over HYMV exchange plans, block
//! colorings, and workspace source.
//!
//! ```text
//! hymv-verify [--n N] [--p P1,P2,...] [--elem hex8|hex20|hex27|tet4|tet10]
//!             [--method slabs|rcb|greedy] [--batch B] [--ndof D]
//!             [--explicit-max P] [--root PATH] [--skip-lint]
//! ```
//!
//! Builds an `N³`-element mesh, and for each rank count `P` runs the
//! static passes over that configuration's exchange plans:
//!
//! * **p ≤ --explicit-max** (default 16): each rank builds its real
//!   `GhostExchange` (the only step that touches the comm substrate), and
//!   the plan is checked **twice** — by the explicit-state model checker
//!   (BFS + partial-order reduction) and by the parameterized engine
//!   (neighborhood decomposition + symmetry classes + wait-for-graph
//!   acyclicity, DESIGN.md §14). The two verdicts must agree bit-for-bit,
//!   and the statically *derived* plans must equal the built ones — the
//!   small-p regime is the oracle that validates the large-p engine.
//! * **p > --explicit-max**: no comm substrate runs at all. Plans are
//!   derived statically from the partition (the same owner/run
//!   construction `GhostExchange::build` performs) and the parameterized
//!   engine proves deadlock-freedom, matching, reserved tags, overlap
//!   order, and ghost-split soundness in O(neighborhood classes), which
//!   is what makes `--p 1024` a seconds-scale proof.
//!
//! An `inconclusive` explicit-search outcome (state cap) is a **hard
//! failure**: a proof obligation never silently degrades into a sample.
//! Block-coloring alias proofs run per rank at every `P`, and the
//! workspace lint runs once (skip with `--skip-lint`).
//!
//! The `effects` subcommand runs the interprocedural pipeline instead:
//!
//! ```text
//! hymv-verify effects [--root PATH]
//! ```
//!
//! 1. the line-local lint as a fast pre-pass, then
//! 2. the workspace call graph + fixed-point effect inference + phase
//!    rules (blocking receives/allocations/ghost reads reachable inside
//!    the scatter overlap window, ledger/wall-clock/RNG reachable from
//!    kernel entries, tag-literal flow through tag-generic parameters),
//! 3. the bounds interpreter over the `// verify: prove-bounds` SIMD
//!    kernels of `crates/la/src/dense.rs`,
//! 4. the slab-contract cross-check: real `BlockPlan` slabs (bw 4 and 8)
//!    must satisfy exactly the preconditions the kernel proofs assume, and
//! 5. the collective-order pass: no rank-divergent collective call chains
//!    anywhere in the workspace, with the inferred collective sequence of
//!    every `// verify: collective-entry` phase printed for review.
//!
//! `hymv-verify collectives [--root PATH]` runs pass 5 alone.
//!
//! Exits 0 if every pass is clean, 1 on violations, 2 on bad usage.

use std::path::PathBuf;
use std::process::ExitCode;

use hymv_comm::Universe;
use hymv_core::{GhostExchange, HymvMaps};
use hymv_mesh::partition::partition_mesh;
use hymv_mesh::{unstructured_tet_mesh, ElementType, PartitionMethod, StructuredHexMesh};
use hymv_verify::{
    analyze_collectives, analyze_workspace_effects, certify_file, check_mv_slab_contract,
    check_slab_contract, derive_plan_summaries, lint_workspace, prove_plan, verify_exchange,
    verify_exchange_parameterized, CallGraph, CollectivesReport, PlanSummary, Verdict,
};

struct Options {
    n: usize,
    ps: Vec<usize>,
    elem: ElementType,
    method: PartitionMethod,
    batch: usize,
    ndof: usize,
    explicit_max: usize,
    root: PathBuf,
    skip_lint: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hymv-verify [--n N] [--p P1,P2,...] [--elem hex8|hex20|hex27|tet4|tet10]\n\
         \x20                  [--method slabs|rcb|greedy] [--batch B] [--ndof D]\n\
         \x20                  [--explicit-max P] [--root PATH] [--skip-lint]\n\
         \x20      hymv-verify effects [--root PATH]\n\
         \x20      hymv-verify collectives [--root PATH]"
    );
    ExitCode::from(2)
}

/// Print one collective-order result; returns true if it failed.
fn report_collectives(r: &CollectivesReport) -> bool {
    if r.report.is_clean() {
        println!(
            "ok ({} fn(s) scanned, {} reach a collective, {} rank-dependent region(s))",
            r.fns_scanned, r.reaching_fns, r.rank_regions
        );
    } else {
        println!("FAILED ({} finding(s))", r.diags.len());
        for d in &r.diags {
            println!("  {}", d.message);
        }
    }
    for e in &r.entries {
        println!("  {} ({}:{}): {}", e.qual, e.file, e.line, e.sequence);
    }
    !r.report.is_clean()
}

/// The `collectives` subcommand: call graph + collective-order pass only.
fn run_collectives(root: &std::path::Path) -> ExitCode {
    print!("[1/1] collective-order pass .................. ");
    match CallGraph::load_workspace(root) {
        Ok(graph) => {
            let r = analyze_collectives(&graph);
            let failed = report_collectives(&r);
            for note in &graph.notes {
                println!("  note: {note}");
            }
            if failed {
                eprintln!("hymv-verify collectives: violations found");
                ExitCode::FAILURE
            } else {
                println!("hymv-verify collectives: clean");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            println!("FAILED\n  {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `effects` subcommand: lint pre-pass, interprocedural effect
/// inference + phase rules, kernel bounds proofs, slab contract, and the
/// collective-order pass.
fn run_effects(root: &std::path::Path) -> ExitCode {
    let mut failed = false;

    print!("[1/5] lint pre-pass .......................... ");
    match lint_workspace(root) {
        Ok(diags) if diags.is_empty() => println!("ok"),
        Ok(diags) => {
            failed = true;
            println!("FAILED ({} finding(s))", diags.len());
            for d in diags {
                println!("  {d}");
            }
        }
        Err(e) => {
            failed = true;
            println!("FAILED\n  {e}");
        }
    }

    print!("[2/5] interprocedural phase effects .......... ");
    let mut loaded_graph = None;
    match analyze_workspace_effects(root) {
        Ok((report, graph)) => {
            if report.diags.is_empty() {
                println!(
                    "ok ({} fn(s), {} call(s), {} file(s); {} unknown, {} indirect)",
                    report.stats.fns,
                    report.stats.calls,
                    report.stats.files,
                    report.stats.unknown,
                    report.stats.dynamic
                );
            } else {
                failed = true;
                println!("FAILED ({} finding(s))", report.diags.len());
                for d in &report.diags {
                    println!("  {d}");
                }
            }
            for note in &graph.notes {
                println!("  note: {note}");
            }
            loaded_graph = Some(graph);
        }
        Err(e) => {
            failed = true;
            println!("FAILED\n  {e}");
        }
    }

    print!("[3/5] kernel bounds proofs ................... ");
    let dense = root.join("crates/la/src/dense.rs");
    match certify_file(&dense) {
        Ok((certs, diags)) if diags.is_empty() && !certs.is_empty() => {
            println!("ok ({} kernel(s) certified)", certs.len());
            for c in &certs {
                println!(
                    "  {} — {} access(es) over {} loop(s) proved in bounds",
                    c.kernel, c.accesses, c.loops
                );
            }
        }
        Ok((_, diags)) if !diags.is_empty() => {
            failed = true;
            println!("FAILED ({} finding(s))", diags.len());
            for d in diags {
                println!("  {d}");
            }
        }
        Ok(_) => {
            failed = true;
            println!("FAILED (no `// verify: prove-bounds` kernels found)");
        }
        Err(e) => {
            failed = true;
            println!("FAILED\n  {e}");
        }
    }

    print!("[4/5] slab contract cross-check .............. ");
    let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let maps = HymvMaps::build(&pm.parts[0]);
    let mut slabs = 0usize;
    let mut slab_errs = Vec::new();
    for bw in [4usize, 8] {
        let mut plan = hymv_core::BlockPlan::build(&maps, 1, bw);
        let store = hymv_la::ElementMatrixStore::new(plan.nd(), maps.n_elems);
        plan.attach_store(&store);
        let nd = plan.nd();
        for dependent in [false, true] {
            let set = plan.set(dependent);
            let panel = set.panel_len();
            for k in 0..set.n_blocks() {
                slabs += 1;
                if let Err(e) =
                    check_slab_contract(nd, plan.batch_width(), set.keb(k).len(), panel, panel)
                {
                    slab_errs.push(format!("bw={bw} dependent={dependent} block={k}: {e}"));
                }
                // Multivector widening of the same slab: keb unchanged,
                // panels strided to nd·bw·nvec.
                for nvec in [4usize, 8] {
                    slabs += 1;
                    if let Err(e) = check_mv_slab_contract(
                        nd,
                        plan.batch_width(),
                        nvec,
                        set.keb(k).len(),
                        panel * nvec,
                        panel * nvec,
                    ) {
                        slab_errs.push(format!(
                            "bw={bw} nvec={nvec} dependent={dependent} block={k}: {e}"
                        ));
                    }
                }
            }
        }
    }
    if slab_errs.is_empty() {
        println!("ok ({slabs} slab(s) match the proved preconditions)");
    } else {
        failed = true;
        println!("FAILED ({} slab(s))", slab_errs.len());
        for e in slab_errs {
            println!("  {e}");
        }
    }

    print!("[5/5] collective-order pass .................. ");
    match loaded_graph {
        Some(graph) => {
            if report_collectives(&analyze_collectives(&graph)) {
                failed = true;
            }
        }
        None => {
            failed = true;
            println!("skipped (call graph unavailable)");
        }
    }

    if failed {
        eprintln!("hymv-verify effects: violations found");
        ExitCode::FAILURE
    } else {
        println!("hymv-verify effects: all passes clean");
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        n: 4,
        ps: vec![1, 2, 4, 8],
        elem: ElementType::Hex8,
        method: PartitionMethod::Slabs,
        batch: hymv_core::DEFAULT_BATCH_WIDTH,
        ndof: 1,
        explicit_max: 16,
        root: PathBuf::from("."),
        skip_lint: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => opts.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--p" => {
                opts.ps = val()?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--p: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--elem" => {
                opts.elem = match val()?.as_str() {
                    "hex8" => ElementType::Hex8,
                    "hex20" => ElementType::Hex20,
                    "hex27" => ElementType::Hex27,
                    "tet4" => ElementType::Tet4,
                    "tet10" => ElementType::Tet10,
                    other => return Err(format!("unknown element type {other}")),
                }
            }
            "--method" => {
                opts.method = match val()?.as_str() {
                    "slabs" => PartitionMethod::Slabs,
                    "rcb" => PartitionMethod::Rcb,
                    "greedy" => PartitionMethod::GreedyGraph,
                    other => return Err(format!("unknown partition method {other}")),
                }
            }
            "--batch" => {
                // Shared strict validation (same path as HYMV_EMV_BATCH).
                opts.batch =
                    hymv_core::parse_batch_width(&val()?).map_err(|e| format!("--batch: {e}"))?
            }
            "--ndof" => opts.ndof = val()?.parse().map_err(|e| format!("--ndof: {e}"))?,
            "--explicit-max" => {
                opts.explicit_max = val()?.parse().map_err(|e| format!("--explicit-max: {e}"))?
            }
            "--root" => opts.root = PathBuf::from(val()?),
            "--skip-lint" => opts.skip_lint = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.n == 0 || opts.ndof == 0 {
        return Err("--n and --ndof must be positive".into());
    }
    if opts.ps.is_empty() || opts.ps.contains(&0) {
        return Err("--p needs a comma list of positive rank counts".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    if let Some(sub @ ("effects" | "collectives")) = std::env::args().nth(1).as_deref() {
        {
            let mut root = PathBuf::from(".");
            let mut args = std::env::args().skip(2);
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--root" => match args.next() {
                        Some(v) => root = PathBuf::from(v),
                        None => {
                            eprintln!("hymv-verify: --root needs a value");
                            return usage();
                        }
                    },
                    other => {
                        eprintln!("hymv-verify: unknown flag {other}");
                        return usage();
                    }
                }
            }
            return if sub == "effects" {
                run_effects(&root)
            } else {
                run_collectives(&root)
            };
        }
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hymv-verify: {e}");
            return usage();
        }
    };

    println!(
        "hymv-verify: {}^3 {:?} mesh ({:?}), np in {:?}, batch={}, ndof={}, explicit-max={}",
        opts.n, opts.elem, opts.method, opts.ps, opts.batch, opts.ndof, opts.explicit_max
    );
    let mesh = match opts.elem {
        ElementType::Tet4 | ElementType::Tet10 => unstructured_tet_mesh(opts.n, opts.elem, 0.0, 1),
        _ => StructuredHexMesh::unit(opts.n, opts.elem).build(),
    };
    let n_elems = mesh.n_elems();
    let mut failed = false;

    for &p in &opts.ps {
        if p > n_elems {
            eprintln!("hymv-verify: --p {p} exceeds the {n_elems}-element mesh; raise --n");
            return usage();
        }
        let pm = partition_mesh(&mesh, p, opts.method);

        if p <= opts.explicit_max {
            // Small-p oracle regime: build the real exchanges, check with
            // both engines, and demand bitwise verdict agreement plus
            // derived == built plan equality.
            let per_rank: Vec<(HymvMaps, PlanSummary)> = Universe::run(p, |comm| {
                let maps = HymvMaps::build(&pm.parts[comm.rank()]);
                let ex = GhostExchange::build(comm, &maps);
                let summary = PlanSummary::from_exchange(&ex);
                (maps, summary)
            });
            let (maps, plans): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();

            print!("np={p}: explicit exchange-plan model check ... ");
            let result = verify_exchange(&plans, &maps);
            if result.verdict == Verdict::Inconclusive {
                failed = true;
                println!(
                    "INCONCLUSIVE — state cap hit; a proof obligation never degrades into a \
                     sample, so this is a hard failure\n{}",
                    result.report
                );
            } else if result.report.is_clean() {
                println!(
                    "ok (deadlock-free, {} state(s) explored)",
                    result.states_explored
                );
            } else {
                failed = true;
                println!("FAILED\n{}", result.report);
            }

            print!("np={p}: parameterized engine cross-check ..... ");
            let param = verify_exchange_parameterized(&plans, &maps);
            let derived = derive_plan_summaries(&maps);
            if param.verdict != result.verdict {
                failed = true;
                println!(
                    "FAILED — verdict disagreement: explicit={}, parameterized={}\n{}",
                    result.verdict, param.verdict, param.report
                );
            } else if derived != plans {
                failed = true;
                println!(
                    "FAILED — statically derived plans differ from the built GhostExchange plans"
                );
                for (r, (d, b)) in derived.iter().zip(&plans).enumerate() {
                    if d != b {
                        println!("  rank {r}: derived {d:?}\n          built   {b:?}");
                    }
                }
            } else if param.report.is_clean() == result.report.is_clean() {
                println!(
                    "ok (verdicts agree: {}; derived plans == built plans; {} class(es))",
                    param.verdict,
                    param.classes.len()
                );
            } else {
                failed = true;
                println!(
                    "FAILED — report cleanliness disagreement\nexplicit:\n{}\nparameterized:\n{}",
                    result.report, param.report
                );
            }
            run_alias(&maps, &opts, &mut failed, p);
        } else {
            // Large-p regime: fully static. No Universe, no comm — plans
            // are derived from the partition and proved parameterized.
            let maps: Vec<HymvMaps> = pm.parts.iter().map(HymvMaps::build).collect();
            let plans = derive_plan_summaries(&maps);

            print!("np={p}: parameterized exchange proof ......... ");
            let param = verify_exchange_parameterized(&plans, &maps);
            match param.verdict {
                Verdict::Proved if param.report.is_clean() => {
                    println!(
                        "ok (proved for all {p} rank(s): {} neighborhood class(es), {} wait-for \
                         edge(s) acyclic)",
                        param.classes.len(),
                        param.wfg_edges
                    );
                }
                _ => {
                    failed = true;
                    println!("FAILED ({})\n{}", param.verdict, param.report);
                }
            }
            run_alias(&maps, &opts, &mut failed, p);
        }
    }

    print!("workspace lint ............................... ");
    if opts.skip_lint {
        println!("skipped (--skip-lint)");
    } else {
        match lint_workspace(&opts.root) {
            Ok(diags) if diags.is_empty() => println!("ok"),
            Ok(diags) => {
                failed = true;
                println!("FAILED ({} finding(s))", diags.len());
                for d in diags {
                    println!("  {d}");
                }
            }
            Err(e) => {
                failed = true;
                println!("FAILED\n  {e}");
            }
        }
    }

    if failed {
        eprintln!("hymv-verify: violations found");
        ExitCode::FAILURE
    } else {
        println!("hymv-verify: all passes clean");
        ExitCode::SUCCESS
    }
}

/// Per-rank block-coloring alias proofs (runs at every `p`).
fn run_alias(maps: &[HymvMaps], opts: &Options, failed: &mut bool, p: usize) {
    print!("np={p}: block-coloring alias proof ........... ");
    let mut dirty = Vec::new();
    for (rank, m) in maps.iter().enumerate() {
        let plan = hymv_core::BlockPlan::build(m, opts.ndof, opts.batch);
        let report = prove_plan(m, &plan, opts.ndof);
        if !report.is_clean() {
            dirty.push((rank, report));
        }
    }
    if dirty.is_empty() {
        println!("ok ({} rank plan(s) alias-free)", maps.len());
    } else {
        *failed = true;
        println!("FAILED");
        for (rank, report) in dirty {
            println!("rank {rank}: {report}");
        }
    }
}

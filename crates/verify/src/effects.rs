//! The interprocedural phase-effect analysis (`hymv-verify effects`).
//!
//! Over the [`crate::callgraph`] of `crates/{comm,core,la,gpu,fem,trace}`,
//! a fixed-point pass infers per-function **effect summaries** — which
//! communication/runtime effects are reachable from each function — and
//! the Algorithm-2 phase rules are then checked against those summaries
//! instead of against raw text. That closes the false negative the
//! line-local lint cannot: a blocking receive hidden N calls deep inside
//! a `scatter_begin`..`scatter_end` overlap window is still found.
//!
//! ## The lattice
//!
//! An [`EffectSet`] is a bitset over the atomic effects (plus a tag set
//! with ⊤ for `SendsTag`); join is union; ⊥ is the empty set; ⊤ is all
//! bits with `tag_top`. Summaries only grow during solving, so the
//! worklist iteration terminates at the least fixed point.
//!
//! | effect          | seeded by                                         |
//! |-----------------|---------------------------------------------------|
//! | `BlockingRecv`  | `recv`, `recv_any`, `recv_enveloped`              |
//! | `Waits`         | the above + `wait`, `barrier`, collectives        |
//! | `SendsTag(t)`   | `isend`, `send`, `send_enveloped`, ...            |
//! | `GhostRead/Write` | `// verify: effect(ghost-read/-write)` markers  |
//! | `LedgerAccess`  | `thread_cpu_time`, `ledger()`, `reset_ledger`     |
//! | `WallClock`     | `Instant::now`, `SystemTime::now`, `gettimeofday` |
//! | `AmbientRng`    | `thread_rng`, `from_entropy`, `rand::random`      |
//! | `Allocates`     | `vec!`/`format!`, `with_capacity`, `collect`, ... |
//! | `Unsafe`        | `unsafe fn` items and `unsafe` blocks             |
//!
//! Indirect calls (`(f)(..)`) are ⊤. Calls that resolve to no workspace
//! function and no seed are ⊥ (external code assumed effect-free — the
//! central soundness caveat; see DESIGN.md §12). `// verify: pure` pins a
//! summary to ⊥ (trusted anchor); `// verify: allow(e)` waives effect `e`
//! from one function's summary with a local justification.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use crate::callgraph::{CallGraph, CallSite, Marker, Resolution};
use crate::lint::{is_int_literal, LintDiag};

/// The atomic effects, as bits. `effect::parse` maps marker spellings
/// (`ghost-read`, `allocates`, ...) to bits.
pub mod effect {
    pub const BLOCKING_RECV: u16 = 1 << 0;
    pub const WAITS: u16 = 1 << 1;
    pub const SENDS: u16 = 1 << 2;
    pub const GHOST_READ: u16 = 1 << 3;
    pub const GHOST_WRITE: u16 = 1 << 4;
    pub const LEDGER: u16 = 1 << 5;
    pub const WALL_CLOCK: u16 = 1 << 6;
    pub const AMBIENT_RNG: u16 = 1 << 7;
    pub const ALLOCATES: u16 = 1 << 8;
    pub const UNSAFE: u16 = 1 << 9;
    /// Participates in a collective operation (barrier, allreduce,
    /// allgather, sparse exchange, ...). The ordering event is the *post*,
    /// so non-blocking collective posts carry this without `WAITS`; the
    /// collective-order pass keys its rank-divergence rule off this bit.
    pub const COLLECTIVE: u16 = 1 << 10;
    /// Every atomic effect (⊤ without the tag component).
    pub const ALL: u16 = (1 << 11) - 1;

    /// All bits, in display order.
    pub const BITS: &[u16] = &[
        BLOCKING_RECV,
        WAITS,
        SENDS,
        GHOST_READ,
        GHOST_WRITE,
        LEDGER,
        WALL_CLOCK,
        AMBIENT_RNG,
        ALLOCATES,
        UNSAFE,
        COLLECTIVE,
    ];

    /// Canonical name of one bit (also the marker spelling).
    pub fn name(bit: u16) -> &'static str {
        match bit {
            BLOCKING_RECV => "blocking-recv",
            WAITS => "waits",
            SENDS => "sends",
            GHOST_READ => "ghost-read",
            GHOST_WRITE => "ghost-write",
            LEDGER => "ledger",
            WALL_CLOCK => "wall-clock",
            AMBIENT_RNG => "ambient-rng",
            ALLOCATES => "allocates",
            UNSAFE => "unsafe",
            COLLECTIVE => "collective",
            _ => "?",
        }
    }

    /// Parse a marker effect name.
    pub fn parse(name: &str) -> Option<u16> {
        BITS.iter().copied().find(|&b| self::name(b) == name)
    }
}

/// A point in the effect lattice: a bitset plus the `SendsTag` tag set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSet {
    pub bits: u16,
    /// Named tag constants known to flow into send/recv tag positions.
    pub tags: BTreeSet<String>,
    /// ⊤ for the tag component: some tag is sent but its constant is not
    /// statically known.
    pub tag_top: bool,
}

impl EffectSet {
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn from_bits(bits: u16) -> Self {
        EffectSet {
            bits,
            ..Self::default()
        }
    }

    /// ⊤: every effect, unknown tags.
    pub fn top() -> Self {
        EffectSet {
            bits: effect::ALL,
            tags: BTreeSet::new(),
            tag_top: true,
        }
    }

    pub fn contains(&self, bit: u16) -> bool {
        self.bits & bit != 0
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0 && self.tags.is_empty() && !self.tag_top
    }

    /// Lattice join; true if `self` changed.
    pub fn join(&mut self, other: &EffectSet) -> bool {
        let mut changed = false;
        if other.bits & !self.bits != 0 {
            self.bits |= other.bits;
            changed = true;
        }
        for t in &other.tags {
            changed |= self.tags.insert(t.clone());
        }
        if other.tag_top && !self.tag_top {
            self.tag_top = true;
            changed = true;
        }
        changed
    }

    /// Remove waived bits (the `allow(...)` marker).
    fn clear(&mut self, bits: u16) {
        self.bits &= !bits;
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "pure");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, "|")?;
            }
            first = false;
            Ok(())
        };
        for &bit in effect::BITS {
            if self.contains(bit) {
                if bit == effect::SENDS && (!self.tags.is_empty() || self.tag_top) {
                    sep(f)?;
                    let tags: Vec<&str> = self.tags.iter().map(String::as_str).collect();
                    if self.tag_top {
                        write!(f, "sends(⊤)")?;
                    } else {
                        write!(f, "sends({})", tags.join(","))?;
                    }
                } else {
                    sep(f)?;
                    write!(f, "{}", effect::name(bit))?;
                }
            }
        }
        Ok(())
    }
}

/// How a summary acquired an effect bit (for witness-path diagnostics).
#[derive(Debug, Clone)]
enum Why {
    /// A call in this fn's own body seeded it.
    Direct { call: String, line: usize },
    /// Inherited from a callee.
    Via { callee: usize },
}

/// Analysis result over one call graph.
#[derive(Debug)]
pub struct EffectsReport {
    /// Rule violations, in (file, line) order.
    pub diags: Vec<LintDiag>,
    /// Per-fn effect summaries, indexed like [`CallGraph::fns`].
    pub summaries: Vec<EffectSet>,
    pub stats: EffectsStats,
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EffectsStats {
    pub fns: usize,
    pub calls: usize,
    /// Calls resolving to no workspace fn and no seed (assumed pure).
    pub unknown: usize,
    /// Indirect calls (⊤).
    pub dynamic: usize,
    pub files: usize,
}

/// Run the full analysis over a workspace root.
pub fn analyze_workspace_effects(root: &Path) -> Result<(EffectsReport, CallGraph), String> {
    let graph = CallGraph::load_workspace(root)?;
    let report = analyze_effects(&graph);
    Ok((report, graph))
}

/// Infer summaries and check the phase rules over a prebuilt graph.
pub fn analyze_effects(graph: &CallGraph) -> EffectsReport {
    let n = graph.fns.len();

    // ---- resolve every call once -------------------------------------
    let mut resolved: Vec<Vec<Resolution>> = Vec::with_capacity(n);
    let mut stats = EffectsStats {
        fns: n,
        files: graph.files.len(),
        ..EffectsStats::default()
    };
    for f in &graph.fns {
        let mut rs = Vec::with_capacity(f.calls.len());
        for c in &f.calls {
            stats.calls += 1;
            let r = graph.resolve(c);
            match &r {
                Resolution::Dynamic => stats.dynamic += 1,
                Resolution::Unknown if intrinsic_bits(c) == 0 => stats.unknown += 1,
                _ => {}
            }
            rs.push(r);
        }
        resolved.push(rs);
    }

    // ---- marker interpretation ---------------------------------------
    let mut pure = vec![false; n];
    let mut waived = vec![0u16; n];
    let mut kernel_entry = vec![false; n];
    for (i, f) in graph.fns.iter().enumerate() {
        for m in &f.markers {
            match m {
                Marker::Pure => pure[i] = true,
                Marker::KernelEntry => kernel_entry[i] = true,
                Marker::Allow(name) => waived[i] |= effect::parse(name).unwrap_or(0),
                _ => {}
            }
        }
    }

    // ---- direct effects ----------------------------------------------
    let mut direct: Vec<EffectSet> = Vec::with_capacity(n);
    let mut why: Vec<Vec<Option<Why>>> = vec![vec![None; effect::BITS.len()]; n];
    for (i, f) in graph.fns.iter().enumerate() {
        let mut e = EffectSet::empty();
        let set = |e: &mut EffectSet, bits: u16, w: Why, why_i: &mut Vec<Option<Why>>| {
            for (k, &bit) in effect::BITS.iter().enumerate() {
                if bits & bit != 0 && !e.contains(bit) {
                    why_i[k] = Some(w.clone());
                }
            }
            e.bits |= bits;
        };
        if f.is_unsafe || body_has_unsafe(graph, f) {
            set(
                &mut e,
                effect::UNSAFE,
                Why::Direct {
                    call: "unsafe".into(),
                    line: f.line,
                },
                &mut why[i],
            );
        }
        for m in &f.markers {
            if let Marker::Effect(name) = m {
                if let Some(bit) = effect::parse(name) {
                    set(
                        &mut e,
                        bit,
                        Why::Direct {
                            call: format!("// verify: effect({name})"),
                            line: f.line,
                        },
                        &mut why[i],
                    );
                }
            }
        }
        for c in &f.calls {
            if c.dynamic {
                set(
                    &mut e,
                    effect::ALL,
                    Why::Direct {
                        call: "<indirect call>".into(),
                        line: c.line,
                    },
                    &mut why[i],
                );
                e.tag_top = true;
                continue;
            }
            let bits = intrinsic_bits(c);
            if bits != 0 {
                set(
                    &mut e,
                    bits,
                    Why::Direct {
                        call: c.name.clone(),
                        line: c.line,
                    },
                    &mut why[i],
                );
            }
            // Tag-constant flow at send seeds: record named constants,
            // mark ⊤ for computed tags (literals are the lint's job at
            // seeds, and `tag-literal-flow`'s at workspace calls).
            if bits & effect::SENDS != 0 {
                if let Some(pos) = intrinsic_tag_pos(&c.name) {
                    match c.args.get(pos).map(String::as_str) {
                        Some(a) if is_const_path(a) => {
                            e.tags.insert(last_segment(a).to_string());
                        }
                        Some(a) if is_int_literal(a) => {}
                        Some(a) if is_plain_ident(a) => {} // a tag parameter: flows
                        _ => e.tag_top = true,
                    }
                }
            }
        }
        direct.push(e);
    }

    // ---- fixed point over the call graph -----------------------------
    let mut summaries = direct.clone();
    for i in 0..n {
        if pure[i] {
            summaries[i] = EffectSet::empty();
        }
    }
    // Reverse edges: callee -> callers (over resolved candidates).
    let mut callers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, rs) in resolved.iter().enumerate() {
        for r in rs {
            if let Resolution::Candidates(ids) = r {
                for &c in ids {
                    callers[c].insert(i);
                }
            }
        }
    }
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(i) = work.pop() {
        if pure[i] {
            continue;
        }
        let mut acc = direct[i].clone();
        for r in &resolved[i] {
            if let Resolution::Candidates(ids) = r {
                for &id in ids {
                    let gained = summaries[id].bits & !acc.bits;
                    if gained != 0 {
                        for (k, &bit) in effect::BITS.iter().enumerate() {
                            if gained & bit != 0 {
                                why[i][k] = Some(Why::Via { callee: id });
                            }
                        }
                    }
                    let callee = summaries[id].clone();
                    acc.join(&callee);
                }
            }
        }
        acc.clear(waived[i]);
        if acc != summaries[i] {
            summaries[i] = acc;
            for &caller in &callers[i] {
                if !work.contains(&caller) {
                    work.push(caller);
                }
            }
        }
    }

    // ---- tag-parameter fixed point -----------------------------------
    // `tag_params[f]` = parameter indices of `f` that flow into a tag
    // position (transitively). Monotone, so iterate to stability.
    let mut tag_params: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        for (i, f) in graph.fns.iter().enumerate() {
            for (c, r) in f.calls.iter().zip(&resolved[i]) {
                for pos in tag_positions(c, r, &tag_params) {
                    let Some(arg) = c.args.get(pos) else { continue };
                    if let Some(p) = f.params.iter().position(|p| p == arg) {
                        changed |= tag_params[i].insert(p);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- rules --------------------------------------------------------
    let mut diags = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        check_windows(graph, f, &resolved[i], &summaries, &why, &mut diags);
        if kernel_entry[i] {
            check_kernel_entry(graph, i, &summaries, &why, &mut diags);
        }
        check_tag_flow(graph, f, &resolved[i], &tag_params, &mut diags);
    }
    diags.sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));

    EffectsReport {
        diags,
        summaries,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

/// Owner types whose `new`/`from` associated fns allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "HashMap", "BTreeMap", "HashSet", "BTreeSet", "VecDeque", "Box", "Rc", "Arc",
];

/// Intrinsic effect seeds: calls whose effects are axiomatic, keyed on
/// the callee name (plus hint for typed paths). Methods `clone`, `push`,
/// and `extend` are deliberately absent (amortized/opaque; §12 caveats).
fn intrinsic_bits(call: &CallSite) -> u16 {
    use effect::*;
    let hint = call.hint.as_deref();
    match call.name.as_str() {
        "recv" | "recv_any" | "recv_enveloped" => BLOCKING_RECV | WAITS,
        // LFLR's checkpoint_exchange and lflr_recover ride here too:
        // buddy checkpoints and world repair block on symmetric
        // participation from every rank — collectives in ordering terms.
        "barrier"
        | "allreduce_sum_f64"
        | "allreduce_max_f64"
        | "allreduce_min_f64"
        | "allreduce_sum_u64"
        | "allreduce_max_u64"
        | "allgather_u64"
        | "bcast"
        | "exchange_sparse"
        | "checkpoint_exchange"
        | "lflr_recover" => WAITS | COLLECTIVE,
        // The *post* is the collective ordering event, so the non-blocking
        // iallreduce seeds COLLECTIVE without WAITS; its handle's generic
        // `wait` stays a plain WAITS below.
        "iallreduce_sum_vec" => COLLECTIVE,
        "wait" => WAITS,
        "isend" | "isend_unreliable" | "send" | "send_enveloped" => SENDS,
        "thread_cpu_time" | "ledger" | "reset_ledger" => LEDGER,
        "thread_rng" | "from_entropy" => AMBIENT_RNG,
        "gettimeofday" => WALL_CLOCK,
        "now" if matches!(hint, Some("Instant" | "SystemTime")) => WALL_CLOCK,
        "random" if hint == Some("rand") => AMBIENT_RNG,
        "with_capacity" | "to_vec" | "collect" | "to_owned" | "to_string" | "vec!" | "format!" => {
            ALLOCATES
        }
        "new" | "from" if hint.is_some_and(|h| ALLOC_TYPES.contains(&h)) => ALLOCATES,
        _ => 0,
    }
}

/// Tag argument position of the intrinsic send/recv seeds.
fn intrinsic_tag_pos(name: &str) -> Option<usize> {
    match name {
        "recv_any" => Some(0),
        "isend" | "isend_unreliable" | "irecv" | "recv" | "send" | "exchange_sparse"
        | "send_enveloped" | "recv_enveloped" => Some(1),
        _ => None,
    }
}

/// All tag positions of a call: the intrinsic seed position plus every
/// tag-flowing parameter of every resolved candidate.
fn tag_positions(call: &CallSite, r: &Resolution, tag_params: &[BTreeSet<usize>]) -> Vec<usize> {
    let mut out: BTreeSet<usize> = intrinsic_tag_pos(&call.name).into_iter().collect();
    if let Resolution::Candidates(ids) = r {
        for &id in ids {
            out.extend(tag_params[id].iter().copied());
        }
    }
    out.into_iter().collect()
}

fn is_plain_ident(arg: &str) -> bool {
    !arg.is_empty()
        && arg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !arg.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// A named-constant tag: `TAG_X` or a `path::TAG_X`.
fn is_const_path(arg: &str) -> bool {
    let last = last_segment(arg);
    is_plain_ident(last)
        && last.chars().any(|c| c.is_ascii_uppercase())
        && !last.chars().any(|c| c.is_ascii_lowercase())
        && arg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn last_segment(arg: &str) -> &str {
    arg.rsplit("::").next().unwrap_or(arg).trim()
}

fn body_has_unsafe(graph: &CallGraph, f: &crate::callgraph::FnNode) -> bool {
    let Some((s, e)) = f.body else { return false };
    let Some(file) = graph.files.get(f.file_id) else {
        return false;
    };
    let body = &file.stripped[s..e.min(file.stripped.len())];
    let b = body.as_bytes();
    let mut from = 0;
    while let Some(rel) = body[from..].find("unsafe") {
        let at = from + rel;
        from = at + "unsafe".len();
        let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let post = at + "unsafe".len();
        let post_ok = post >= b.len() || !(b[post].is_ascii_alphanumeric() || b[post] == b'_');
        if pre_ok && post_ok {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Join the reachable effect set of one call (intrinsic ∪ candidates; ⊤
/// for indirect).
fn call_effect(call: &CallSite, r: &Resolution, summaries: &[EffectSet]) -> EffectSet {
    if call.dynamic {
        return EffectSet::top();
    }
    let mut e = EffectSet::from_bits(intrinsic_bits(call));
    if let Resolution::Candidates(ids) = r {
        for &id in ids {
            e.join(&summaries[id]);
        }
    }
    e
}

/// Witness path: which callee chain carries `bit` out of `call`.
fn witness_path(
    graph: &CallGraph,
    call: &CallSite,
    r: &Resolution,
    summaries: &[EffectSet],
    why: &[Vec<Option<Why>>],
    bit: u16,
) -> String {
    if call.dynamic {
        return format!("indirect call at line {} (assumed ⊤)", call.line);
    }
    if intrinsic_bits(call) & bit != 0 {
        return format!("`{}` called directly at line {}", call.name, call.line);
    }
    let start = match r {
        Resolution::Candidates(ids) => ids.iter().copied().find(|&id| summaries[id].contains(bit)),
        _ => None,
    };
    let Some(start) = start else {
        return "(unattributed)".to_string();
    };
    describe_reach(graph, start, why, bit)
}

/// Chase the witness chain from `start` to the direct seed of `bit`.
fn describe_reach(graph: &CallGraph, start: usize, why: &[Vec<Option<Why>>], bit: u16) -> String {
    let k = effect::BITS.iter().position(|&b| b == bit).unwrap_or(0);
    let mut path = vec![graph.fns[start].qual.clone()];
    let mut cur = start;
    let mut seen = BTreeSet::new();
    loop {
        if !seen.insert(cur) {
            break;
        }
        match &why[cur][k] {
            Some(Why::Direct { call, line }) => {
                path.push(format!("`{}` ({}:{})", call, graph.fns[cur].file, line));
                break;
            }
            Some(Why::Via { callee, .. }) => {
                path.push(graph.fns[*callee].qual.clone());
                cur = *callee;
            }
            None => break,
        }
    }
    path.join(" -> ")
}

/// The overlap-window rules: between `scatter_begin` and the next
/// `scatter_end` in the same body, nothing reachable may block-receive,
/// allocate, or read ghost slots.
fn check_windows(
    graph: &CallGraph,
    f: &crate::callgraph::FnNode,
    resolved: &[Resolution],
    summaries: &[EffectSet],
    why: &[Vec<Option<Why>>],
    diags: &mut Vec<LintDiag>,
) {
    let begins: Vec<&CallSite> = f
        .calls
        .iter()
        .filter(|c| c.name == "scatter_begin")
        .collect();
    if begins.is_empty() {
        return;
    }
    let ends: Vec<&CallSite> = f.calls.iter().filter(|c| c.name == "scatter_end").collect();
    let body_end = f.body.map_or(usize::MAX, |(_, e)| e);
    for b in &begins {
        let close = ends
            .iter()
            .map(|e| e.offset)
            .find(|&e| e > b.offset)
            .unwrap_or(body_end);
        for (c, r) in f.calls.iter().zip(resolved) {
            if c.offset <= b.offset || c.offset >= close {
                continue;
            }
            if matches!(c.name.as_str(), "scatter_begin" | "scatter_end") {
                continue;
            }
            let e = call_effect(c, r, summaries);
            let checks: &[(u16, &str, &str, &str)] = &[
                (
                    effect::BLOCKING_RECV,
                    "overlap-blocking-recv",
                    "a blocking receive",
                    "only computation may run while the scatter is in flight",
                ),
                (
                    effect::ALLOCATES,
                    "overlap-allocation",
                    "an allocation",
                    "preallocate outside the window or waive with `// verify: allow(allocates)`",
                ),
                (
                    effect::GHOST_READ,
                    "overlap-ghost-read",
                    "a ghost-slot read",
                    "ghost values are undefined until `scatter_end` completes the exchange",
                ),
            ];
            for &(bit, rule, what, note) in checks {
                if e.contains(bit) {
                    let path = witness_path(graph, c, r, summaries, why, bit);
                    diags.push(LintDiag {
                        file: f.file.clone(),
                        line: c.line,
                        rule,
                        message: format!(
                            "`{}` reaches {what} inside the scatter overlap window opened by \
                             `scatter_begin` at line {}: {path} — {note}",
                            c.name, b.line
                        ),
                    });
                }
            }
        }
    }
}

/// The kernel-purity rules: nothing reachable from a `kernel-entry` fn
/// may touch the virtual-time ledger, wall clocks, or ambient RNG.
fn check_kernel_entry(
    graph: &CallGraph,
    i: usize,
    summaries: &[EffectSet],
    why: &[Vec<Option<Why>>],
    diags: &mut Vec<LintDiag>,
) {
    let f = &graph.fns[i];
    if summaries[i].contains(effect::LEDGER) {
        let path = describe_reach(graph, i, why, effect::LEDGER);
        diags.push(LintDiag {
            file: f.file.clone(),
            line: f.line,
            rule: "kernel-ledger-access",
            message: format!(
                "kernel entry `{}` reaches the virtual-time ledger: {path} — kernels charge \
                 time only through `Comm::work`/`work_with`/`timed_work`/`traced`",
                f.qual
            ),
        });
    }
    for (bit, what) in [
        (effect::WALL_CLOCK, "wall-clock time"),
        (effect::AMBIENT_RNG, "ambient RNG"),
    ] {
        if summaries[i].contains(bit) {
            let path = describe_reach(graph, i, why, bit);
            diags.push(LintDiag {
                file: f.file.clone(),
                line: f.line,
                rule: "kernel-nondeterminism",
                message: format!(
                    "kernel entry `{}` reaches {what}: {path} — kernel results must be \
                     bitwise reproducible",
                    f.qual
                ),
            });
        }
    }
}

/// The interprocedural tag rule: an integer literal must not flow into a
/// tag-generic parameter of a workspace function (literals at the seeds
/// themselves are the legacy lint's `raw-tag-literal`).
fn check_tag_flow(
    graph: &CallGraph,
    f: &crate::callgraph::FnNode,
    resolved: &[Resolution],
    tag_params: &[BTreeSet<usize>],
    diags: &mut Vec<LintDiag>,
) {
    for (c, r) in f.calls.iter().zip(resolved) {
        let Resolution::Candidates(ids) = r else {
            continue;
        };
        for &id in ids {
            for &p in &tag_params[id] {
                let Some(arg) = c.args.get(p) else { continue };
                if is_int_literal(arg) {
                    let callee = &graph.fns[id];
                    let param = callee.params.get(p).map_or("?", String::as_str);
                    diags.push(LintDiag {
                        file: f.file.clone(),
                        line: c.line,
                        rule: "tag-literal-flow",
                        message: format!(
                            "`{}` passes raw tag literal `{}` into tag-flowing parameter \
                             `{param}` of `{}`: use a named tag constant",
                            c.name,
                            arg.trim(),
                            callee.qual
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn analyze(src: &str) -> (EffectsReport, CallGraph) {
        let mut g = CallGraph::new();
        g.add_source("crates/demo/src/demo.rs", src);
        let r = analyze_effects(&g);
        (r, g)
    }

    fn summary_of<'a>(r: &'a EffectsReport, g: &CallGraph, name: &str) -> &'a EffectSet {
        let i = g.fns.iter().position(|f| f.name == name).unwrap();
        &r.summaries[i]
    }

    #[test]
    fn effects_propagate_transitively() {
        let (r, g) = analyze(
            "fn leaf(comm: &mut Comm) { let m = comm.recv(0, TAG_X); }\n\
             fn mid(comm: &mut Comm) { leaf(comm); }\n\
             fn top(comm: &mut Comm) { mid(comm); }\n",
        );
        for name in ["leaf", "mid", "top"] {
            let s = summary_of(&r, &g, name);
            assert!(s.contains(effect::BLOCKING_RECV), "{name}: {s}");
            assert!(s.contains(effect::WAITS), "{name}: {s}");
        }
    }

    #[test]
    fn cycles_reach_the_fixed_point() {
        // Mutual recursion must terminate and both sides see the effect.
        let mut g = CallGraph::new();
        let a = g.add_synthetic_fn("a");
        let b = g.add_synthetic_fn("b");
        let c = g.add_synthetic_fn("c");
        g.add_synthetic_call(a, "b", &[]);
        g.add_synthetic_call(b, "a", &[]);
        g.add_synthetic_call(b, "c", &[]);
        g.add_synthetic_call(c, "recv", &["0", "TAG_X"]);
        let r = analyze_effects(&g);
        assert!(r.summaries[a].contains(effect::BLOCKING_RECV));
        assert!(r.summaries[b].contains(effect::BLOCKING_RECV));
    }

    #[test]
    fn diamond_joins_both_branches() {
        let mut g = CallGraph::new();
        let top = g.add_synthetic_fn("top");
        let l = g.add_synthetic_fn("l");
        let rr = g.add_synthetic_fn("r");
        let bot = g.add_synthetic_fn("bot");
        g.add_synthetic_call(top, "l", &[]);
        g.add_synthetic_call(top, "r", &[]);
        g.add_synthetic_call(l, "bot", &[]);
        g.add_synthetic_call(rr, "bot", &[]);
        g.add_synthetic_call(l, "vec!", &[]);
        g.add_synthetic_call(rr, "isend", &["1", "TAG_Y", "x"]);
        g.add_synthetic_call(bot, "barrier", &[]);
        let r = analyze_effects(&g);
        let t = &r.summaries[top];
        assert!(t.contains(effect::ALLOCATES), "{t}");
        assert!(t.contains(effect::SENDS), "{t}");
        assert!(t.contains(effect::WAITS), "{t}");
        assert!(t.tags.contains("TAG_Y"), "{t}");
        // The leaf sees only its own effect (barrier = blocking collective).
        assert_eq!(r.summaries[bot].bits, effect::WAITS | effect::COLLECTIVE);
    }

    #[test]
    fn indirect_calls_fall_back_to_top() {
        let mut g = CallGraph::new();
        let f = g.add_synthetic_fn("f");
        g.add_dynamic_call(f);
        let r = analyze_effects(&g);
        assert_eq!(r.summaries[f], EffectSet::top());
        assert_eq!(r.stats.dynamic, 1);
    }

    #[test]
    fn pure_marker_pins_bottom_and_allow_waives_one_bit() {
        let (r, g) = analyze(
            "// verify: pure\n\
             fn anchor(comm: &mut Comm) { let m = comm.recv(0, TAG_X); }\n\
             // verify: allow(allocates)\n\
             fn scratch(n: usize) -> Vec<f64> { vec![0.0; n] }\n\
             fn caller(comm: &mut Comm, n: usize) { anchor(comm); scratch(n); }\n",
        );
        assert!(summary_of(&r, &g, "anchor").is_empty());
        assert!(!summary_of(&r, &g, "scratch").contains(effect::ALLOCATES));
        let c = summary_of(&r, &g, "caller");
        assert!(c.is_empty(), "waiver and purity both cut propagation: {c}");
    }

    #[test]
    fn unsafe_fns_and_blocks_carry_the_unsafe_effect() {
        let (r, g) = analyze(
            "unsafe fn raw() {}\n\
             fn has_block(p: *mut f64) { unsafe { *p = 0.0; } }\n\
             fn safe() {}\n",
        );
        assert!(summary_of(&r, &g, "raw").contains(effect::UNSAFE));
        assert!(summary_of(&r, &g, "has_block").contains(effect::UNSAFE));
        assert!(!summary_of(&r, &g, "safe").contains(effect::UNSAFE));
    }

    #[test]
    fn interprocedural_overlap_recv_is_found_with_path() {
        // The satellite fixture shape: the recv hides one call deep.
        let (r, _g) = analyze(
            "fn drain_side(comm: &mut Comm) -> Payload { comm.recv(0, TAG_SIDE) }\n\
             fn overlap(ex: &GhostExchange, comm: &mut Comm, u: &mut DistArray) {\n\
             \x20   ex.scatter_begin(comm, u);\n\
             \x20   let x = drain_side(comm);\n\
             \x20   ex.scatter_end(comm, u);\n\
             }\n",
        );
        let v: Vec<&LintDiag> = r
            .diags
            .iter()
            .filter(|d| d.rule == "overlap-blocking-recv")
            .collect();
        assert_eq!(v.len(), 1, "{:?}", r.diags);
        assert_eq!(v[0].line, 4);
        assert!(
            v[0].message.contains("demo::drain_side -> `recv`"),
            "{}",
            v[0].message
        );
        assert!(
            v[0].message.contains("`scatter_begin` at line 3"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn tag_literal_flow_through_wrapper() {
        let (r, _g) = analyze(
            "fn send_tagged(comm: &mut Comm, dst: usize, tag: u32) {\n\
             \x20   comm.isend(dst, tag, Payload::from_u64(vec![1]));\n\
             }\n\
             fn caller(comm: &mut Comm) { send_tagged(comm, 1, 7); }\n",
        );
        let v: Vec<&LintDiag> = r
            .diags
            .iter()
            .filter(|d| d.rule == "tag-literal-flow")
            .collect();
        assert_eq!(v.len(), 1, "{:?}", r.diags);
        assert_eq!(v[0].line, 4);
        assert!(
            v[0].message
                .contains("raw tag literal `7` into tag-flowing parameter `tag`"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn sends_tags_collected_at_seeds() {
        let (r, g) = analyze(
            "fn a(comm: &mut Comm) { comm.isend(1, TAG_A, x); }\n\
             fn b(comm: &mut Comm) { comm.send_enveloped(0, exchange::TAG_B, &d); a(comm); }\n",
        );
        let s = summary_of(&r, &g, "b");
        assert!(s.tags.contains("TAG_A") && s.tags.contains("TAG_B"), "{s}");
        assert!(!s.tag_top);
    }
}

//! # hymv-verify — static analysis for the HYMV stack
//!
//! Where `hymv-check` observes the runtime (auditing real message logs,
//! perturbing real schedules), `hymv-verify` reasons about the **plans
//! and source** without executing the exchange, and its clean verdicts
//! are proofs for the analyzed configuration, not samples:
//!
//! * [`model`] — the **exchange-plan model checker**: builds the symbolic
//!   per-rank Algorithm-2 schedule from `GhostExchange` plan data and
//!   exhaustively explores its interleavings (explicit-state search with
//!   an ample-set partial-order reduction) to prove deadlock-freedom,
//!   send/recv matching, reserved-tag discipline, overlap ordering, and
//!   ghost-split soundness — emitting a minimal counterexample trace on
//!   failure.
//! * [`alias`] — the **block-coloring alias prover**: dataflow over
//!   `BlockPlan` scatter tables proving no two same-color blocks write a
//!   shared DA dof, and that the > 64-color chunk-private fallback covers
//!   every block exactly once.
//! * [`lint`] — the **workspace lint pass**: a comment/string-aware token
//!   scan rejecting raw tag literals at `Comm` call sites, blocking
//!   receives inside the scatter overlap window, `#[allow(unsafe_code)]`
//!   without a `// SAFETY:` comment, and wall-clock/ambient-RNG use
//!   inside the numerical kernels.
//!
//! The `hymv-verify` binary drives all three over fig4-style meshes at a
//! list of rank counts; see `DESIGN.md` §9 for the soundness argument and
//! its limits.

#![forbid(unsafe_code)]

pub mod alias;
pub mod lint;
pub mod model;

pub use alias::{check_block_coloring, check_chunk_cover, check_gidx_bounds, prove_plan};
pub use lint::{lint_source, lint_workspace, strip_comments_and_strings, LintDiag};
pub use model::{
    check_ghost_split, check_overlap_order, check_plan_consistency, check_system, verify_exchange,
    ModelResult, Op, PlanSummary, SendMode, System,
};

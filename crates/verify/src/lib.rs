//! # hymv-verify — static analysis for the HYMV stack
//!
//! Where `hymv-check` observes the runtime (auditing real message logs,
//! perturbing real schedules), `hymv-verify` reasons about the **plans
//! and source** without executing the exchange, and its clean verdicts
//! are proofs for the analyzed configuration, not samples:
//!
//! * [`model`] — the **exchange-plan model checker**: builds the symbolic
//!   per-rank Algorithm-2 schedule from `GhostExchange` plan data and
//!   exhaustively explores its interleavings (explicit-state search with
//!   an ample-set partial-order reduction) to prove deadlock-freedom,
//!   send/recv matching, reserved-tag discipline, overlap ordering, and
//!   ghost-split soundness — emitting a minimal counterexample trace on
//!   failure. An `inconclusive` (state-cap) outcome is a first-class
//!   [`model::Verdict`] and a hard failure, never a silent sample.
//! * [`param`] — the **parameterized exchange-plan prover**: proves the
//!   same obligations for rank counts the explicit search cannot touch
//!   (p = 1024 in milliseconds) via neighborhood decomposition,
//!   symmetry-class canonicalization, and wait-for-graph acyclicity,
//!   over plans *derived statically* from the partition; at small p the
//!   explicit engine cross-checks it verdict-for-verdict (DESIGN.md
//!   §14).
//! * [`alias`] — the **block-coloring alias prover**: dataflow over
//!   `BlockPlan` scatter tables proving no two same-color blocks write a
//!   shared DA dof, and that the > 64-color chunk-private fallback covers
//!   every block exactly once.
//! * [`lint`] — the **workspace lint pass**: a comment/string-aware token
//!   scan rejecting raw tag literals at `Comm` call sites, blocking
//!   receives inside the scatter overlap window, `#[allow(unsafe_code)]`
//!   without a `// SAFETY:` comment, and wall-clock/ambient-RNG use
//!   inside the numerical kernels. Line-local and fast — it runs as the
//!   pre-pass of the interprocedural analysis below.
//! * [`effects`] (with [`callgraph`] and [`lexer`] underneath) — the
//!   **interprocedural phase-effect analysis**: a hand-rolled item parser
//!   builds the workspace call graph, a fixed-point pass infers a lattice
//!   of communication/runtime effects (`BlockingRecv`, `Waits`,
//!   `SendsTag`, `GhostRead`/`GhostWrite`, `LedgerAccess`, `WallClock`,
//!   `AmbientRng`, `Allocates`, `Unsafe`) per function, and the phase
//!   rules are checked against the inferred summaries — so a blocking
//!   receive hidden N calls deep inside a scatter overlap window is still
//!   found.
//! * [`collectives`] — the **collective-order pass** over the same call
//!   graph: proves all ranks post identical collective sequences (no
//!   collective-reaching call under a rank-dependent guard, no early
//!   return past pending collectives), with minimal witness call chains
//!   on violation and an inferred protocol report for every
//!   `// verify: collective-entry` phase (DESIGN.md §14.3).
//! * [`absint`] — the **unsafe-kernel bounds interpreter**: a symbolic
//!   abstract interpreter over the `// verify: prove-bounds` SIMD kernels
//!   in `crates/la/src/dense.rs`, proving from the `debug_assert!`
//!   preconditions that every lane access is in-bounds (tails included),
//!   cross-checked against the `BlockPlan` slab metadata `alias.rs`
//!   certifies.
//!
//! The `hymv-verify` binary drives the plan passes over fig4-style meshes
//! at a list of rank counts (explicit + parameterized below
//! `--explicit-max`, parameterized-only above), `hymv-verify effects`
//! runs the interprocedural analysis + kernel proofs + collective-order
//! pass, and `hymv-verify collectives` runs the latter alone; see
//! `DESIGN.md` §9/§12/§14 for the soundness arguments and their limits.

#![forbid(unsafe_code)]

pub mod absint;
pub mod alias;
pub mod callgraph;
pub mod collectives;
pub mod effects;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod param;

pub use absint::{
    certify_file, certify_source, check_mv_slab_contract, check_slab_contract, AbsDiag, KernelCert,
};
pub use alias::{check_block_coloring, check_chunk_cover, check_gidx_bounds, prove_plan};
pub use callgraph::{CallGraph, CallSite, FnNode, Marker, Resolution};
pub use collectives::{
    analyze_collectives, CollectiveDiag, CollectiveEntrySeq, CollectivesReport, COLLECTIVE_SEEDS,
};
pub use effects::{analyze_effects, analyze_workspace_effects, effect, EffectSet, EffectsReport};
pub use lexer::strip_comments_and_strings;
pub use lint::{lint_source, lint_workspace, LintDiag};
pub use model::{
    check_ghost_split, check_overlap_order, check_plan_consistency, check_system,
    check_system_with_cap, verify_exchange, ModelResult, Op, PlanSummary, SendMode, System,
    Verdict, STATE_CAP,
};
pub use param::{
    check_system_parameterized, derive_plan_summaries, verify_exchange_parameterized,
    NeighborhoodClass, ParamResult,
};

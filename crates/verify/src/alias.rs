//! The block-coloring / write-set alias prover.
//!
//! The colored parallel EMV loop (`BlockPlan::run_colored`) writes the
//! output DA through raw shared pointers, with no synchronization inside a
//! color class — its soundness rests entirely on the claim that *no two
//! blocks of one color write the same DA dof*. The greedy colorer
//! (`BlockSet::try_color`) is believed to establish this, and the
//! perturbation detector (`hymv-check`) samples for violations at runtime;
//! this module instead **proves the claim for a concrete plan** by direct
//! dataflow over the scatter tables:
//!
//! * for every color class, the live-lane write sets of its blocks are
//!   pairwise disjoint ([`check_block_coloring`]) — a violation names the
//!   color, both blocks, the two elements, and the shared dof/node;
//! * when the colorer bails (> 64 colors) and the engine falls back to
//!   chunk-private accumulation, the fallback's block-id list covers every
//!   block exactly once ([`check_chunk_cover`]) — a dropped block is a
//!   silently wrong SPMV, a doubled one a double accumulation;
//! * every scatter-table index is in-bounds for the DA
//!   ([`check_gidx_bounds`]).
//!
//! The proof is per-plan: it certifies the `BlockPlan` actually built for
//! this mesh/partition/batch-width, not the colorer for all inputs.

use hymv_check::PassReport;
use hymv_core::{BlockPlan, BlockSet, HymvMaps};

/// Locate which live lane (element) of block `k` writes dof `d`, for
/// diagnostics. Returns `(lane, element id)`.
fn lane_writing(set: &BlockSet, nd: usize, bw: usize, k: usize, d: u32) -> Option<(usize, u32)> {
    let gi = set.gather_indices(k);
    for b in 0..set.len(k) {
        if (0..nd).any(|row| gi[row * bw + b] == d) {
            return Some((b, set.elems(k)[b]));
        }
    }
    None
}

/// Describe a DA dof index as node/component/global-node for a violation
/// message.
fn describe_dof(maps: &HymvMaps, ndof: usize, d: u32) -> String {
    let node = d as usize / ndof;
    let comp = d as usize % ndof;
    format!(
        "dof {d} (local node {node}, component {comp}, global node {})",
        maps.local_to_global(node)
    )
}

/// Prove that `classes` is a proper block coloring of `set`: the classes
/// partition `0..n_blocks`, and within each class the live-lane write sets
/// are pairwise disjoint. Returns one violation string per problem found,
/// each naming the offending element pair and the shared node.
pub fn check_block_coloring(
    maps: &HymvMaps,
    set: &BlockSet,
    ndof: usize,
    classes: &[Vec<u32>],
) -> Vec<String> {
    let mut out = Vec::new();
    let nd = maps.npe * ndof;
    let bw = set.panel_len().checked_div(nd).unwrap_or(0);

    // The classes must tile the block list exactly once.
    let mut times_colored = vec![0usize; set.n_blocks()];
    for (color, class) in classes.iter().enumerate() {
        for &k in class {
            if (k as usize) < times_colored.len() {
                times_colored[k as usize] += 1;
            } else {
                out.push(format!(
                    "color {color} lists block {k}, but the set has only {} block(s)",
                    set.n_blocks()
                ));
            }
        }
    }
    for (k, &n) in times_colored.iter().enumerate() {
        if n != 1 {
            out.push(format!(
                "block {k} appears in {n} color class(es); a proper coloring assigns exactly one"
            ));
        }
    }

    // Disjointness: within a class, map each written dof to the block that
    // wrote it; a second writer is an alias — exactly the data race the
    // colored loop's raw shared writes would turn into a lost update.
    let mut writer: Vec<u32> = Vec::new();
    for (color, class) in classes.iter().enumerate() {
        writer.clear();
        writer.resize(maps.n_total() * ndof, u32::MAX);
        for &k in class {
            let k = k as usize;
            if k >= set.n_blocks() {
                continue; // already reported above
            }
            let gi = set.gather_indices(k);
            for row in 0..nd {
                for b in 0..set.len(k) {
                    let d = gi[row * bw + b];
                    if d as usize >= writer.len() {
                        continue; // bounds pass reports this
                    }
                    let prev = writer[d as usize];
                    if prev == u32::MAX {
                        writer[d as usize] = k as u32;
                    } else if prev as usize != k {
                        let (_, e_prev) =
                            lane_writing(set, nd, bw, prev as usize, d).unwrap_or((0, u32::MAX));
                        let e_here = set.elems(k)[b];
                        out.push(format!(
                            "alias in color {color}: blocks {prev} and {k} both write {} — \
                             element {e_prev} (block {prev}) vs element {e_here} (block {k})",
                            describe_dof(maps, ndof, d)
                        ));
                        // One report per (dof, block pair) is enough; keep
                        // scanning other dofs.
                        writer[d as usize] = k as u32;
                    }
                }
            }
        }
    }
    out
}

/// Prove the chunk-private fallback covers every block exactly once: its
/// block-id list must be a permutation of `0..n_blocks`. (The fallback
/// needs no disjointness — workers accumulate into private buffers — but
/// a missing or doubled block is a wrong answer regardless of schedule.)
pub fn check_chunk_cover(set: &BlockSet) -> Vec<String> {
    let mut out = Vec::new();
    let n = set.n_blocks();
    let ids = set.block_ids();
    let mut seen = vec![0usize; n];
    for &k in ids {
        if (k as usize) < n {
            seen[k as usize] += 1;
        } else {
            out.push(format!(
                "chunk-private block list names block {k}, but the set has only {n} block(s)"
            ));
        }
    }
    for (k, &c) in seen.iter().enumerate() {
        if c == 0 {
            out.push(format!(
                "chunk-private block list omits block {k}: its elements would never be computed"
            ));
        } else if c > 1 {
            out.push(format!(
                "chunk-private block list repeats block {k} ({c} times): its contributions \
                 would be accumulated {c} times"
            ));
        }
    }
    out
}

/// Check every scatter-table index of `set` is in-bounds for the DA
/// (`n_total × ndof` slots).
pub fn check_gidx_bounds(maps: &HymvMaps, set: &BlockSet, ndof: usize, which: &str) -> Vec<String> {
    let mut out = Vec::new();
    let limit = (maps.n_total() * ndof) as u32;
    for k in 0..set.n_blocks() {
        if let Some(&bad) = set.gather_indices(k).iter().find(|&&d| d >= limit) {
            out.push(format!(
                "{which} block {k}: gather/scatter index {bad} out of bounds (DA has {limit} dofs)"
            ));
        }
    }
    out
}

/// Run the full alias proof for one rank's [`BlockPlan`]: bounds on both
/// subsets, then — per subset — either a coloring disjointness proof (the
/// colored loop will run) or a fallback coverage proof (> 64 colors, the
/// chunk-private loop will run).
pub fn prove_plan(maps: &HymvMaps, plan: &BlockPlan, ndof: usize) -> PassReport {
    let mut report = PassReport::new("block-coloring alias proof");
    for dependent in [false, true] {
        let which = if dependent {
            "dependent"
        } else {
            "independent"
        };
        let set = plan.set(dependent);
        report.absorb(which, check_gidx_bounds(maps, set, ndof, which));
        match plan.color_blocks(dependent) {
            Some(classes) => {
                report.absorb(which, check_block_coloring(maps, set, ndof, &classes));
            }
            None => {
                report.absorb(
                    &format!("{which} (chunk-private fallback)"),
                    check_chunk_cover(set),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    fn small_plan() -> (HymvMaps, BlockPlan) {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let plan = BlockPlan::build(&maps, 1, 4);
        (maps, plan)
    }

    #[test]
    fn real_plan_proves_clean() {
        let (maps, plan) = small_plan();
        let report = prove_plan(&maps, &plan, 1);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn merged_classes_report_alias_with_element_pair() {
        let (maps, plan) = small_plan();
        let set = plan.set(false);
        let mut classes = plan.color_blocks(false).expect("colorable");
        assert!(classes.len() >= 2, "need >= 2 colors to corrupt");
        // Merge class 1 into class 0. The greedy colorer only assigns color
        // 1 to a block that conflicts with some color-0 block, so the merged
        // class must contain at least one aliased pair.
        let class1 = classes.remove(1);
        classes[0].extend(class1);
        let v = check_block_coloring(&maps, set, 1, &classes);
        assert!(!v.is_empty());
        assert!(
            v.iter().any(|s| s.contains("alias in color 0")
                && s.contains("element")
                && s.contains("global node")),
            "{v:?}"
        );
    }

    #[test]
    fn dropped_block_reported() {
        let (maps, plan) = small_plan();
        let set = plan.set(false);
        let mut classes = plan.color_blocks(false).expect("colorable");
        let dropped = classes[0].pop().expect("nonempty class");
        let v = check_block_coloring(&maps, set, 1, &classes);
        assert!(
            v.iter()
                .any(|s| s.contains(&format!("block {dropped} appears in 0 color class(es)"))),
            "{v:?}"
        );
    }

    #[test]
    fn chunk_cover_accepts_real_sets_only() {
        let (_, plan) = small_plan();
        let set = plan.set(false);
        assert!(check_chunk_cover(set).is_empty());
    }
}

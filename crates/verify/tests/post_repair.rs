//! Post-repair plan verification: after an LFLR rank-crash recovery
//! rebuilds the ghost exchange, the repaired plan must (a) equal the
//! pre-crash plan bit-for-bit — repair reconstructs from the unchanged
//! partition, it never invents topology — and (b) re-prove
//! deadlock-free under the parameterized engine, so the repaired world
//! carries the same static guarantees as the original.

use std::sync::Arc;

use hymv_comm::{AuditMode, CostModel, FaultPlan, RetryPolicy, RunConfig, Universe};
use hymv_core::{HymvMaps, HymvOperator};
use hymv_fem::PoissonKernel;
use hymv_la::{resilient_cg, CheckpointPolicy, Identity, LinOp, RecoveryPolicy};
use hymv_mesh::partition::partition_mesh;
use hymv_mesh::{ElementType, PartitionMethod, PartitionedMesh, StructuredHexMesh};
use hymv_verify::model::{PlanSummary, Verdict};
use hymv_verify::param::verify_exchange_parameterized;

fn run_cfg(fault: Option<FaultPlan>) -> RunConfig {
    RunConfig {
        model: CostModel::default(),
        perturb_seed: None,
        audit: AuditMode::Disabled,
        fault,
        retry: RetryPolicy::default(),
        trace: false,
    }
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint: CheckpointPolicy {
            every: 4,
            max_recoveries: 4,
        },
        ..RecoveryPolicy::default()
    }
}

/// Deterministic multi-magnitude rhs (same generator as the
/// `hymv-check` determinism certificates).
fn rhs_for(op: &HymvOperator) -> Vec<f64> {
    let n = op.n_owned();
    let begin = op.maps().node_range.0 * op.ndof() as u64;
    (0..n)
        .map(|i| {
            let g = begin + i as u64;
            ((g % 13) as f64 + 0.125) * 10f64.powi((g % 5) as i32 - 2)
        })
        .collect()
}

/// One armed solve on the raw Poisson operator; returns the pre-solve
/// and post-solve plan shapes, this rank's maps, and the recovery count.
fn armed_solve(
    pm: &PartitionedMesh,
    kernel: &PoissonKernel,
    comm: &mut hymv_comm::Comm,
) -> (PlanSummary, PlanSummary, HymvMaps, usize) {
    let part = &pm.parts[comm.rank()];
    let (mut op, _) = HymvOperator::setup(comm, part, kernel);
    let plan_before = PlanSummary::from_exchange(op.exchange());
    let b = rhs_for(&op);
    let mut x = vec![0.0; op.n_owned()];
    let res = resilient_cg(
        comm,
        &mut op,
        &mut Identity,
        &b,
        &mut x,
        1e-9,
        2_000,
        &policy(),
    )
    .expect("armed solve survives the crash");
    let plan_after = PlanSummary::from_exchange(op.exchange());
    (plan_before, plan_after, op.maps().clone(), res.recoveries)
}

/// Read the victim's envelope-send counter at the setup/solve boundary
/// and at completion with a crash trigger that can never fire.
fn calibrate(pm: &PartitionedMesh, kernel: &PoissonKernel, p: usize) -> (u64, u64) {
    let plan = FaultPlan::new(1).with_crash(p - 1, u64::MAX);
    let (out, _) = Universe::run_configured(run_cfg(Some(plan)), p, |comm| {
        let part = &pm.parts[comm.rank()];
        let (mut op, _) = HymvOperator::setup(comm, part, kernel);
        comm.barrier();
        let setup = comm.crash_sends_posted().expect("crash spec set");
        let b = rhs_for(&op);
        let mut x = vec![0.0; op.n_owned()];
        let _ = resilient_cg(
            comm,
            &mut op,
            &mut Identity,
            &b,
            &mut x,
            1e-9,
            2_000,
            &policy(),
        );
        comm.barrier();
        (setup, comm.crash_sends_posted().expect("crash spec set"))
    });
    out[0]
}

#[test]
fn repaired_plan_matches_and_reproves_deadlock_free() {
    let p = 8;
    let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, p, PartitionMethod::GreedyGraph);
    let kernel = Arc::new(PoissonKernel::new(ElementType::Hex8));

    let (setup, total) = calibrate(&pm, &kernel, p);
    assert!(total > setup, "no solve-phase traffic to crash into");
    // Crash the last rank about a third into the solve traffic.
    let after = setup + ((total - setup) * 35 / 100).max(1);
    let plan = FaultPlan::new(9).with_crash(p - 1, after);
    let (out, _) = Universe::run_chaos(run_cfg(Some(plan)), p, |comm| {
        armed_solve(&pm, &kernel, comm)
    });

    let mut plans = Vec::with_capacity(p);
    let mut maps = Vec::with_capacity(p);
    let mut recovered = 0usize;
    for (rank, res) in out.into_iter().enumerate() {
        let (before, after, m, recoveries) =
            res.unwrap_or_else(|e| panic!("rank {rank} aborted despite LFLR: {e}"));
        // (a) Repair rebuilt the plan from the unchanged partition.
        assert_eq!(before, after, "rank {rank}: repaired plan differs");
        plans.push(after);
        maps.push(m);
        recovered = recovered.max(recoveries);
    }
    assert!(
        recovered >= 1,
        "the crash never fired: nothing was repaired"
    );

    // (b) The repaired plan re-proves deadlock-free.
    let result = verify_exchange_parameterized(&plans, &maps);
    assert_eq!(result.verdict, Verdict::Proved, "{:?}", result.report);
}

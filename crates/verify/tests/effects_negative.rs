//! Negative fixtures for the interprocedural passes (`hymv-verify
//! effects`): every phase-effect rule gets a planted defect and an
//! assertion on the *exact* diagnostic, the bounds interpreter gets a
//! deliberately broken kernel, and the real workspace is asserted clean —
//! so a regression that silently stops seeing violations fails loudly.

use std::path::Path;

use hymv_verify::{
    analyze_effects, analyze_workspace_effects, certify_file, certify_source, check_slab_contract,
    lint_source, CallGraph, LintDiag,
};

fn analyze(src: &str) -> hymv_verify::EffectsReport {
    let mut g = CallGraph::new();
    g.add_source("crates/demo/src/demo.rs", src);
    analyze_effects(&g)
}

fn only_rule<'a>(r: &'a hymv_verify::EffectsReport, rule: &str) -> &'a LintDiag {
    let v: Vec<&LintDiag> = r.diags.iter().filter(|d| d.rule == rule).collect();
    assert_eq!(v.len(), 1, "expected exactly one {rule}: {:?}", r.diags);
    v[0]
}

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

// ---------------------------------------------------------------------------
// The headline satellite: a blocking receive hidden one call deep inside
// the scatter overlap window. The legacy line-local lint scans only the
// window's own lines, sees a harmless-looking `drain_side(comm)`, and
// reports nothing — the false negative this PR exists to close. Effect
// inference propagates `BlockingRecv` out of the helper and names the
// call chain in the diagnostic.
// ---------------------------------------------------------------------------

const HIDDEN_RECV: &str = "\
fn drain_side(comm: &mut Comm) -> Payload { comm.recv(0, TAG_SIDE) }
fn overlap(ex: &GhostExchange, comm: &mut Comm, u: &mut DistArray) {
    ex.scatter_begin(comm, u);
    let x = drain_side(comm);
    ex.scatter_end(comm, u);
}
";

#[test]
fn legacy_lint_misses_the_hidden_recv() {
    let diags = lint_source("crates/demo/src/demo.rs", HIDDEN_RECV);
    assert!(
        !diags.iter().any(|d| d.rule == "blocking-recv-in-overlap"),
        "the line-local lint cannot see through the helper; if it starts \
         to, this fixture (and the effects engine's reason to exist) needs \
         rethinking: {diags:?}"
    );
}

#[test]
fn effect_inference_catches_the_hidden_recv_with_its_call_chain() {
    let r = analyze(HIDDEN_RECV);
    let d = only_rule(&r, "overlap-blocking-recv");
    assert_eq!((d.file.as_str(), d.line), ("crates/demo/src/demo.rs", 4));
    assert_eq!(
        d.message,
        "`drain_side` reaches a blocking receive inside the scatter overlap \
         window opened by `scatter_begin` at line 3: demo::drain_side -> \
         `recv` (crates/demo/src/demo.rs:1) — only computation may run \
         while the scatter is in flight"
    );
}

// ---------------------------------------------------------------------------
// One exact-diagnostic fixture per remaining phase-effect rule.
// ---------------------------------------------------------------------------

#[test]
fn overlap_allocation_diagnostic_is_exact() {
    let r = analyze(
        "fn scratch(n: usize) -> Vec<f64> { vec![0.0; n] }\n\
         fn overlap(ex: &GhostExchange, comm: &mut Comm, u: &mut DistArray) {\n\
         \x20   ex.scatter_begin(comm, u);\n\
         \x20   let buf = scratch(8);\n\
         \x20   ex.scatter_end(comm, u);\n\
         }\n",
    );
    let d = only_rule(&r, "overlap-allocation");
    assert_eq!(d.line, 4);
    assert_eq!(
        d.message,
        "`scratch` reaches an allocation inside the scatter overlap window \
         opened by `scatter_begin` at line 3: demo::scratch -> `vec!` \
         (crates/demo/src/demo.rs:1) — preallocate outside the window or \
         waive with `// verify: allow(allocates)`"
    );
}

#[test]
fn overlap_ghost_read_diagnostic_is_exact() {
    let r = analyze(
        "// verify: effect(ghost-read)\n\
         fn read_halo(u: &DistArray) -> f64 { u.ghost_sum() }\n\
         fn use_halo(u: &DistArray) -> f64 { read_halo(u) }\n\
         fn overlap(ex: &GhostExchange, comm: &mut Comm, u: &mut DistArray) {\n\
         \x20   ex.scatter_begin(comm, u);\n\
         \x20   let s = use_halo(u);\n\
         \x20   ex.scatter_end(comm, u);\n\
         }\n",
    );
    let d = only_rule(&r, "overlap-ghost-read");
    assert_eq!(d.line, 6);
    assert_eq!(
        d.message,
        "`use_halo` reaches a ghost-slot read inside the scatter overlap \
         window opened by `scatter_begin` at line 5: demo::use_halo -> \
         demo::read_halo -> `// verify: effect(ghost-read)` \
         (crates/demo/src/demo.rs:2) — ghost values are undefined until \
         `scatter_end` completes the exchange"
    );
}

#[test]
fn kernel_ledger_access_diagnostic_is_exact() {
    let r = analyze(
        "fn charge(comm: &mut Comm) { let t = comm.thread_cpu_time(); }\n\
         // verify: kernel-entry\n\
         fn emv_loop(comm: &mut Comm) { charge(comm); }\n",
    );
    let d = only_rule(&r, "kernel-ledger-access");
    assert_eq!(d.line, 3);
    assert_eq!(
        d.message,
        "kernel entry `demo::emv_loop` reaches the virtual-time ledger: \
         demo::emv_loop -> demo::charge -> `thread_cpu_time` \
         (crates/demo/src/demo.rs:1) — kernels charge time only through \
         `Comm::work`/`work_with`/`timed_work`/`traced`"
    );
}

#[test]
fn kernel_nondeterminism_diagnostic_is_exact() {
    let r = analyze(
        "fn jitter() -> f64 { rand::thread_rng().gen() }\n\
         // verify: kernel-entry\n\
         fn emv_loop(v: &mut [f64]) { let j = jitter(); }\n",
    );
    let d = only_rule(&r, "kernel-nondeterminism");
    assert_eq!(d.line, 3);
    assert_eq!(
        d.message,
        "kernel entry `demo::emv_loop` reaches ambient RNG: demo::emv_loop \
         -> demo::jitter -> `thread_rng` (crates/demo/src/demo.rs:1) — \
         kernel results must be bitwise reproducible"
    );
}

#[test]
fn tag_literal_flow_diagnostic_is_exact() {
    let r = analyze(
        "fn send_tagged(comm: &mut Comm, dst: usize, tag: u32) {\n\
         \x20   comm.isend(dst, tag, Payload::from_u64(vec![1]));\n\
         }\n\
         fn caller(comm: &mut Comm) { send_tagged(comm, 1, 0x51); }\n",
    );
    let d = only_rule(&r, "tag-literal-flow");
    assert_eq!(d.line, 4);
    assert_eq!(
        d.message,
        "`send_tagged` passes raw tag literal `0x51` into tag-flowing \
         parameter `tag` of `demo::send_tagged`: use a named tag constant"
    );
}

// ---------------------------------------------------------------------------
// The analyses against the real workspace: the repo itself must be clean,
// and the shipped SIMD kernels must certify.
// ---------------------------------------------------------------------------

#[test]
fn the_workspace_is_effect_clean() {
    let (report, graph) =
        analyze_workspace_effects(workspace_root()).expect("workspace parse failed");
    assert!(
        report.diags.is_empty(),
        "phase-effect violations in the tree: {:#?}",
        report.diags
    );
    assert!(
        graph.notes.is_empty(),
        "unrecognized verify directives: {:?}",
        graph.notes
    );
    // Sanity floor so an accidentally-empty walk can't fake a clean run.
    assert!(
        report.stats.fns > 300,
        "only {} fns parsed",
        report.stats.fns
    );
    assert!(report.stats.files > 30, "only {} files", report.stats.files);
}

#[test]
fn every_shipped_simd_kernel_certifies() {
    let dense = workspace_root().join("crates/la/src/dense.rs");
    let (certs, diags) = certify_file(&dense).expect("dense.rs unreadable");
    assert!(diags.is_empty(), "{diags:#?}");
    let names: Vec<&str> = certs.iter().map(|c| c.kernel.as_str()).collect();
    for want in [
        "dense::emv_avx2_impl",
        "dense::emv_avx512_impl",
        "dense::emv_batch_avx2_impl",
        "dense::emv_batch_avx512_impl",
    ] {
        assert!(names.contains(&want), "{want} not certified: {names:?}");
    }
    assert!(
        certs.iter().all(|c| c.accesses > 0),
        "a certificate with zero proved accesses is vacuous: {certs:#?}"
    );
}

#[test]
fn a_broken_kernel_variant_is_rejected() {
    // Same shape as the shipped AVX2 kernel, with the column offset
    // shifted by one — the tail lane of the last column walks off `ke`.
    let broken = r#"
// verify: prove-bounds
fn emv_bad(ke: &[f64], ue: &[f64], ve: &mut [f64]) {
    let nd = ue.len();
    debug_assert_eq!(ke.len(), nd * nd);
    debug_assert_eq!(ve.len(), nd);
    let chunks = nd / 4;
    for j in 0..nd {
        let u = lanes::read1(ue, j);
        for c in 0..chunks {
            let k = lanes::load4(ke, j * nd + 4 * c + 1);
        }
    }
}
"#;
    let (certs, diags) = certify_source("crates/la/src/broken.rs", broken);
    assert!(certs.is_empty(), "a broken kernel must not certify");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(
        diags[0].message.contains("residual")
            && diags[0]
                .message
                .contains("not provable from the stated preconditions"),
        "{}",
        diags[0].message
    );
}

#[test]
fn slab_contract_mismatch_names_the_bad_slab() {
    // nd=8, bw=4: a keb slab one double short of nd·nd·bw.
    let err = check_slab_contract(8, 4, 8 * 8 * 4 - 1, 8 * 4, 8 * 4)
        .expect_err("short slab must be rejected");
    assert_eq!(
        err,
        "slab keb length 255 violates the proved kernel precondition \
         nd * nd * bw = 256 (nd=8, bw=4)"
    );
}

//! Pinned fixtures for the collective-order pass: the canonical
//! rank-conditional allreduce must be rejected with an *exact*
//! diagnostic and witness chain (these strings are the contract CI
//! greps for), and the live workspace — crates/la and crates/serve in
//! particular — must certify clean with the expected phase sequences.

use std::path::Path;

use hymv_verify::{analyze_collectives, CallGraph};

fn run(src: &str) -> hymv_verify::CollectivesReport {
    let mut g = CallGraph::new();
    g.add_source("crates/bad/src/lib.rs", src);
    analyze_collectives(&g)
}

/// The canonical mismatched-collective bug: only rank 0 enters the
/// allreduce, every other rank sails past — rank 0 blocks forever.
#[test]
fn rank_conditional_allreduce_exact_diagnostic() {
    let r = run("fn broken_phase(comm: &mut Comm, local: f64) -> f64 {\n\
             let mut total = local;\n\
             if comm.rank() == 0 {\n\
                 total = comm.allreduce_sum_f64(total);\n\
             }\n\
             total\n\
         }\n");
    assert!(!r.report.is_clean());
    assert_eq!(r.diags.len(), 1);
    let d = &r.diags[0];
    assert_eq!(d.rule, "collective-rank-divergence");
    assert_eq!(d.file, "crates/bad/src/lib.rs");
    assert_eq!(d.line, 4);
    assert_eq!(d.guard_line, 3);
    assert_eq!(d.func, "lib::broken_phase");
    assert_eq!(d.chain, ["allreduce_sum_f64 (crates/bad/src/lib.rs:4)"]);
    assert_eq!(
        d.message,
        "crates/bad/src/lib.rs:4: collective-rank-divergence: collective `allreduce_sum_f64` \
         executes inside a rank-dependent region (guard at line 3) in `lib::broken_phase` — \
         ranks taking different branches post mismatched collective sequences and deadlock\n    \
         witness: allreduce_sum_f64 (crates/bad/src/lib.rs:4)"
    );
    // The rendered report carries the same message (CI prints it).
    assert!(format!("{}", r.report).contains("collective-rank-divergence"));
}

/// The divergence may hide N calls deep; the witness is the minimal
/// chain from the guarded call down to the seed.
#[test]
fn interprocedural_divergence_minimal_witness_chain() {
    let r = run("fn deep(comm: &mut Comm) { comm.barrier(); }\n\
         fn mid(comm: &mut Comm) { deep(comm); }\n\
         fn phase(comm: &mut Comm) {\n\
             let leader = comm.rank() == 0;\n\
             if leader {\n\
                 mid(comm);\n\
             }\n\
         }\n");
    assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
    let d = &r.diags[0];
    assert_eq!(d.rule, "collective-rank-divergence");
    assert_eq!(
        d.guard_line, 5,
        "guard is the `if leader` — via the let alias"
    );
    assert_eq!(
        d.chain,
        [
            "lib::mid (crates/bad/src/lib.rs:6)",
            "lib::deep (crates/bad/src/lib.rs:2)",
            "barrier (crates/bad/src/lib.rs:1)"
        ]
    );
}

/// Early return under a rank guard with collectives still ahead: the
/// returning ranks skip what the rest post.
#[test]
fn early_return_under_rank_guard_is_rejected() {
    let r = run("fn phase(comm: &mut Comm, n: usize) {\n\
             if comm.rank() >= n {\n\
                 return;\n\
             }\n\
             comm.allreduce_max_u64(1);\n\
         }\n");
    assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
    assert_eq!(r.diags[0].rule, "collective-after-rank-return");
    assert_eq!(r.diags[0].line, 5);
    assert_eq!(r.diags[0].guard_line, 2);
}

/// Certify the live workspace: every crate — la and serve are the ones
/// this pass exists for — posts rank-uniform collective sequences, and
/// the marked phase entries report the protocols DESIGN.md documents.
#[test]
fn workspace_certifies_clean_with_expected_entry_sequences() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let graph = CallGraph::load_workspace(&root).expect("workspace parses");
    let r = analyze_collectives(&graph);
    assert!(
        r.report.is_clean(),
        "live workspace must have no rank-divergent collectives:\n{}",
        r.report
    );
    assert!(
        r.fns_scanned > 500,
        "coverage collapsed: {} fns",
        r.fns_scanned
    );

    let seq_of = |qual: &str| {
        r.entries
            .iter()
            .find(|e| e.qual == qual)
            .unwrap_or_else(|| panic!("missing collective-entry `{qual}`"))
            .sequence
            .clone()
    };
    // GhostExchange::build: one allgather of owned ranges, then the
    // sparse needs exchange. DistCsr::from_triples: allgather of row
    // counts, triple routing, ghost-column needs exchange.
    assert_eq!(
        seq_of("GhostExchange::build"),
        "allgather_u64 · exchange_sparse"
    );
    assert_eq!(
        seq_of("DistCsr::from_triples"),
        "allgather_u64 · exchange_sparse · exchange_sparse"
    );
    // block_cg leads with the fused Gram/norm non-blocking reductions and
    // iterates scalar allreduces; the serve path wraps it per batch.
    let bcg = seq_of("block_cg::block_cg");
    assert!(
        bcg.starts_with("allreduce_sum_u64 · iallreduce_sum_vec"),
        "block_cg sequence drifted: {bcg}"
    );
    let step = seq_of("SolveService::step");
    assert!(
        step.contains("iallreduce_sum_vec") && step.ends_with(")*"),
        "SolveService::step should loop a batched solve protocol: {step}"
    );
    assert!(seq_of("solver::cg").starts_with("allreduce_sum_f64"));
}

/// The fixture the explicit and parameterized engines must both refute
/// stays refutable end-to-end through the public API (guards against the
/// pass silently losing its teeth in a refactor).
#[test]
fn pass_still_has_teeth() {
    let r = run("fn p(comm: &mut Comm) { if comm.rank() == 0 { comm.barrier(); } }\n");
    assert_eq!(r.diags.len(), 1);
    // And a clean sibling stays clean — no blanket flagging.
    let ok = run("fn p(comm: &mut Comm) { comm.barrier(); if comm.rank() == 0 { log(); } }\n");
    assert!(ok.diags.is_empty(), "{:?}", ok.diags);
}

//! Cross-engine tests of the parameterized exchange-plan prover against
//! the explicit-state model checker, plus the scale fixtures the CLI
//! relies on: the small-p regime is the oracle (BFS + partial-order
//! reduction explores every interleaving), and every topology we can
//! afford to check both ways must produce bitwise-identical verdicts.

use proptest::prelude::*;

use hymv_comm::Universe;
use hymv_core::{GhostExchange, HymvMaps};
use hymv_mesh::partition::partition_mesh;
use hymv_mesh::{ElementType, PartitionMethod, StructuredHexMesh};
use hymv_verify::{
    check_system_parameterized, check_system_with_cap, derive_plan_summaries, verify_exchange,
    verify_exchange_parameterized, Op, PlanSummary, SendMode, System, Verdict,
};

const TAG: u32 = 0x0C01; // TAG_SCATTER: keeps the reserved-tag pass quiet

/// Transpose-consistent plans from a directed edge list
/// `(from, to, messages)`: `from` scatters to `to`, so `to` gathers from
/// `from` — exactly the shape `GhostExchange` plans have.
fn plans_from_edges(p: usize, edges: &[(usize, usize, usize)]) -> Vec<PlanSummary> {
    let mut plans = vec![PlanSummary::default(); p];
    for &(from, to, c) in edges {
        plans[from].send_plan.push((to, c));
        plans[to].recv_plan.push((from, c));
    }
    for pl in &mut plans {
        pl.send_plan.sort_unstable();
        pl.recv_plan.sort_unstable();
    }
    plans
}

fn ring_edges(p: usize) -> Vec<(usize, usize, usize)> {
    (0..p)
        .flat_map(|r| [(r, (r + 1) % p, 1), (r, (r + p - 1) % p, 1)])
        .collect()
}

fn torus_edges(w: usize, h: usize) -> Vec<(usize, usize, usize)> {
    let at = |x: usize, y: usize| (y % h) * w + (x % w);
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let r = at(x, y);
            edges.push((r, at(x + 1, y), 1));
            edges.push((r, at(x + w - 1, y), 1));
            edges.push((r, at(x, y + 1), 1));
            edges.push((r, at(x, y + h - 1), 1));
        }
    }
    edges
}

/// Seeded irregular topology: a deterministic LCG picks sparse directed
/// edges, so every failure reproduces from its seed.
fn irregular_edges(p: usize, seed: u64, n_edges: usize) -> Vec<(usize, usize, usize)> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut edges = Vec::new();
    for _ in 0..n_edges {
        let a = next() % p;
        let b = next() % p;
        if a != b {
            edges.push((a, b, 1 + next() % 2));
        }
    }
    edges
}

/// Both engines on the same system; the explicit side runs under a small
/// state cap so a topology that happens to explode skips the comparison
/// (Inconclusive proves nothing either way) instead of stalling CI.
fn verdicts_agree(sys: &System) {
    let explicit = check_system_with_cap(sys, 200_000);
    if explicit.verdict == Verdict::Inconclusive {
        return;
    }
    let param = check_system_parameterized(sys);
    assert_eq!(
        param.verdict,
        explicit.verdict,
        "engines disagree ({:?} mode, {} rank(s)):\nexplicit:\n{}\nparameterized:\n{}",
        sys.mode,
        sys.programs.len(),
        explicit.report,
        param.report
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random topologies, both send semantics, optional hazard mutation
    /// (dropping one plan entry breaks the transpose and must refute —
    /// identically — in both engines).
    #[test]
    fn explicit_and_parameterized_verdicts_match(
        p in 1usize..9,
        seed in 0u64..1_000_000,
        extra in 0usize..12,
        mutate in 0usize..4,
        sync in 0usize..2,
    ) {
        let mut edges = ring_edges(p);
        edges.extend(irregular_edges(p, seed, extra.min(2 * p)));
        let mut plans = plans_from_edges(p, &edges);
        if mutate > 0 && p > 1 {
            // Drop one entry from one rank's send or receive side.
            let rank = seed as usize % p;
            let pl = &mut plans[rank];
            match mutate {
                1 if !pl.send_plan.is_empty() => { pl.send_plan.remove(0); }
                2 if !pl.recv_plan.is_empty() => { pl.recv_plan.remove(0); }
                _ => { pl.send_plan.reverse(); } // order change only
            }
        }
        let mode = if sync == 1 { SendMode::Synchronous } else { SendMode::Buffered };
        verdicts_agree(&System::algorithm2(&plans, mode));
    }

    /// Pure torus grids (no mutation) are deadlock-free under buffered
    /// sends, and both engines say so.
    #[test]
    fn torus_grids_are_proved_by_both_engines(w in 2usize..5, h in 2usize..3) {
        let plans = plans_from_edges(w * h, &torus_edges(w, h));
        let sys = System::algorithm2(&plans, SendMode::Buffered);
        verdicts_agree(&sys);
        prop_assert_eq!(check_system_parameterized(&sys).verdict, Verdict::Proved);
    }
}

/// Raw per-rank program of the stride fixture: a send/recv pattern whose
/// strides (±4, ±5, ±6, ±1) alias away at p ≤ 5 but form a genuine
/// cyclic wait at every p ≥ 6 — the deadlock only manifests past the
/// rank counts a naive small-p sample would try.
fn stride_fixture(p: usize) -> System {
    let programs = (0..p)
        .map(|r| {
            vec![
                Op::Send {
                    dst: (r + 5) % p,
                    tag: TAG,
                },
                Op::Send {
                    dst: (r + 4) % p,
                    tag: TAG,
                },
                Op::Send {
                    dst: (r + 6) % p,
                    tag: TAG,
                },
                Op::Recv {
                    src: (r + 6 * p - 1) % p,
                    tag: TAG,
                },
                Op::Send {
                    dst: (r + 1) % p,
                    tag: TAG,
                },
                Op::Recv {
                    src: (r + 6 * p - 5) % p,
                    tag: TAG,
                },
                Op::Recv {
                    src: (r + 6 * p - 4) % p,
                    tag: TAG,
                },
                Op::Recv {
                    src: (r + 6 * p - 6) % p,
                    tag: TAG,
                },
            ]
        })
        .collect();
    System {
        programs,
        mode: SendMode::Buffered,
    }
}

#[test]
fn stride_fixture_deadlocks_only_at_six_ranks_and_beyond() {
    for p in 1..=5 {
        let sys = stride_fixture(p);
        assert_eq!(
            check_system_with_cap(&sys, 500_000).verdict,
            Verdict::Proved,
            "explicit engine at p={p}"
        );
        assert_eq!(
            check_system_parameterized(&sys).verdict,
            Verdict::Proved,
            "parameterized engine at p={p}"
        );
    }
    for p in 6..=9 {
        let sys = stride_fixture(p);
        assert_eq!(
            check_system_with_cap(&sys, 500_000).verdict,
            Verdict::Refuted,
            "explicit engine at p={p}"
        );
        assert_eq!(
            check_system_parameterized(&sys).verdict,
            Verdict::Refuted,
            "parameterized engine at p={p}"
        );
    }
    // The parameterized engine scales the refutation to rank counts the
    // explicit search could never enumerate, and names the cycle.
    for p in [64usize, 1024] {
        let r = check_system_parameterized(&stride_fixture(p));
        assert_eq!(r.verdict, Verdict::Refuted, "p={p}");
        assert!(
            r.cycle.is_some(),
            "p={p}: refutation must carry the wait-for cycle"
        );
    }
}

#[test]
fn derived_plans_equal_built_plans_and_verdicts_agree() {
    let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
    for p in [2usize, 4, 8] {
        for method in [PartitionMethod::Slabs, PartitionMethod::Rcb] {
            let pm = partition_mesh(&mesh, p, method);
            let per_rank: Vec<(HymvMaps, PlanSummary)> = Universe::run(p, |comm| {
                let maps = HymvMaps::build(&pm.parts[comm.rank()]);
                let ex = GhostExchange::build(comm, &maps);
                let summary = PlanSummary::from_exchange(&ex);
                (maps, summary)
            });
            let (maps, built): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
            let derived = derive_plan_summaries(&maps);
            assert_eq!(
                derived, built,
                "statically derived plans must equal the built GhostExchange plans \
                 (p={p}, {method:?})"
            );
            let explicit = verify_exchange(&built, &maps);
            let param = verify_exchange_parameterized(&built, &maps);
            assert_eq!(explicit.verdict, param.verdict, "p={p}, {method:?}");
            assert_eq!(explicit.verdict, Verdict::Proved, "p={p}, {method:?}");
            assert!(explicit.report.is_clean() && param.report.is_clean());
        }
    }
}

/// The headline acceptance fixture: the production exchange plan of a
/// 16³ RCB-partitioned mesh is *proved* deadlock-free at p = 1024 —
/// a proof, not a sample, and not inconclusive — without ever running
/// the comm substrate.
#[test]
fn production_plan_is_proved_at_p_1024() {
    let mesh = StructuredHexMesh::unit(16, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1024, PartitionMethod::Rcb);
    let maps: Vec<HymvMaps> = pm.parts.iter().map(HymvMaps::build).collect();
    let plans = derive_plan_summaries(&maps);
    let r = verify_exchange_parameterized(&plans, &maps);
    assert_eq!(r.verdict, Verdict::Proved);
    assert!(r.report.is_clean(), "{}", r.report);
    let covered: usize = r.classes.iter().map(|c| c.members).sum();
    assert_eq!(
        covered, 1024,
        "every rank must belong to a neighborhood class"
    );
    assert!(
        r.classes.len() < 1024,
        "symmetry reduction should collapse isomorphic neighborhoods"
    );
}

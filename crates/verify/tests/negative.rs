//! Negative fixtures for every `hymv-verify` static pass: each feeds the
//! analyzer a plan or source snippet with a planted defect and asserts
//! the *exact* counterexample or diagnostic comes back — guarding against
//! the quiet failure mode of a static checker that "passes" because it
//! stopped seeing anything.

use hymv_core::{BlockPlan, HymvMaps};
use hymv_mesh::partition::{partition_mesh, PartitionMethod};
use hymv_mesh::{ElementType, StructuredHexMesh};
use hymv_verify::{
    check_block_coloring, check_plan_consistency, check_system, lint_source, verify_exchange, Op,
    PlanSummary, SendMode, System,
};

// ---------------------------------------------------------------------------
// Pass 1 fixtures: exchange-plan model checker
// ---------------------------------------------------------------------------

/// A two-rank plan that posts its receive before its send. Even with
/// buffered sends this deadlocks immediately: both ranks block on a
/// message the other has not sent yet. The minimal counterexample is the
/// empty trace — the initial state is already dead.
#[test]
fn deadlocking_two_rank_plan_yields_empty_trace() {
    let tag = 0x0C01;
    let sys = System {
        programs: vec![
            vec![Op::Recv { src: 1, tag }, Op::Send { dst: 1, tag }],
            vec![Op::Recv { src: 0, tag }, Op::Send { dst: 0, tag }],
        ],
        mode: SendMode::Buffered,
    };
    let r = check_system(&sys);
    assert_eq!(
        r.counterexample,
        Some(vec![]),
        "recv-before-send cycle must deadlock at the initial state"
    );
    let text = format!("{}", r.report);
    assert!(text.contains("deadlock:"), "{text}");
    assert!(
        text.contains("rank 0 blocked at op 0: `recv <- rank 1 tag 0xc01`"),
        "{text}"
    );
    assert!(
        text.contains("rank 1 blocked at op 0: `recv <- rank 0 tag 0xc01`"),
        "{text}"
    );
    assert!(text.contains("minimal counterexample (0 step(s)"), "{text}");
}

/// The classic cyclic send/send plan. Fine under `hymv_comm`'s buffered
/// sends, a head-to-head deadlock under rendezvous semantics — the model
/// must find it in `Synchronous` mode and prove its absence in `Buffered`.
#[test]
fn cyclic_send_send_plan_deadlocks_only_under_rendezvous() {
    let tag = 7;
    let programs = vec![
        vec![Op::Send { dst: 1, tag }, Op::Recv { src: 1, tag }],
        vec![Op::Send { dst: 0, tag }, Op::Recv { src: 0, tag }],
    ];
    let buffered = check_system(&System {
        programs: programs.clone(),
        mode: SendMode::Buffered,
    });
    assert!(buffered.counterexample.is_none());
    assert!(buffered.report.is_clean(), "{}", buffered.report);

    let sync = check_system(&System {
        programs,
        mode: SendMode::Synchronous,
    });
    assert_eq!(sync.counterexample, Some(vec![]));
    let text = format!("{}", sync.report);
    assert!(
        text.contains("rank 0 blocked at op 0: `send -> rank 1 tag 0x7`")
            && text.contains("synchronous send: receiver never reaches the matching recv"),
        "{text}"
    );
}

/// A plan whose LNSM and GNGM disagree: rank 0 scatters 4 nodes to rank 1,
/// but rank 1 expects 5 — the static consistency pass must name the edge
/// and both counts.
#[test]
fn inconsistent_plan_shapes_name_the_edge() {
    let plans = vec![
        PlanSummary {
            send_plan: vec![(1, 4)],
            recv_plan: vec![],
        },
        PlanSummary {
            send_plan: vec![],
            recv_plan: vec![(0, 5)],
        },
    ];
    let v = check_plan_consistency(&plans);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].contains("edge rank 0 -> rank 1")
            && v[0].contains("4 node(s)")
            && v[0].contains("5 node(s)"),
        "{}",
        v[0]
    );
}

/// A rank waiting for a message that is never sent: the search must walk
/// the healthy rank to completion (a nonempty trace) and then report the
/// orphaned receive, alongside the static unmatched-channel violation.
#[test]
fn orphaned_receive_gets_nonempty_minimal_trace() {
    let sys = System {
        programs: vec![vec![Op::ComputeIndep], vec![Op::Recv { src: 0, tag: 9 }]],
        mode: SendMode::Buffered,
    };
    let r = check_system(&sys);
    assert_eq!(r.counterexample, Some(vec![(0, Op::ComputeIndep)]));
    let text = format!("{}", r.report);
    assert!(
        text.contains("rank 0 -> rank 1 tag 0x9 has 0 send(s) but 1 receive(s)"),
        "{text}"
    );
    assert!(text.contains("minimal counterexample (1 step(s)"), "{text}");
}

// ---------------------------------------------------------------------------
// Pass 2 fixture: corrupted coloring
// ---------------------------------------------------------------------------

/// Corrupt a *real* block coloring by merging two color classes. The
/// greedy colorer assigns color 1 only to blocks that conflict with some
/// color-0 block, so the merged class is guaranteed to contain at least
/// one aliased pair — and the prover must name the color, both elements,
/// and the shared node.
#[test]
fn corrupted_coloring_reports_element_pair_and_shared_node() {
    let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
    let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
    let maps = HymvMaps::build(&pm.parts[0]);
    let plan = BlockPlan::build(&maps, 1, 4);
    let set = plan.set(false);

    let mut classes = plan.color_blocks(false).expect("real plan is colorable");
    assert!(check_block_coloring(&maps, set, 1, &classes).is_empty());

    let class1 = classes.remove(1);
    classes[0].extend(class1);
    let v = check_block_coloring(&maps, set, 1, &classes);
    assert!(!v.is_empty(), "merged classes must alias");
    let diag = &v[0];
    assert!(diag.contains("alias in color 0"), "{diag}");
    assert!(diag.contains("blocks "), "{diag}");
    // The offending element pair...
    assert_eq!(diag.matches("element ").count(), 2, "{diag}");
    // ...and the shared node, in both local and global coordinates.
    assert!(
        diag.contains("local node") && diag.contains("global node"),
        "{diag}"
    );
}

// ---------------------------------------------------------------------------
// Pass 3 fixtures: source lint
// ---------------------------------------------------------------------------

#[test]
fn raw_tag_literal_snippet_yields_exact_diagnostic() {
    let src =
        "pub fn ring(comm: &mut Comm, next: usize) {\n    comm.isend(next, 7, vec![1u8]);\n}\n";
    let v = lint_source("crates/demo/src/ring.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].file, "crates/demo/src/ring.rs");
    assert_eq!(v[0].line, 2);
    assert_eq!(v[0].rule, "raw-tag-literal");
    assert!(
        v[0].message
            .contains("`isend` called with raw tag literal `7`"),
        "{}",
        v[0].message
    );
}

#[test]
fn reserved_range_literal_is_called_out() {
    let src = "comm.recv_any(0xF000_0000);\n";
    let v = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("reserved range"), "{}", v[0].message);
}

#[test]
fn blocking_recv_in_overlap_window_flagged_with_window_line() {
    let src = "pub fn bad(ex: &GhostExchange, comm: &mut Comm, u: &mut DistArray) {\n\
               \x20   ex.scatter_begin(comm, u);\n\
               \x20   let extra = comm.recv(0, TAG_SIDE);\n\
               \x20   ex.scatter_end(comm, u);\n\
               }\n";
    let v = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "blocking-recv-in-overlap");
    assert_eq!(v[0].line, 3);
    assert!(
        v[0].message.contains("`scatter_begin` at line 2"),
        "{}",
        v[0].message
    );
}

#[test]
fn allow_unsafe_without_safety_comment_flagged() {
    let src = "fn f(p: *mut f64) {\n    #[allow(unsafe_code)]\n    unsafe { *p = 0.0 };\n}\n";
    let v = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "unsafe-without-safety");
    assert_eq!(v[0].line, 2);
}

#[test]
fn wall_clock_in_kernel_crate_flagged() {
    let src = "pub fn emv_timed() {\n    let t0 = std::time::Instant::now();\n}\n";
    let v = lint_source("crates/la/src/dense.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "nondeterminism-in-kernel");
    assert_eq!(v[0].line, 2);
    assert!(v[0].message.contains("Instant::now"), "{}", v[0].message);
}

#[test]
fn ledger_access_in_operator_code_flagged() {
    let src = "pub fn matvec_timed(comm: &mut Comm) {\n\
               \x20   let t0 = hymv_comm::thread_cpu_time();\n\
               \x20   let wait = comm.ledger().comm_wait_s;\n\
               }\n";
    let v = lint_source("crates/core/src/operator.rs", src);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|d| d.rule == "ledger-access-in-kernel"));
    assert_eq!(v[0].line, 2);
    assert!(v[0].message.contains("thread_cpu_time"), "{}", v[0].message);
    assert!(v[1].message.contains("ledger()"), "{}", v[1].message);
    // The same text outside the kernel crates is legitimate (the bench
    // harness reads the ledger to build its reports).
    assert!(lint_source("crates/bench/src/runner.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// Positive controls: the real system proves clean
// ---------------------------------------------------------------------------

/// The acceptance bar: fig4-style Hex8 meshes at np ∈ {1, 2, 4, 8} —
/// build the real exchange plans, model-check them, and prove the block
/// colorings alias-free. All static; only the plan build itself runs the
/// comm substrate.
#[test]
fn fig4_plans_verify_clean_np_1_2_4_8() {
    let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
    for p in [1usize, 2, 4, 8] {
        let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
        let per_rank: Vec<(HymvMaps, PlanSummary)> = hymv_comm::Universe::run(p, |comm| {
            let maps = HymvMaps::build(&pm.parts[comm.rank()]);
            let ex = hymv_core::GhostExchange::build(comm, &maps);
            let summary = PlanSummary::from_exchange(&ex);
            (maps, summary)
        });
        let (maps, plans): (Vec<_>, Vec<_>) = per_rank.into_iter().unzip();
        let result = verify_exchange(&plans, &maps);
        assert!(result.report.is_clean(), "np={p}: {}", result.report);
        assert!(result.counterexample.is_none(), "np={p}");
        for (rank, m) in maps.iter().enumerate() {
            let plan = BlockPlan::build(m, 1, 8);
            let report = hymv_verify::prove_plan(m, &plan, 1);
            assert!(report.is_clean(), "np={p} rank={rank}: {report}");
        }
    }
}

/// The workspace's own source must pass its own lint (this is also what
/// keeps the lint rules honest: a false positive here breaks the build).
#[test]
fn workspace_lint_is_clean_on_this_repo() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let diags = hymv_verify::lint_workspace(&root).expect("workspace root");
    assert!(
        diags.is_empty(),
        "workspace lint findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

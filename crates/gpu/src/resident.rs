//! GPU-resident conjugate gradients — the paper's stated future work.
//!
//! §V-F: "HYMV only uses the GPU for accelerating SPMV but not for other
//! operations part of the CG solve (handled by PETSc)." This module closes
//! that gap in the simulated setting: the CG vectors live on the device,
//! the axpy/dot/preconditioner updates run as device kernels (modeled on
//! the simulator, executed bit-exactly on the host), and per iteration
//! only ghost values and reduction scalars cross PCIe.
//!
//! Compare with the host-CG-plus-GPU-SPMV configuration via
//! `fig11 c-resident` (`crates/bench/src/bin/fig11.rs`).

use hymv_comm::Comm;
use hymv_la::{CgResult, LinOp};

use crate::sim::DeviceSim;

/// Device-modeled BLAS-1 operations: numerics on the host, time from the
/// device model. One instance per rank, sharing the operator's simulator
/// parameters.
pub struct DeviceBlas {
    sim: DeviceSim,
}

impl DeviceBlas {
    /// New device-BLAS context on a one-stream timeline.
    pub fn new(sim: DeviceSim) -> Self {
        DeviceBlas { sim }
    }

    fn charge_kernel(&mut self, comm: &mut Comm, flops: u64, bytes: usize, label: &str) {
        self.sim.begin_window();
        self.sim.kernel(0, flops, bytes, label);
        let dt = self.sim.window_elapsed();
        comm.add_modeled_time(dt);
    }

    /// `y += α x` on the device.
    pub fn axpy(&mut self, comm: &mut Comm, alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        self.charge_kernel(comm, 2 * x.len() as u64, 3 * x.len() * 8, "axpy");
    }

    /// `y = x + β y` on the device.
    pub fn xpby(&mut self, comm: &mut Comm, x: &[f64], beta: f64, y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
        self.charge_kernel(comm, 2 * x.len() as u64, 3 * x.len() * 8, "xpby");
    }

    /// Pointwise `z = d ⊙ r` (device Jacobi application).
    pub fn pointwise(&mut self, comm: &mut Comm, d: &[f64], r: &[f64], z: &mut [f64]) {
        for ((zi, di), ri) in z.iter_mut().zip(d).zip(r) {
            *zi = di * ri;
        }
        self.charge_kernel(comm, d.len() as u64, 3 * d.len() * 8, "jacobi");
    }

    /// Device dot product + global reduction: the kernel reads both
    /// vectors, a scalar crosses PCIe, then the MPI allreduce runs.
    pub fn dot(&mut self, comm: &mut Comm, x: &[f64], y: &[f64]) -> f64 {
        let local: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        self.sim.begin_window();
        self.sim
            .kernel(0, 2 * x.len() as u64, 2 * x.len() * 8, "dot");
        self.sim.d2h(0, 8, "dot scalar");
        let dt = self.sim.window_elapsed();
        comm.add_modeled_time(dt);
        comm.allreduce_sum_f64(local)
    }
}

/// Jacobi-preconditioned CG with all vector operations on the device.
///
/// `inv_diag` is the owned inverse diagonal (device-resident, uploaded by
/// the caller's setup). The operator is applied as usual (HYMV-GPU's
/// batched EMV already runs on the device).
#[allow(clippy::too_many_arguments)]
pub fn gpu_resident_cg(
    comm: &mut Comm,
    op: &mut dyn LinOp,
    blas: &mut DeviceBlas,
    inv_diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    rtol: f64,
    max_iter: usize,
) -> CgResult {
    let n = op.n_owned();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert_eq!(inv_diag.len(), n);

    let mut r = vec![0.0; n];
    op.apply(comm, x, &mut r);
    // r = b − Ax as one device kernel (fused with the sign flip).
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    blas.charge_kernel(comm, n as u64, 3 * n * 8, "residual");

    let bnorm = blas.dot(comm, b, b).max(0.0).sqrt();
    if bnorm == 0.0 {
        x.fill(0.0);
        return CgResult {
            iterations: 0,
            converged: true,
            rel_residual: 0.0,
            history: vec![0.0],
        };
    }

    let mut z = vec![0.0; n];
    blas.pointwise(comm, inv_diag, &r, &mut z);
    let mut p = z.clone();
    blas.charge_kernel(comm, 0, 2 * n * 8, "copy p");
    let mut ap = vec![0.0; n];
    let mut rz = blas.dot(comm, &r, &z);
    let mut rnorm = blas.dot(comm, &r, &r).max(0.0).sqrt();
    let mut history = vec![rnorm / bnorm];

    let mut iterations = 0;
    while rnorm / bnorm > rtol && iterations < max_iter {
        op.apply(comm, &p, &mut ap);
        let pap = blas.dot(comm, &p, &ap);
        assert!(pap > 0.0, "GPU-resident CG requires SPD (pᵀAp = {pap})");
        let alpha = rz / pap;
        blas.axpy(comm, alpha, &p, x);
        blas.axpy(comm, -alpha, &ap, &mut r);
        blas.pointwise(comm, inv_diag, &r, &mut z);
        let rz_new = blas.dot(comm, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        blas.xpby(comm, &z, beta, &mut p);
        rnorm = blas.dot(comm, &r, &r).max(0.0).sqrt();
        history.push(rnorm / bnorm);
        iterations += 1;
    }
    CgResult {
        iterations,
        converged: rnorm / bnorm <= rtol,
        rel_residual: rnorm / bnorm,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GpuModel;
    use crate::operator::{GpuScheme, HymvGpuOperator};
    use hymv_comm::Universe;
    use hymv_core::assemble::jacobi_diagonal;
    use hymv_core::exchange::GhostExchange;
    use hymv_core::maps::HymvMaps;
    use hymv_core::system::{BuildOptions, FemSystem, Method, PrecondKind};
    use hymv_fem::analytic::PoissonProblem;
    use hymv_fem::PoissonKernel;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};
    use std::sync::Arc;

    #[test]
    fn resident_cg_matches_host_cg() {
        let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
        let p = 2;
        let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
        let out = Universe::run(p, |comm| {
            let part = &pm.parts[comm.rank()];
            // Reference: the standard FemSystem host solve.
            let kernel = Arc::new(PoissonKernel::with_body(
                ElementType::Hex8,
                PoissonProblem::body(),
            ));
            let mut sys = FemSystem::build(
                comm,
                part,
                Arc::clone(&kernel) as Arc<dyn hymv_fem::ElementKernel>,
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            let rhs = sys.rhs.clone();
            let inv_diag: Vec<f64> = sys.diag.iter().map(|d| 1.0 / d).collect();
            let (x_host, res_host) = sys.solve(comm, PrecondKind::Jacobi, 1e-10, 5000);

            // GPU-resident solve on the same Dirichlet-wrapped operator.
            let mut blas = DeviceBlas::new(crate::sim::DeviceSim::new(GpuModel::default(), 1));
            let mut x_dev = vec![0.0; sys.n_owned()];
            let res_dev = gpu_resident_cg(
                comm,
                &mut sys.op,
                &mut blas,
                &inv_diag,
                &rhs,
                &mut x_dev,
                1e-10,
                5000,
            );
            assert!(res_host.converged && res_dev.converged);
            assert_eq!(res_host.iterations, res_dev.iterations);
            x_host
                .iter()
                .zip(&x_dev)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        });
        assert!(out.iter().all(|&e| e < 1e-9), "{out:?}");
    }

    #[test]
    fn resident_cg_with_gpu_operator() {
        // Full device configuration: HYMV-GPU SPMV + device BLAS.
        let mesh = StructuredHexMesh::unit(5, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        let out = Universe::run(2, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let maps = HymvMaps::build(part);
            let exchange = GhostExchange::build(comm, &maps);
            let (mut op, _) = HymvGpuOperator::setup(
                comm,
                part,
                &kernel,
                GpuModel::default(),
                4,
                GpuScheme::Blocking,
                2,
            );
            let diag = jacobi_diagonal(comm, &maps, &exchange, op.store(), 1);
            let inv_diag: Vec<f64> = diag.iter().map(|d| 1.0 / d).collect();
            // SPD raw Laplacian is singular (constants); shift it by
            // solving on the subspace via rhs orthogonal to constants is
            // overkill for a smoke test — add a mass-like shift through
            // the rhs instead: solve (A + I)y = b using a wrapped op.
            struct Shifted<'a>(&'a mut HymvGpuOperator);
            impl LinOp for Shifted<'_> {
                fn n_owned(&self) -> usize {
                    self.0.n_owned()
                }
                fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
                    self.0.matvec(comm, x, y);
                    for (yi, xi) in y.iter_mut().zip(x) {
                        *yi += xi;
                    }
                }
            }
            let n = op.n_owned();
            let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
            let mut x = vec![0.0; n];
            let mut blas = DeviceBlas::new(crate::sim::DeviceSim::new(GpuModel::default(), 1));
            let inv_shifted: Vec<f64> = inv_diag.iter().map(|d| 1.0 / (1.0 / d + 1.0)).collect();
            let res = gpu_resident_cg(
                comm,
                &mut Shifted(&mut op),
                &mut blas,
                &inv_shifted,
                &b,
                &mut x,
                1e-9,
                2000,
            );
            res.converged
        });
        assert!(out.iter().all(|&c| c));
    }
}

//! Timeline export: Chrome-trace JSON (load into `chrome://tracing` or
//! Perfetto) and an ASCII Gantt renderer — the reproduction of the paper's
//! Fig 3 profiling snapshot.
//!
//! Both views delegate to `hymv-trace`'s shared Chrome-event schema and
//! row painter; this module only maps the simulator's [`TraceEvent`]
//! stream onto them. The standalone device view keeps its historical
//! contract: `pid = 0`, `tid = stream`.

use crate::sim::{EventKind, TraceEvent};
use hymv_trace::ChromeTraceEvent;

fn kind_cat(kind: EventKind) -> &'static str {
    match kind {
        EventKind::H2D => "h2d",
        EventKind::Kernel => "kernel",
        EventKind::D2H => "d2h",
    }
}

/// Map one simulator event onto the shared Chrome-event schema
/// (device-local view: `pid = 0`, `tid = stream`).
pub fn event_to_chrome(e: &TraceEvent) -> ChromeTraceEvent {
    ChromeTraceEvent {
        name: e.label.clone(),
        cat: kind_cat(e.kind).to_string(),
        ph: "X",
        ts: e.start * 1e6,
        dur: (e.end - e.start) * 1e6,
        pid: 0,
        tid: e.stream,
        id: None,
        bp: None,
    }
}

/// Serialize events in the Chrome Trace Event format (microseconds).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let rows: Vec<ChromeTraceEvent> = events.iter().map(event_to_chrome).collect();
    hymv_trace::to_chrome_json(&rows)
}

/// Render an ASCII Gantt chart: one row per stream, `width` character
/// columns over the event span. H2D = `h`, kernel = `█`, D2H = `d`.
pub fn render_ascii(events: &[TraceEvent], width: usize) -> String {
    if events.is_empty() {
        return String::from("(no events)\n");
    }
    let n_streams = events.iter().map(|e| e.stream).max().expect("non-empty") + 1;
    let rows: Vec<(String, Vec<(f64, f64, char)>)> = (0..n_streams)
        .map(|s| {
            let segs: Vec<(f64, f64, char)> = events
                .iter()
                .filter(|e| e.stream == s)
                .map(|e| {
                    let glyph = match e.kind {
                        EventKind::H2D => 'h',
                        EventKind::Kernel => '█',
                        EventKind::D2H => 'd',
                    };
                    (e.start, e.end, glyph)
                })
                .collect();
            (format!("stream {s:2}"), segs)
        })
        .collect();
    hymv_trace::render_rows("(h = H2D, █ = kernel, d = D2H)", &rows, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                stream: 0,
                kind: EventKind::H2D,
                start: 0.0,
                end: 1.0,
                label: "h0".into(),
            },
            TraceEvent {
                stream: 0,
                kind: EventKind::Kernel,
                start: 1.0,
                end: 2.0,
                label: "k0".into(),
            },
            TraceEvent {
                stream: 1,
                kind: EventKind::H2D,
                start: 1.0,
                end: 2.0,
                label: "h1".into(),
            },
            TraceEvent {
                stream: 1,
                kind: EventKind::D2H,
                start: 2.0,
                end: 3.0,
                label: "d1".into(),
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let json = to_chrome_trace(&sample_events());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["ts"], 0.0);
        assert_eq!(arr[1]["dur"], 1e6);
        assert_eq!(arr[2]["tid"], 1);
    }

    #[test]
    fn ascii_gantt_shape() {
        let g = render_ascii(&sample_events(), 30);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 streams
        assert!(lines[1].starts_with("stream  0"));
        assert!(lines[1].contains('h') && lines[1].contains('█'));
        assert!(lines[2].contains('d'));
    }

    #[test]
    fn empty_events_handled() {
        assert_eq!(render_ascii(&[], 10), "(no events)\n");
        let json = to_chrome_trace(&[]);
        assert_eq!(json.trim(), "[]");
    }
}

//! Timeline export: Chrome-trace JSON (load into `chrome://tracing` or
//! Perfetto) and an ASCII Gantt renderer — the reproduction of the paper's
//! Fig 3 profiling snapshot.

use crate::sim::{EventKind, TraceEvent};

/// Serialize events in the Chrome Trace Event format (microseconds).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    #[derive(serde::Serialize)]
    struct ChromeEvent<'a> {
        name: &'a str,
        cat: &'static str,
        ph: &'static str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: usize,
    }
    let rows: Vec<ChromeEvent> = events
        .iter()
        .map(|e| ChromeEvent {
            name: &e.label,
            cat: match e.kind {
                EventKind::H2D => "h2d",
                EventKind::Kernel => "kernel",
                EventKind::D2H => "d2h",
            },
            ph: "X",
            ts: e.start * 1e6,
            dur: (e.end - e.start) * 1e6,
            pid: 0,
            tid: e.stream,
        })
        .collect();
    serde_json::to_string_pretty(&rows).expect("trace serialization cannot fail")
}

/// Render an ASCII Gantt chart: one row per (stream, engine-kind), `width`
/// character columns over the event span. H2D = `h`, kernel = `█`,
/// D2H = `d`.
pub fn render_ascii(events: &[TraceEvent], width: usize) -> String {
    if events.is_empty() {
        return String::from("(no events)\n");
    }
    let t0 = events.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
    let t1 = events
        .iter()
        .map(|e| e.end)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (t1 - t0).max(1e-30);
    let n_streams = events.iter().map(|e| e.stream).max().expect("non-empty") + 1;

    let mut out = String::new();
    out.push_str(&format!(
        "time span: {:.3} ms   (h = H2D, █ = kernel, d = D2H)\n",
        span * 1e3
    ));
    for s in 0..n_streams {
        let mut row = vec![' '; width];
        for e in events.iter().filter(|e| e.stream == s) {
            let c0 = (((e.start - t0) / span) * width as f64) as usize;
            let c1 = ((((e.end - t0) / span) * width as f64).ceil() as usize).min(width);
            let ch = match e.kind {
                EventKind::H2D => 'h',
                EventKind::Kernel => '█',
                EventKind::D2H => 'd',
            };
            for c in row.iter_mut().take(c1).skip(c0.min(width)) {
                *c = ch;
            }
        }
        out.push_str(&format!(
            "stream {s:2} |{}|\n",
            row.iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                stream: 0,
                kind: EventKind::H2D,
                start: 0.0,
                end: 1.0,
                label: "h0".into(),
            },
            TraceEvent {
                stream: 0,
                kind: EventKind::Kernel,
                start: 1.0,
                end: 2.0,
                label: "k0".into(),
            },
            TraceEvent {
                stream: 1,
                kind: EventKind::H2D,
                start: 1.0,
                end: 2.0,
                label: "h1".into(),
            },
            TraceEvent {
                stream: 1,
                kind: EventKind::D2H,
                start: 2.0,
                end: 3.0,
                label: "d1".into(),
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let json = to_chrome_trace(&sample_events());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["ts"], 0.0);
        assert_eq!(arr[1]["dur"], 1e6);
        assert_eq!(arr[2]["tid"], 1);
    }

    #[test]
    fn ascii_gantt_shape() {
        let g = render_ascii(&sample_events(), 30);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 streams
        assert!(lines[1].starts_with("stream  0"));
        assert!(lines[1].contains('h') && lines[1].contains('█'));
        assert!(lines[2].contains('d'));
    }

    #[test]
    fn empty_events_handled() {
        assert_eq!(render_ascii(&[], 10), "(no events)\n");
        let json = to_chrome_trace(&[]);
        assert_eq!(json.trim(), "[]");
    }
}

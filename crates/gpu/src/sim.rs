//! The discrete-event device: streams, engines, and the event timeline.
//!
//! CUDA semantics reproduced here: operations issued to one stream execute
//! in order; operations in different streams may overlap, but each
//! *engine* (H2D copy, compute, D2H copy) serializes the operations it
//! executes. This is exactly the mechanism that makes the paper's
//! multi-stream pipeline (Fig 3) overlap transfers with kernels.

use serde::Serialize;

use crate::model::GpuModel;

/// Operation classes, one per hardware engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// Host→device copy engine.
    H2D,
    /// Compute (kernel) engine.
    Kernel,
    /// Device→host copy engine.
    D2H,
}

/// One scheduled operation.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Stream index.
    pub stream: usize,
    /// Engine used.
    pub kind: EventKind,
    /// Start time, seconds from device epoch.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Human-readable label.
    pub label: String,
}

/// The simulated device.
pub struct DeviceSim {
    model: GpuModel,
    /// Per-stream completion cursor.
    streams: Vec<f64>,
    /// Per-engine completion cursor: [H2D, Kernel, D2H].
    engines: [f64; 3],
    /// Every operation scheduled since the last reset.
    events: Vec<TraceEvent>,
    /// Epoch: current window start.
    epoch: f64,
    /// Submission floor: operations may not start before this window time
    /// (models host-side submission that happens after other work).
    floor: f64,
}

impl DeviceSim {
    /// A device with `n_streams` streams.
    pub fn new(model: GpuModel, n_streams: usize) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        DeviceSim {
            model,
            streams: vec![0.0; n_streams],
            engines: [0.0; 3],
            events: Vec::new(),
            epoch: 0.0,
            floor: 0.0,
        }
    }

    /// The cost model.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// Stream count.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    fn engine_idx(kind: EventKind) -> usize {
        match kind {
            EventKind::H2D => 0,
            EventKind::Kernel => 1,
            EventKind::D2H => 2,
        }
    }

    /// Schedule an operation of `duration` on `stream`; returns its end
    /// time. The start is `max(stream cursor, engine cursor)` — stream
    /// order plus engine serialization.
    pub fn schedule(
        &mut self,
        stream: usize,
        kind: EventKind,
        duration: f64,
        label: impl Into<String>,
    ) -> f64 {
        assert!(stream < self.streams.len(), "stream {stream} out of range");
        assert!(duration >= 0.0, "negative duration");
        let e = Self::engine_idx(kind);
        let start = self.streams[stream]
            .max(self.engines[e])
            .max(self.epoch)
            .max(self.floor);
        let end = start + duration;
        self.streams[stream] = end;
        self.engines[e] = end;
        self.events.push(TraceEvent {
            stream,
            kind,
            start,
            end,
            label: label.into(),
        });
        end
    }

    /// Host→device transfer of `bytes` on `stream`.
    pub fn h2d(&mut self, stream: usize, bytes: usize, label: impl Into<String>) -> f64 {
        let d = self.model.h2d_time(bytes);
        self.schedule(stream, EventKind::H2D, d, label)
    }

    /// Kernel of `flops`/`bytes` on `stream`.
    pub fn kernel(
        &mut self,
        stream: usize,
        flops: u64,
        bytes: usize,
        label: impl Into<String>,
    ) -> f64 {
        let d = self.model.kernel_time(flops, bytes);
        self.schedule(stream, EventKind::Kernel, d, label)
    }

    /// Device→host transfer of `bytes` on `stream`.
    pub fn d2h(&mut self, stream: usize, bytes: usize, label: impl Into<String>) -> f64 {
        let d = self.model.d2h_time(bytes);
        self.schedule(stream, EventKind::D2H, d, label)
    }

    /// Device-wide completion time of everything scheduled so far.
    pub fn now(&self) -> f64 {
        self.streams.iter().copied().fold(self.epoch, f64::max)
    }

    /// Makespan of the current window (since the last `begin_window`).
    pub fn window_elapsed(&self) -> f64 {
        self.now() - self.epoch
    }

    /// Start a new timing window: subsequent operations start no earlier
    /// than the device-wide completion of prior work.
    pub fn begin_window(&mut self) {
        let now = self.now();
        self.epoch = now;
        self.floor = now;
        for s in &mut self.streams {
            *s = now;
        }
        for e in &mut self.engines {
            *e = now;
        }
    }

    /// Raise the submission floor to window time `t` (absolute time
    /// `epoch + t`): subsequent operations cannot start earlier — they were
    /// not yet submitted by the host.
    pub fn set_submission_floor(&mut self, t: f64) {
        self.floor = self.floor.max(self.epoch + t);
    }

    /// All events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop recorded events (keep cursors).
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_model() -> GpuModel {
        GpuModel {
            h2d_bw: 1e9,
            d2h_bw: 1e9,
            dev_bw: 10e9,
            flop_rate: 1e12,
            launch_latency: 0.0,
            transfer_latency: 0.0,
            csr_efficiency: 0.35,
        }
    }

    #[test]
    fn single_stream_serializes() {
        let mut sim = DeviceSim::new(fixed_model(), 1);
        sim.h2d(0, 1_000_000_000, "a"); // 1 s
        sim.kernel(0, 0, 10_000_000_000, "k"); // 1 s
        sim.d2h(0, 1_000_000_000, "b"); // 1 s
        assert!((sim.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_streams_pipeline() {
        // Two chunks, each H2D (1s) → kernel (1s) → D2H (1s).
        // One stream: 6 s. Two streams: the copy engines and compute
        // overlap, makespan 4 s.
        let chunk = |sim: &mut DeviceSim, s: usize| {
            sim.h2d(s, 1_000_000_000, "h");
            sim.kernel(s, 0, 10_000_000_000, "k");
            sim.d2h(s, 1_000_000_000, "d");
        };
        let mut one = DeviceSim::new(fixed_model(), 1);
        chunk(&mut one, 0);
        chunk(&mut one, 0);
        assert!((one.now() - 6.0).abs() < 1e-12);

        let mut two = DeviceSim::new(fixed_model(), 2);
        chunk(&mut two, 0);
        chunk(&mut two, 1);
        assert!((two.now() - 4.0).abs() < 1e-12, "got {}", two.now());
    }

    #[test]
    fn engines_serialize_across_streams() {
        // Two H2D ops on different streams still share the copy engine.
        let mut sim = DeviceSim::new(fixed_model(), 2);
        sim.h2d(0, 1_000_000_000, "a");
        sim.h2d(1, 1_000_000_000, "b");
        assert!((sim.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn windows_isolate_timing() {
        let mut sim = DeviceSim::new(fixed_model(), 2);
        sim.h2d(0, 1_000_000_000, "setup");
        sim.begin_window();
        assert_eq!(sim.window_elapsed(), 0.0);
        sim.h2d(1, 2_000_000_000, "spmv");
        assert!((sim.window_elapsed() - 2.0).abs() < 1e-12);
        assert!((sim.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_recorded_with_times() {
        let mut sim = DeviceSim::new(fixed_model(), 1);
        sim.h2d(0, 500_000_000, "x");
        sim.kernel(0, 0, 5_000_000_000, "y");
        let ev = sim.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::H2D);
        assert!((ev[0].end - 0.5).abs() < 1e-12);
        assert!((ev[1].start - 0.5).abs() < 1e-12);
        assert_eq!(ev[1].label, "y");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_stream_rejected() {
        let mut sim = DeviceSim::new(fixed_model(), 1);
        sim.h2d(3, 10, "oops");
    }
}

//! The calibrated device cost model.

/// Performance parameters of the simulated accelerator. Defaults are
/// calibrated to the paper's NVIDIA Quadro RTX 5000 (Turing) on a PCIe
/// 3.0 ×16 Frontera node.
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Host→device bandwidth, bytes/s (PCIe 3.0 ×16 effective ≈ 12 GB/s).
    pub h2d_bw: f64,
    /// Device→host bandwidth, bytes/s.
    pub d2h_bw: f64,
    /// Device memory bandwidth, bytes/s (GDDR6 448 GB/s, ~80% achievable).
    pub dev_bw: f64,
    /// Sustained FP64 rate for batched DGEMV, flop/s. Turing runs FP64 at
    /// 1/32 of FP32 (11.2 TF) ≈ 350 GF; batched small-matrix kernels reach
    /// a large fraction of it because they are bandwidth-bound anyway.
    pub flop_rate: f64,
    /// Kernel launch latency, seconds.
    pub launch_latency: f64,
    /// Per-transfer initiation overhead, seconds.
    pub transfer_latency: f64,
    /// Effective fraction of `dev_bw` a cuSPARSE-style CSR SpMV achieves
    /// on irregular FEM matrices (the column-index gather defeats
    /// coalescing; 30–40% of peak is the well-documented range). Batched
    /// dense EMV streams contiguously and is not derated.
    pub csr_efficiency: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            h2d_bw: 12.0e9,
            d2h_bw: 12.0e9,
            dev_bw: 360.0e9,
            flop_rate: 350.0e9,
            launch_latency: 5.0e-6,
            transfer_latency: 3.0e-6,
            csr_efficiency: 0.35,
        }
    }
}

impl GpuModel {
    /// Duration of a host→device transfer of `bytes`.
    pub fn h2d_time(&self, bytes: usize) -> f64 {
        self.transfer_latency + bytes as f64 / self.h2d_bw
    }

    /// Duration of a device→host transfer of `bytes`.
    pub fn d2h_time(&self, bytes: usize) -> f64 {
        self.transfer_latency + bytes as f64 / self.d2h_bw
    }

    /// Duration of a kernel performing `flops` floating-point operations
    /// over `bytes` of device memory traffic: the roofline maximum of the
    /// compute-bound and bandwidth-bound estimates, plus launch latency.
    pub fn kernel_time(&self, flops: u64, bytes: usize) -> f64 {
        self.launch_latency + (flops as f64 / self.flop_rate).max(bytes as f64 / self.dev_bw)
    }

    /// Device traffic of a batched EMV over `n_elems` matrices of
    /// dimension `nd`: each matrix is read once, the input and output
    /// vectors are read/written.
    pub fn batched_emv_bytes(&self, n_elems: usize, nd: usize) -> usize {
        n_elems * (nd * nd + 2 * nd) * 8
    }

    /// FLOPs of a batched EMV.
    pub fn batched_emv_flops(&self, n_elems: usize, nd: usize) -> u64 {
        2 * (n_elems as u64) * (nd as u64) * (nd as u64)
    }

    /// *Effective* device traffic of a CSR SpMV with `nnz` nonzeros and
    /// `n` rows (values + column indices + row pointers + vectors),
    /// inflated by `1/csr_efficiency` to account for the irregular
    /// `x[col]` gather — the cuSPARSE-like cost of the PETSc-GPU baseline.
    pub fn csr_spmv_bytes(&self, nnz: usize, n_rows: usize) -> usize {
        let raw = nnz * 12 + n_rows * 8 + n_rows * 16;
        (raw as f64 / self.csr_efficiency) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_times_scale_with_bytes() {
        let m = GpuModel::default();
        let t1 = m.h2d_time(12_000_000); // ~1 ms of payload
        let t2 = m.h2d_time(24_000_000);
        assert!(t2 > t1);
        assert!((t2 - t1 - 0.001).abs() < 1e-6, "doubling adds ~1 ms");
        assert!(m.h2d_time(0) == m.transfer_latency);
    }

    #[test]
    fn kernel_roofline_max() {
        let m = GpuModel::default();
        // Compute-bound case: many flops, no bytes.
        let tc = m.kernel_time(350_000_000, 0);
        assert!((tc - m.launch_latency - 1e-3).abs() < 1e-9);
        // Bandwidth-bound case: bytes dominate.
        let tb = m.kernel_time(1, 360_000_000);
        assert!((tb - m.launch_latency - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn batched_emv_accounting() {
        let m = GpuModel::default();
        assert_eq!(m.batched_emv_flops(10, 60), 2 * 10 * 3600);
        assert_eq!(m.batched_emv_bytes(10, 60), 10 * (3600 + 120) * 8);
    }

    #[test]
    fn emv_is_bandwidth_bound_on_device() {
        // The ratio flops/bytes of batched EMV (~1/4 flop per byte) is far
        // below the device's flop/byte balance — the kernel must be
        // bandwidth-bound, which is what makes the GPU win on HYMV.
        let m = GpuModel::default();
        let flops = m.batched_emv_flops(1000, 60) as f64;
        let bytes = m.batched_emv_bytes(1000, 60) as f64;
        assert!(flops / bytes < m.flop_rate / m.dev_bw);
    }
}

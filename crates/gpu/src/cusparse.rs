//! The PETSc-GPU baseline: assembled distributed CSR with the local
//! multiply executed by a cuSPARSE-like device kernel (Figs 9, 11c).
//!
//! Cost structure reproduced from PETSc's CUDA backend:
//! * setup = full global assembly (host) + one-time H2D of the CSR +
//!   a cuSPARSE analysis pass over the matrix structure;
//! * each `MatMult` moves the input vector H2D, runs the CSR kernel,
//!   ships ghost values (which transit the host on PCIe 3.0 — no
//!   GPUDirect on the paper's Quadro nodes), and moves the result D2H for
//!   the host-side CG.

use hymv_comm::Comm;
use hymv_core::assembled::{AssembledOperator, AssembledSetupTimings};
use hymv_fem::kernel::ElementKernel;
use hymv_la::LinOp;
use hymv_mesh::MeshPartition;

use crate::model::GpuModel;
use crate::sim::DeviceSim;

/// PETSc-GPU (cuSPARSE) operator.
pub struct PetscGpuOperator {
    inner: AssembledOperator,
    sim: DeviceSim,
    /// One-time setup cost on the device (upload + analysis).
    upload_s: f64,
}

impl PetscGpuOperator {
    /// Assemble on the host, then upload the CSR to the device. Collective.
    pub fn setup(
        comm: &mut Comm,
        part: &MeshPartition,
        kernel: &dyn ElementKernel,
        model: GpuModel,
    ) -> (Self, AssembledSetupTimings) {
        let (inner, mut t) = AssembledOperator::setup(comm, part, kernel);
        let mut sim = DeviceSim::new(model, 2);
        sim.begin_window();
        let bytes = inner.storage_bytes();
        sim.h2d(0, bytes, "upload CSR");
        // cuSPARSE csrmv analysis: a structure pass over the matrix.
        sim.kernel(0, 0, 2 * bytes, "cusparse analysis");
        let upload_s = sim.window_elapsed();
        comm.add_modeled_time(upload_s);
        t.assembly_s += upload_s;
        (
            PetscGpuOperator {
                inner,
                sim,
                upload_s,
            },
            t,
        )
    }

    /// One-time device setup seconds.
    pub fn upload_seconds(&self) -> f64 {
        self.upload_s
    }

    /// The device timeline.
    pub fn sim(&self) -> &DeviceSim {
        &self.sim
    }

    /// The wrapped assembled operator.
    pub fn inner(&self) -> &AssembledOperator {
        &self.inner
    }
}

impl LinOp for PetscGpuOperator {
    fn n_owned(&self) -> usize {
        self.inner.n_owned()
    }

    fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        let n = self.inner.n_owned();
        let mat = self.inner.matrix();
        let (nnz_d, nnz_o) = (mat.diag.nnz(), mat.offd.nnz());
        let n_ghost = mat.garray.len();

        // Model the device-side MatMult.
        self.sim.begin_window();
        let m = *self.sim.model();
        self.sim.h2d(0, n * 8, "x H2D");
        self.sim.kernel(
            0,
            2 * nnz_d as u64,
            m.csr_spmv_bytes(nnz_d, n),
            "csrmv diag",
        );
        if n_ghost > 0 {
            // Ghost values arrive on the host and must be staged up.
            self.sim.h2d(1, n_ghost * 8, "ghosts H2D");
            self.sim.kernel(
                0,
                2 * nnz_o as u64,
                m.csr_spmv_bytes(nnz_o, n),
                "csrmv offd",
            );
        }
        self.sim.d2h(0, n * 8, "y D2H");
        let dt = self.sim.window_elapsed();

        // Execute numerics on the host without charging host compute (the
        // device time above replaces it); the real ghost exchange runs and
        // charges its communication cost.
        self.inner.matrix_mut().spmv_uncharged(comm, x, y);
        comm.add_modeled_time(dt);
    }

    fn flops_per_apply(&self) -> u64 {
        self.inner.flops_per_apply()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_core::operator::HymvOperator;
    use hymv_fem::PoissonKernel;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    #[test]
    fn petsc_gpu_matches_cpu_hymv() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        let ok = Universe::run(2, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (mut hymv, _) = HymvOperator::setup(comm, part, &kernel);
            let (mut pg, _) = PetscGpuOperator::setup(comm, part, &kernel, GpuModel::default());
            let x: Vec<f64> = (0..hymv.n_owned())
                .map(|i| (i as f64 * 0.7).cos())
                .collect();
            let mut y_h = vec![0.0; hymv.n_owned()];
            let mut y_p = vec![0.0; pg.n_owned()];
            hymv.matvec(comm, &x, &mut y_h);
            pg.apply(comm, &x, &mut y_p);
            y_h.iter().zip(&y_p).all(|(a, b)| (a - b).abs() < 1e-9)
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn setup_cost_exceeds_cpu_assembled() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (pg, t_gpu) =
                PetscGpuOperator::setup(comm, &pm.parts[0], &kernel, GpuModel::default());
            (t_gpu.assembly_s, pg.upload_seconds())
        });
        let (assembly_s, upload) = out[0];
        // The device upload + analysis is folded into the setup's assembly
        // component on top of the host assembly cost.
        assert!(upload > 0.0);
        assert!(assembly_s > upload);
    }
}

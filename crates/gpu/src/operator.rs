//! [`HymvGpuOperator`] — Algorithm 3 and its overlap schemes (§IV-F, §V-D).
//!
//! Element matrices live "on the device" (uploaded once at setup, like the
//! paper's MAGMA arrays); every SPMV packs the batch input vector `bue` on
//! the host (OpenMP-parallel in the paper), pipelines
//! H2D → batched-EMV → D2H chunks across `Ns` streams, accumulates `bve`
//! on the host, and runs the usual LNSM/GNGM ghost exchange.
//!
//! Numerics execute on the host, bit-exact with the CPU operator; the
//! virtual clock is charged with the *modeled* device makespan plus the
//! measured host pack/accumulate time.

use hymv_comm::Comm;
use hymv_core::block::{batch_width_from_env, BlockPlan};
use hymv_core::da::DistArray;
use hymv_core::exchange::GhostExchange;
use hymv_core::maps::HymvMaps;
use hymv_core::operator::{HymvOperator, SetupTimings};
use hymv_fem::kernel::ElementKernel;
use hymv_la::dense::{emv_batch_flops, select_batch_kernel, EmvBatchKernel};
use hymv_la::{ElementMatrixStore, LinOp};
use hymv_mesh::MeshPartition;

use crate::model::GpuModel;
use crate::sim::{DeviceSim, EventKind};
use hymv_trace::Phase;

/// The three distributed execution schemes compared in Fig 8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuScheme {
    /// Scheme 1 — blocking MPI exchange, then all elements on the device.
    Blocking,
    /// Scheme 2 — GPU/CPU(O): non-blocking exchange overlapped by the
    /// device computing independent elements while the *host* computes
    /// dependent elements.
    OverlapCpu,
    /// Scheme 3 — GPU/GPU(O): non-blocking exchange overlapped by the
    /// device computing independent elements, dependent elements follow on
    /// the device.
    OverlapGpu,
}

/// Invoke the selected batched EMV kernel on one block's slabs.
///
/// The only values ever stored in `batch_kernel` are the `emv_batch_*`
/// kernels from `hymv-la` — pure computation whose lane accesses the
/// `hymv-verify` bounds interpreter certifies — so effect inference may
/// pin this dispatch point pure instead of widening the fn-pointer call
/// to ⊤ (which would spuriously flag the overlap window above it).
// verify: pure
fn dispatch_batch_kernel(
    kernel: EmvBatchKernel,
    keb: &[f64],
    ue: &[f64],
    ve: &mut [f64],
    nd: usize,
    bw: usize,
) {
    kernel(keb, ue, ve, nd, bw);
}

/// HYMV's GPU SPMV operator.
pub struct HymvGpuOperator {
    maps: HymvMaps,
    exchange: GhostExchange,
    store: ElementMatrixStore,
    ndof: usize,
    u: DistArray,
    v: DistArray,
    sim: DeviceSim,
    scheme: GpuScheme,
    /// Modeled host ("OpenMP") threads for pack/accumulate.
    host_threads: usize,
    /// Block plan shared with the CPU engine: its batch-interleaved slabs
    /// are the device-resident matrices, its panels the staging layout
    /// (always present on the GPU path; `bw = 1` degenerates to
    /// per-element panels).
    plan: BlockPlan,
    batch_kernel: EmvBatchKernel,
    /// Batched input/output panels, `n_blocks_total × nd × bw` (pinned
    /// memory in the paper); dependent blocks follow independent ones.
    bue: Vec<f64>,
    bve: Vec<f64>,
    /// One-time device upload cost paid at setup (part of "GPU setup").
    upload_s: f64,
}

impl HymvGpuOperator {
    /// GPU setup: the CPU HYMV setup plus a one-time H2D upload of the
    /// element-matrix store (the overhead that makes GPU setup slightly
    /// slower than CPU setup in Fig 8). Collective.
    pub fn setup(
        comm: &mut Comm,
        part: &MeshPartition,
        kernel: &dyn ElementKernel,
        model: GpuModel,
        n_streams: usize,
        scheme: GpuScheme,
        host_threads: usize,
    ) -> (Self, SetupTimings) {
        let (cpu_op, mut timings) = HymvOperator::setup(comm, part, kernel);
        let (maps, exchange, store, ndof) = cpu_op.into_parts();

        // The device works on the interleaved block slabs; bw=1 keeps the
        // panel layout but makes it elementwise.
        let bw = batch_width_from_env();
        let plan = comm.work(|| {
            let mut p = BlockPlan::build(&maps, ndof, bw);
            p.attach_store(&store);
            p
        });

        let mut sim = DeviceSim::new(model, n_streams);
        let anchor_vt = comm.vt();
        sim.begin_window();
        // Upload what the device kernels consume: the interleaved matrix
        // slabs plus the gather tables.
        sim.h2d(0, plan.device_bytes(), "upload element matrices");
        let upload_s = sim.window_elapsed();
        comm.add_modeled_time(upload_s);
        hymv_trace::gpu_span(
            0,
            Phase::GpuUpload,
            "upload element matrices",
            anchor_vt,
            anchor_vt + upload_s,
        );
        // Report the upload inside the setup breakdown's copy component.
        timings.local_copy_s += upload_s;

        let n_batch = plan.n_blocks_total() * plan.set(false).panel_len();
        let u = DistArray::new(&maps, ndof);
        let v = DistArray::new(&maps, ndof);
        let op = HymvGpuOperator {
            maps,
            exchange,
            store,
            ndof,
            u,
            v,
            sim,
            scheme,
            host_threads,
            plan,
            batch_kernel: select_batch_kernel(bw),
            bue: vec![0.0; n_batch],
            bve: vec![0.0; n_batch],
            upload_s,
        };
        (op, timings)
    }

    /// The block plan (device layout).
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// Panel offset of block `k` of a subset inside `bue`/`bve`
    /// (dependent blocks are stored after all independent ones).
    fn panel_offset(&self, dependent: bool, k: usize) -> usize {
        let base = if dependent {
            self.plan.set(false).n_blocks()
        } else {
            0
        };
        (base + k) * self.plan.set(false).panel_len()
    }

    /// The device timeline (Fig 3 traces).
    pub fn sim(&self) -> &DeviceSim {
        &self.sim
    }

    /// Mutable device access (clearing traces between phases).
    pub fn sim_mut(&mut self) -> &mut DeviceSim {
        &mut self.sim
    }

    /// The one-time upload cost paid at setup.
    pub fn upload_seconds(&self) -> f64 {
        self.upload_s
    }

    /// The element-matrix store (device-resident in the paper).
    pub fn store(&self) -> &ElementMatrixStore {
        &self.store
    }

    /// The maps.
    pub fn maps(&self) -> &HymvMaps {
        &self.maps
    }

    /// Change the execution scheme.
    pub fn set_scheme(&mut self, scheme: GpuScheme) {
        self.scheme = scheme;
    }

    /// Pack `bue` panels for one block subset (host side, charged as SMP
    /// work) through the plan's flattened gather tables.
    fn pack(&mut self, comm: &mut Comm, dependent: bool) {
        let set = self.plan.set(dependent);
        let pl = set.panel_len();
        let base = self.panel_offset(dependent, 0);
        let (u, bue) = (&self.u, &mut self.bue);
        comm.work_smp(self.host_threads, || {
            for k in 0..set.n_blocks() {
                let off = base + k * pl;
                set.gather(k, &u.data, &mut bue[off..off + pl]);
            }
        });
    }

    /// Accumulate `bve` panels of one block subset into `v` (host side).
    fn accumulate(&mut self, comm: &mut Comm, dependent: bool) {
        let set = self.plan.set(dependent);
        let pl = set.panel_len();
        let base = self.panel_offset(dependent, 0);
        let (v, bve) = (&mut self.v, &self.bve);
        comm.work_smp(self.host_threads, || {
            for k in 0..set.n_blocks() {
                let off = base + k * pl;
                set.scatter_with(k, &bve[off..off + pl], |i, val| v.data[i] += val);
            }
        });
    }

    /// Submit one block subset to the device as `Ns` pipelined chunks of
    /// whole blocks and execute the numerics on the host. Returns nothing;
    /// device time accrues on the simulator timeline.
    ///
    /// Allocation waiver: the `format!`ed stream labels feed the device
    /// simulator's event timeline — O(Ns) small strings per matvec,
    /// observability only, never on the numeric path.
    // verify: allow(allocates)
    fn submit_batch(&mut self, dependent: bool, label: &str) {
        let set = self.plan.set(dependent);
        if set.is_empty() {
            return;
        }
        let (nd, bw) = (self.plan.nd(), self.plan.batch_width());
        let pl = set.panel_len();
        let base = self.panel_offset(dependent, 0);
        let nb = set.n_blocks();
        let ns = self.sim.n_streams();
        let chunk = nb.div_ceil(ns);
        for (s, start) in (0..nb).step_by(chunk).enumerate() {
            let ks = start..(start + chunk).min(nb);
            let vec_bytes = ks.len() * pl * 8;
            // The modeled kernel executes every lane, padding included.
            let lanes = ks.len() * bw;
            self.sim.h2d(s, vec_bytes, format!("{label} bue s{s}"));
            self.sim.kernel(
                s,
                self.sim.model().batched_emv_flops(lanes, nd),
                self.sim.model().batched_emv_bytes(lanes, nd),
                format!("{label} batched EMV s{s}"),
            );
            self.sim.d2h(s, vec_bytes, format!("{label} bve s{s}"));
            // Bit-exact numerics on the host (emulation, not charged).
            for k in ks {
                let off = base + k * pl;
                dispatch_batch_kernel(
                    self.batch_kernel,
                    set.keb(k),
                    &self.bue[off..off + pl],
                    &mut self.bve[off..off + pl],
                    nd,
                    bw,
                );
            }
        }
    }

    /// Mirror the device events scheduled since index `mark` onto the
    /// merged trace: the current window began at device time `dev0`,
    /// which corresponds to virtual time `anchor_vt` on this rank.
    fn emit_device_spans(&self, mark: usize, dev0: f64, anchor_vt: f64) {
        if !hymv_trace::enabled() {
            return;
        }
        for e in &self.sim.events()[mark..] {
            let phase = match e.kind {
                EventKind::H2D => Phase::GpuH2D,
                EventKind::Kernel => Phase::GpuKernel,
                EventKind::D2H => Phase::GpuD2H,
            };
            hymv_trace::gpu_span(
                e.stream,
                phase,
                &e.label,
                anchor_vt + (e.start - dev0),
                anchor_vt + (e.end - dev0),
            );
        }
    }

    /// Host-side EMV for one block subset (scheme 2's dependent elements),
    /// charged as host SMP work, accumulating directly into `v`.
    fn host_emv(&mut self, comm: &mut Comm, dependent: bool) {
        let (plan, kernel) = (&self.plan, self.batch_kernel);
        let pl = plan.set(dependent).panel_len();
        let (u, v) = (&self.u, &mut self.v);
        comm.work_smp(self.host_threads, || {
            let (mut ue, mut ve) = (vec![0.0; pl], vec![0.0; pl]);
            plan.run_serial(dependent, u, v, kernel, &mut ue, &mut ve);
        });
    }

    /// Algorithm 3 (with the selected overlap scheme).
    pub fn matvec(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.v.fill_zero();
        self.u.set_owned(x);

        match self.scheme {
            GpuScheme::Blocking => {
                // Blocking exchange, then everything on the device.
                self.exchange.scatter_begin(comm, &self.u);
                self.exchange.scatter_end(comm, &mut self.u);
                self.pack(comm, false);
                self.pack(comm, true);
                let anchor_vt = comm.vt();
                let mark = self.sim.events().len();
                self.sim.begin_window();
                let dev0 = self.sim.now();
                self.submit_batch(false, "all");
                self.submit_batch(true, "all");
                let dt = self.sim.window_elapsed();
                comm.add_modeled_time(dt);
                self.emit_device_spans(mark, dev0, anchor_vt);
                self.accumulate(comm, false);
                self.accumulate(comm, true);
            }
            GpuScheme::OverlapCpu | GpuScheme::OverlapGpu => {
                self.exchange.scatter_begin(comm, &self.u);

                // Pack + submit independent blocks; device runs while the
                // exchange is in flight.
                self.pack(comm, false);
                let anchor_vt = comm.vt();
                let mark = self.sim.events().len();
                self.sim.begin_window();
                let dev0 = self.sim.now();
                self.submit_batch(false, "indep");

                // Complete the exchange (host may wait; device keeps going).
                self.exchange.scatter_end(comm, &mut self.u);

                if self.scheme == GpuScheme::OverlapCpu {
                    // Host computes dependent elements while the device
                    // finishes the independent batch.
                    self.host_emv(comm, true);
                    // Sync with the device.
                    let device_done = anchor_vt + self.sim.window_elapsed();
                    if device_done > comm.vt() {
                        comm.add_modeled_time(device_done - comm.vt());
                    }
                    self.emit_device_spans(mark, dev0, anchor_vt);
                    self.accumulate(comm, false);
                } else {
                    // Dependent blocks follow on the device; they cannot
                    // start before the host submitted them (post-exchange).
                    self.pack(comm, true);
                    self.sim.set_submission_floor(comm.vt() - anchor_vt);
                    self.submit_batch(true, "dep");
                    let device_done = anchor_vt + self.sim.window_elapsed();
                    if device_done > comm.vt() {
                        comm.add_modeled_time(device_done - comm.vt());
                    }
                    self.emit_device_spans(mark, dev0, anchor_vt);
                    self.accumulate(comm, false);
                    self.accumulate(comm, true);
                }
            }
        }

        self.exchange.gather_begin(comm, &self.v);
        self.exchange.gather_end(comm, &mut self.v);
        y.copy_from_slice(self.v.owned());
    }
}

impl LinOp for HymvGpuOperator {
    fn n_owned(&self) -> usize {
        self.maps.n_owned() * self.ndof
    }

    fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.matvec(comm, x, y);
    }

    fn flops_per_apply(&self) -> u64 {
        // Every lane executes, padding included.
        self.plan.n_blocks_total() as u64 * emv_batch_flops(self.plan.nd(), self.plan.batch_width())
    }

    fn storage_bytes(&self) -> usize {
        self.store.bytes() + self.plan.bytes() + (self.bue.len() + self.bve.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_fem::{ElasticityKernel, PoissonKernel};
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    #[test]
    fn gpu_matches_cpu_all_schemes() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        for scheme in [
            GpuScheme::Blocking,
            GpuScheme::OverlapCpu,
            GpuScheme::OverlapGpu,
        ] {
            let ok = Universe::run(2, |comm| {
                let part = &pm.parts[comm.rank()];
                let kernel = PoissonKernel::new(ElementType::Hex8);
                let (mut cpu, _) = HymvOperator::setup(comm, part, &kernel);
                let (mut gpu, _) =
                    HymvGpuOperator::setup(comm, part, &kernel, GpuModel::default(), 4, scheme, 4);
                let x: Vec<f64> = (0..cpu.n_owned())
                    .map(|i| ((i * 3 % 13) as f64) * 0.3 - 1.0)
                    .collect();
                let mut y_c = vec![0.0; cpu.n_owned()];
                let mut y_g = vec![0.0; gpu.n_owned()];
                cpu.matvec(comm, &x, &mut y_c);
                gpu.matvec(comm, &x, &mut y_g);
                y_c.iter().zip(&y_g).all(|(a, b)| (a - b).abs() < 1e-12)
            });
            assert!(ok.iter().all(|&b| b), "{scheme:?}");
        }
    }

    #[test]
    fn more_streams_reduce_makespan() {
        // Same batch, 1 vs 8 streams: pipelining must shrink device time.
        // Latencies are zeroed so the payload (not per-op overhead)
        // dominates even on this test-sized mesh; at paper-scale batches
        // the default model shows the same effect (fig8 -- streams).
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex20).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let model = GpuModel {
            launch_latency: 0.0,
            transfer_latency: 0.0,
            ..GpuModel::default()
        };
        let out = Universe::run(1, |comm| {
            let kernel = ElasticityKernel::new(ElementType::Hex20, 100.0, 0.3, [0.0, 0.0, -1.0]);
            let mut makespans = Vec::new();
            for ns in [1usize, 8] {
                let (mut gpu, _) = HymvGpuOperator::setup(
                    comm,
                    &pm.parts[0],
                    &kernel,
                    model,
                    ns,
                    GpuScheme::Blocking,
                    1,
                );
                let x = vec![1.0; gpu.n_owned()];
                let mut y = vec![0.0; gpu.n_owned()];
                gpu.sim_mut().begin_window();
                gpu.sim_mut().clear_events();
                gpu.matvec(comm, &x, &mut y);
                // The window spans the whole matvec (begin_window inside
                // matvec resets it): use the recorded events instead.
                let ev = gpu.sim().events();
                let t0 = ev.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
                let t1 = ev.iter().map(|e| e.end).fold(0.0, f64::max);
                makespans.push(t1 - t0);
            }
            makespans
        });
        let m = &out[0];
        assert!(
            m[1] < m[0] * 0.85,
            "8 streams {} must beat 1 stream {}",
            m[1],
            m[0]
        );
    }

    #[test]
    fn setup_includes_upload() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (_cpu, t_cpu) = HymvOperator::setup(comm, &pm.parts[0], &kernel);
            let (gpu, t_gpu) = HymvGpuOperator::setup(
                comm,
                &pm.parts[0],
                &kernel,
                GpuModel::default(),
                2,
                GpuScheme::Blocking,
                1,
            );
            // What goes up is the device layout: interleaved slabs +
            // gather tables.
            (
                t_cpu.local_copy_s,
                t_gpu.local_copy_s,
                gpu.upload_seconds(),
                gpu.plan().device_bytes(),
            )
        });
        let (_cpu_copy, gpu_copy, upload, bytes) = out[0];
        // The GPU setup's copy component carries the modeled upload on top
        // of the host-side local copy (measured CPU time is noisy across
        // the two separate runs, so only the structural relation is
        // asserted).
        let expected = GpuModel::default().h2d_time(bytes);
        assert!((upload - expected).abs() < 1e-12);
        assert!(
            gpu_copy >= upload,
            "copy component {gpu_copy} includes the upload {upload}"
        );
    }

    #[test]
    fn trace_events_cover_three_engines() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (mut gpu, _) = HymvGpuOperator::setup(
                comm,
                &pm.parts[0],
                &kernel,
                GpuModel::default(),
                4,
                GpuScheme::Blocking,
                1,
            );
            let x = vec![1.0; gpu.n_owned()];
            let mut y = vec![0.0; gpu.n_owned()];
            gpu.sim_mut().clear_events();
            gpu.matvec(comm, &x, &mut y);
            gpu.sim().events().to_vec()
        });
        use crate::sim::EventKind;
        let ev = &out[0];
        assert!(ev.iter().any(|e| e.kind == EventKind::H2D));
        assert!(ev.iter().any(|e| e.kind == EventKind::Kernel));
        assert!(ev.iter().any(|e| e.kind == EventKind::D2H));
        // Chunks spread across streams.
        assert!(ev.iter().any(|e| e.stream > 0));
    }
}

//! [`HymvGpuOperator`] — Algorithm 3 and its overlap schemes (§IV-F, §V-D).
//!
//! Element matrices live "on the device" (uploaded once at setup, like the
//! paper's MAGMA arrays); every SPMV packs the batch input vector `bue` on
//! the host (OpenMP-parallel in the paper), pipelines
//! H2D → batched-EMV → D2H chunks across `Ns` streams, accumulates `bve`
//! on the host, and runs the usual LNSM/GNGM ghost exchange.
//!
//! Numerics execute on the host, bit-exact with the CPU operator; the
//! virtual clock is charged with the *modeled* device makespan plus the
//! measured host pack/accumulate time.

use hymv_comm::Comm;
use hymv_core::da::DistArray;
use hymv_core::exchange::GhostExchange;
use hymv_core::maps::HymvMaps;
use hymv_core::operator::{HymvOperator, SetupTimings};
use hymv_fem::kernel::ElementKernel;
use hymv_la::dense::{emv, emv_flops};
use hymv_la::{ElementMatrixStore, LinOp};
use hymv_mesh::MeshPartition;

use crate::model::GpuModel;
use crate::sim::DeviceSim;

/// The three distributed execution schemes compared in Fig 8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuScheme {
    /// Scheme 1 — blocking MPI exchange, then all elements on the device.
    Blocking,
    /// Scheme 2 — GPU/CPU(O): non-blocking exchange overlapped by the
    /// device computing independent elements while the *host* computes
    /// dependent elements.
    OverlapCpu,
    /// Scheme 3 — GPU/GPU(O): non-blocking exchange overlapped by the
    /// device computing independent elements, dependent elements follow on
    /// the device.
    OverlapGpu,
}

/// HYMV's GPU SPMV operator.
pub struct HymvGpuOperator {
    maps: HymvMaps,
    exchange: GhostExchange,
    store: ElementMatrixStore,
    ndof: usize,
    u: DistArray,
    v: DistArray,
    sim: DeviceSim,
    scheme: GpuScheme,
    /// Modeled host ("OpenMP") threads for pack/accumulate.
    host_threads: usize,
    /// Batched element vectors (pinned memory in the paper).
    bue: Vec<f64>,
    bve: Vec<f64>,
    /// One-time device upload cost paid at setup (part of "GPU setup").
    upload_s: f64,
}

impl HymvGpuOperator {
    /// GPU setup: the CPU HYMV setup plus a one-time H2D upload of the
    /// element-matrix store (the overhead that makes GPU setup slightly
    /// slower than CPU setup in Fig 8). Collective.
    pub fn setup(
        comm: &mut Comm,
        part: &MeshPartition,
        kernel: &dyn ElementKernel,
        model: GpuModel,
        n_streams: usize,
        scheme: GpuScheme,
        host_threads: usize,
    ) -> (Self, SetupTimings) {
        let (cpu_op, mut timings) = HymvOperator::setup(comm, part, kernel);
        let (maps, exchange, store, ndof) = cpu_op.into_parts();

        let mut sim = DeviceSim::new(model, n_streams);
        sim.begin_window();
        sim.h2d(0, store.bytes(), "upload element matrices");
        let upload_s = sim.window_elapsed();
        comm.add_modeled_time(upload_s);
        // Report the upload inside the setup breakdown's copy component.
        timings.local_copy_s += upload_s;

        let nd = store.nd();
        let n_batch = maps.n_elems * nd;
        let u = DistArray::new(&maps, ndof);
        let v = DistArray::new(&maps, ndof);
        let op = HymvGpuOperator {
            maps,
            exchange,
            store,
            ndof,
            u,
            v,
            sim,
            scheme,
            host_threads,
            bue: vec![0.0; n_batch],
            bve: vec![0.0; n_batch],
            upload_s,
        };
        (op, timings)
    }

    /// The device timeline (Fig 3 traces).
    pub fn sim(&self) -> &DeviceSim {
        &self.sim
    }

    /// Mutable device access (clearing traces between phases).
    pub fn sim_mut(&mut self) -> &mut DeviceSim {
        &mut self.sim
    }

    /// The one-time upload cost paid at setup.
    pub fn upload_seconds(&self) -> f64 {
        self.upload_s
    }

    /// The element-matrix store (device-resident in the paper).
    pub fn store(&self) -> &ElementMatrixStore {
        &self.store
    }

    /// The maps.
    pub fn maps(&self) -> &HymvMaps {
        &self.maps
    }

    /// Change the execution scheme.
    pub fn set_scheme(&mut self, scheme: GpuScheme) {
        self.scheme = scheme;
    }

    /// Pack `bue` for a subset of elements (host side, charged as SMP
    /// work). Entries are stored at each element's slot.
    fn pack(&mut self, comm: &mut Comm, subset: &[u32]) {
        let nd = self.store.nd();
        let (maps, u, bue) = (&self.maps, &self.u, &mut self.bue);
        comm.work_smp(self.host_threads, || {
            for &e in subset {
                let e = e as usize;
                u.extract_elem(maps.elem_local_nodes(e), &mut bue[e * nd..(e + 1) * nd]);
            }
        });
    }

    /// Accumulate `bve` for a subset of elements into `v` (host side).
    fn accumulate(&mut self, comm: &mut Comm, subset: &[u32]) {
        let nd = self.store.nd();
        let (maps, v, bve) = (&self.maps, &mut self.v, &self.bve);
        comm.work_smp(self.host_threads, || {
            for &e in subset {
                let e = e as usize;
                v.accumulate_elem(maps.elem_local_nodes(e), &bve[e * nd..(e + 1) * nd]);
            }
        });
    }

    /// Submit a subset of elements to the device as `Ns` pipelined chunks
    /// and execute the numerics on the host. Returns nothing; device time
    /// accrues on the simulator timeline.
    fn submit_batch(&mut self, subset: &[u32], label: &str) {
        if subset.is_empty() {
            return;
        }
        let nd = self.store.nd();
        let ns = self.sim.n_streams();
        let chunk = subset.len().div_ceil(ns);
        for (s, elems) in subset.chunks(chunk).enumerate() {
            let vec_bytes = elems.len() * nd * 8;
            self.sim.h2d(s, vec_bytes, format!("{label} bue s{s}"));
            self.sim.kernel(
                s,
                self.sim.model().batched_emv_flops(elems.len(), nd),
                self.sim.model().batched_emv_bytes(elems.len(), nd),
                format!("{label} batched EMV s{s}"),
            );
            self.sim.d2h(s, vec_bytes, format!("{label} bve s{s}"));
            // Bit-exact numerics on the host (emulation, not charged).
            for &e in elems {
                let e = e as usize;
                emv(
                    self.store.ke(e),
                    &self.bue[e * nd..(e + 1) * nd],
                    &mut self.bve[e * nd..(e + 1) * nd],
                );
            }
        }
    }

    /// Host-side EMV for a subset (scheme 2's dependent elements), charged
    /// as host SMP work, accumulating directly into `v`.
    fn host_emv(&mut self, comm: &mut Comm, subset: &[u32]) {
        let nd = self.store.nd();
        let (maps, store, u, v) = (&self.maps, &self.store, &self.u, &mut self.v);
        comm.work_smp(self.host_threads, || {
            let mut ue = vec![0.0; nd];
            let mut ve = vec![0.0; nd];
            for &e in subset {
                let nodes = maps.elem_local_nodes(e as usize);
                u.extract_elem(nodes, &mut ue);
                emv(store.ke(e as usize), &ue, &mut ve);
                v.accumulate_elem(nodes, &ve);
            }
        });
    }

    /// Algorithm 3 (with the selected overlap scheme).
    pub fn matvec(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.v.fill_zero();
        self.u.set_owned(x);

        match self.scheme {
            GpuScheme::Blocking => {
                // Blocking exchange, then everything on the device.
                self.exchange.scatter_begin(comm, &self.u);
                self.exchange.scatter_end(comm, &mut self.u);
                let all: Vec<u32> = (0..self.maps.n_elems as u32).collect();
                self.pack(comm, &all);
                self.sim.begin_window();
                self.submit_batch(&all, "all");
                let dt = self.sim.window_elapsed();
                comm.add_modeled_time(dt);
                self.accumulate(comm, &all);
            }
            GpuScheme::OverlapCpu | GpuScheme::OverlapGpu => {
                self.exchange.scatter_begin(comm, &self.u);
                let indep = self.maps.independent.clone();
                let dep = self.maps.dependent.clone();

                // Pack + submit independent elements; device runs while the
                // exchange is in flight.
                self.pack(comm, &indep);
                let anchor_vt = comm.vt();
                self.sim.begin_window();
                self.submit_batch(&indep, "indep");

                // Complete the exchange (host may wait; device keeps going).
                self.exchange.scatter_end(comm, &mut self.u);

                if self.scheme == GpuScheme::OverlapCpu {
                    // Host computes dependent elements while the device
                    // finishes the independent batch.
                    self.host_emv(comm, &dep);
                    // Sync with the device.
                    let device_done = anchor_vt + self.sim.window_elapsed();
                    if device_done > comm.vt() {
                        comm.add_modeled_time(device_done - comm.vt());
                    }
                    self.accumulate(comm, &indep);
                } else {
                    // Dependent elements follow on the device; they cannot
                    // start before the host submitted them (post-exchange).
                    self.pack(comm, &dep);
                    self.sim.set_submission_floor(comm.vt() - anchor_vt);
                    self.submit_batch(&dep, "dep");
                    let device_done = anchor_vt + self.sim.window_elapsed();
                    if device_done > comm.vt() {
                        comm.add_modeled_time(device_done - comm.vt());
                    }
                    self.accumulate(comm, &indep);
                    self.accumulate(comm, &dep);
                }
            }
        }

        self.exchange.gather_begin(comm, &self.v);
        self.exchange.gather_end(comm, &mut self.v);
        y.copy_from_slice(self.v.owned());
    }
}

impl LinOp for HymvGpuOperator {
    fn n_owned(&self) -> usize {
        self.maps.n_owned() * self.ndof
    }

    fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.matvec(comm, x, y);
    }

    fn flops_per_apply(&self) -> u64 {
        self.maps.n_elems as u64 * emv_flops(self.store.nd())
    }

    fn storage_bytes(&self) -> usize {
        self.store.bytes() + (self.bue.len() + self.bve.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_fem::{ElasticityKernel, PoissonKernel};
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    #[test]
    fn gpu_matches_cpu_all_schemes() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        for scheme in [
            GpuScheme::Blocking,
            GpuScheme::OverlapCpu,
            GpuScheme::OverlapGpu,
        ] {
            let ok = Universe::run(2, |comm| {
                let part = &pm.parts[comm.rank()];
                let kernel = PoissonKernel::new(ElementType::Hex8);
                let (mut cpu, _) = HymvOperator::setup(comm, part, &kernel);
                let (mut gpu, _) =
                    HymvGpuOperator::setup(comm, part, &kernel, GpuModel::default(), 4, scheme, 4);
                let x: Vec<f64> = (0..cpu.n_owned())
                    .map(|i| ((i * 3 % 13) as f64) * 0.3 - 1.0)
                    .collect();
                let mut y_c = vec![0.0; cpu.n_owned()];
                let mut y_g = vec![0.0; gpu.n_owned()];
                cpu.matvec(comm, &x, &mut y_c);
                gpu.matvec(comm, &x, &mut y_g);
                y_c.iter().zip(&y_g).all(|(a, b)| (a - b).abs() < 1e-12)
            });
            assert!(ok.iter().all(|&b| b), "{scheme:?}");
        }
    }

    #[test]
    fn more_streams_reduce_makespan() {
        // Same batch, 1 vs 8 streams: pipelining must shrink device time.
        // Latencies are zeroed so the payload (not per-op overhead)
        // dominates even on this test-sized mesh; at paper-scale batches
        // the default model shows the same effect (fig8 -- streams).
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex20).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let model = GpuModel {
            launch_latency: 0.0,
            transfer_latency: 0.0,
            ..GpuModel::default()
        };
        let out = Universe::run(1, |comm| {
            let kernel = ElasticityKernel::new(ElementType::Hex20, 100.0, 0.3, [0.0, 0.0, -1.0]);
            let mut makespans = Vec::new();
            for ns in [1usize, 8] {
                let (mut gpu, _) = HymvGpuOperator::setup(
                    comm,
                    &pm.parts[0],
                    &kernel,
                    model,
                    ns,
                    GpuScheme::Blocking,
                    1,
                );
                let x = vec![1.0; gpu.n_owned()];
                let mut y = vec![0.0; gpu.n_owned()];
                gpu.sim_mut().begin_window();
                gpu.sim_mut().clear_events();
                gpu.matvec(comm, &x, &mut y);
                // The window spans the whole matvec (begin_window inside
                // matvec resets it): use the recorded events instead.
                let ev = gpu.sim().events();
                let t0 = ev.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
                let t1 = ev.iter().map(|e| e.end).fold(0.0, f64::max);
                makespans.push(t1 - t0);
            }
            makespans
        });
        let m = &out[0];
        assert!(
            m[1] < m[0] * 0.85,
            "8 streams {} must beat 1 stream {}",
            m[1],
            m[0]
        );
    }

    #[test]
    fn setup_includes_upload() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (cpu, t_cpu) = HymvOperator::setup(comm, &pm.parts[0], &kernel);
            let bytes = cpu.store().bytes();
            let (gpu, t_gpu) = HymvGpuOperator::setup(
                comm,
                &pm.parts[0],
                &kernel,
                GpuModel::default(),
                2,
                GpuScheme::Blocking,
                1,
            );
            (
                t_cpu.local_copy_s,
                t_gpu.local_copy_s,
                gpu.upload_seconds(),
                bytes,
            )
        });
        let (_cpu_copy, gpu_copy, upload, bytes) = out[0];
        // The GPU setup's copy component carries the modeled upload on top
        // of the host-side local copy (measured CPU time is noisy across
        // the two separate runs, so only the structural relation is
        // asserted).
        let expected = GpuModel::default().h2d_time(bytes);
        assert!((upload - expected).abs() < 1e-12);
        assert!(
            gpu_copy >= upload,
            "copy component {gpu_copy} includes the upload {upload}"
        );
    }

    #[test]
    fn trace_events_cover_three_engines() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (mut gpu, _) = HymvGpuOperator::setup(
                comm,
                &pm.parts[0],
                &kernel,
                GpuModel::default(),
                4,
                GpuScheme::Blocking,
                1,
            );
            let x = vec![1.0; gpu.n_owned()];
            let mut y = vec![0.0; gpu.n_owned()];
            gpu.sim_mut().clear_events();
            gpu.matvec(comm, &x, &mut y);
            gpu.sim().events().to_vec()
        });
        use crate::sim::EventKind;
        let ev = &out[0];
        assert!(ev.iter().any(|e| e.kind == EventKind::H2D));
        assert!(ev.iter().any(|e| e.kind == EventKind::Kernel));
        assert!(ev.iter().any(|e| e.kind == EventKind::D2H));
        // Chunks spread across streams.
        assert!(ev.iter().any(|e| e.stream > 0));
    }
}

//! # hymv-gpu — the GPU execution backend, simulated
//!
//! The paper's HYMV-GPU (§IV-F) uploads the element matrices to the device
//! once at setup and evaluates the SPMV as MAGMA-style **batched EMV**
//! kernels across `Ns` CUDA streams, overlapping H2D transfers, kernel
//! execution, and D2H transfers (Fig 3). The reproduction host has no GPU,
//! so this crate provides a **discrete-event device simulator**
//! ([`DeviceSim`]): operations are scheduled on per-stream and per-engine
//! (H2D copy / compute / D2H copy) timelines with a cost model calibrated
//! to the paper's Quadro RTX 5000 (PCIe 3.0 ×16, Turing FP64 rate, GDDR6
//! bandwidth). Numerics execute on the host bit-exactly; *time* comes from
//! the model and is charged to the rank's virtual clock.
//!
//! What this preserves from the paper (and what it cannot): every
//! scheduling effect — how many streams saturate the copy engines, which
//! overlap scheme wins, where PETSc-GPU pays for its CSR — is reproduced
//! mechanistically; absolute speedups track the calibration constants and
//! are labelled as modeled in EXPERIMENTS.md.
//!
//! Components:
//! * [`model`] — the calibrated cost model;
//! * [`sim`] — streams, engines, event timeline;
//! * [`trace`] — Chrome-trace JSON and ASCII Gantt export (Fig 3);
//! * [`operator`] — [`HymvGpuOperator`]: Algorithm 3 plus the GPU/CPU(O)
//!   and GPU/GPU(O) overlap schemes of §V-D;
//! * [`cusparse`] — the PETSc-GPU (cuSPARSE CSR) baseline of Figs 9/11c.

#![forbid(unsafe_code)]

pub mod cusparse;
pub mod model;
pub mod operator;
pub mod resident;
pub mod sim;
pub mod trace;

pub use cusparse::PetscGpuOperator;
pub use model::GpuModel;
pub use operator::{GpuScheme, HymvGpuOperator};
pub use resident::{gpu_resident_cg, DeviceBlas};
pub use sim::{DeviceSim, EventKind, TraceEvent};

//! Property-based tests of the discrete-event device: scheduling
//! invariants that must hold for any operation sequence.

use proptest::prelude::*;

use hymv_gpu::{DeviceSim, EventKind, GpuModel};

fn any_op() -> impl Strategy<Value = (u8, usize, usize)> {
    // (kind, stream, size)
    (0u8..3, 0usize..4, 1usize..2_000_000)
}

fn run_ops(sim: &mut DeviceSim, ops: &[(u8, usize, usize)]) {
    for (i, &(kind, stream, size)) in ops.iter().enumerate() {
        let s = stream % sim.n_streams();
        match kind {
            0 => sim.h2d(s, size, format!("h{i}")),
            1 => sim.kernel(s, size as u64, size, format!("k{i}")),
            _ => sim.d2h(s, size, format!("d{i}")),
        };
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Events on one stream never overlap; events on one engine never
    /// overlap; makespan ≥ busiest engine; makespan ≤ serial sum.
    #[test]
    fn scheduling_invariants(
        n_streams in 1usize..5,
        ops in proptest::collection::vec(any_op(), 1..40),
    ) {
        let mut sim = DeviceSim::new(GpuModel::default(), n_streams);
        run_ops(&mut sim, &ops);
        let events = sim.events();

        // Per-stream and per-engine: issue order is schedule order, so
        // consecutive events on the same resource must not overlap.
        for group_by_stream in [true, false] {
            let mut last_end: std::collections::HashMap<usize, f64> = Default::default();
            for e in events {
                let key = if group_by_stream {
                    e.stream
                } else {
                    match e.kind {
                        EventKind::H2D => 100,
                        EventKind::Kernel => 101,
                        EventKind::D2H => 102,
                    }
                };
                let prev = last_end.get(&key).copied().unwrap_or(0.0);
                prop_assert!(e.start + 1e-15 >= prev, "overlap on resource {key}");
                last_end.insert(key, e.end);
            }
        }

        // Makespan bounds.
        let makespan = sim.now();
        let serial_sum: f64 = events.iter().map(|e| e.end - e.start).sum();
        prop_assert!(makespan <= serial_sum + 1e-12);
        for kind in [EventKind::H2D, EventKind::Kernel, EventKind::D2H] {
            let busy: f64 = events.iter().filter(|e| e.kind == kind).map(|e| e.end - e.start).sum();
            prop_assert!(makespan + 1e-12 >= busy, "makespan below {kind:?} busy time");
        }
    }

    /// More streams never increase the makespan of a balanced chunked
    /// pipeline (monotonicity of pipelining for latency-free models).
    #[test]
    fn pipelining_is_monotone(
        chunks in 2usize..10,
        bytes in 10_000usize..1_000_000,
    ) {
        let model = GpuModel {
            launch_latency: 0.0,
            transfer_latency: 0.0,
            ..GpuModel::default()
        };
        let mut prev = f64::INFINITY;
        for ns in [1usize, 2, 4, 8] {
            let mut sim = DeviceSim::new(model, ns);
            for c in 0..chunks {
                let s = c % ns;
                sim.h2d(s, bytes, "h");
                sim.kernel(s, (2 * bytes) as u64, bytes * 4, "k");
                sim.d2h(s, bytes, "d");
            }
            let makespan = sim.now();
            prop_assert!(makespan <= prev + 1e-12, "ns={ns}: {makespan} > {prev}");
            prev = makespan;
        }
    }

    /// Window bookkeeping: total elapsed equals the sum of window
    /// makespans when windows partition the schedule.
    #[test]
    fn windows_partition_time(
        ops_a in proptest::collection::vec(any_op(), 1..10),
        ops_b in proptest::collection::vec(any_op(), 1..10),
    ) {
        let mut sim = DeviceSim::new(GpuModel::default(), 2);
        sim.begin_window();
        run_ops(&mut sim, &ops_a);
        let w1 = sim.window_elapsed();
        sim.begin_window();
        run_ops(&mut sim, &ops_b);
        let w2 = sim.window_elapsed();
        prop_assert!((sim.now() - (w1 + w2)).abs() < 1e-12);
    }
}

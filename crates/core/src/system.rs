//! One-call driver assembling a complete FEM system with any of the three
//! SPMV methods — the entry point the examples, integration tests, and
//! every benchmark binary use.

use std::sync::Arc;

use hymv_comm::Comm;
use hymv_fem::dirichlet::{constrained_dofs, DirichletSpec};
use hymv_fem::kernel::{ElementKernel, KernelScratch};
use hymv_la::solver::{cg, CgResult};
use hymv_la::{BlockJacobi, ElementMatrixStore, Identity, Jacobi, LinOp, SerialCsr};
use hymv_mesh::MeshPartition;

use crate::assemble::{
    assemble_rhs, assemble_traction, jacobi_diagonal, owned_block_csr, owned_node_coords,
};
use crate::assembled::AssembledOperator;
use crate::dirichlet_op::{owned_constraints, DirichletOp};
use crate::exchange::GhostExchange;
use crate::hybrid::ParallelMode;
use crate::maps::HymvMaps;
use crate::matfree::MatFreeOperator;
use crate::operator::HymvOperator;

/// Which SPMV implementation backs the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's contribution (Algorithm 2).
    Hymv,
    /// Matrix-free (Algorithm 4).
    MatFree,
    /// Matrix-assembled (PETSc-style distributed CSR).
    Assembled,
}

/// Krylov solver selection for [`FemSystem::solve_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Standard preconditioned CG (PETSc's KSPCG — the paper's solver).
    Cg,
    /// Pipelined CG: one non-blocking reduction per iteration, hidden
    /// behind the SPMV (communication-avoiding extension).
    PipelinedCg,
}

/// Preconditioner selection for [`FemSystem::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondKind {
    /// Unpreconditioned CG.
    None,
    /// Point Jacobi.
    Jacobi,
    /// Block Jacobi (one ILU(0) block per rank).
    BlockJacobi,
}

/// Build options.
#[derive(Clone)]
pub struct BuildOptions {
    /// SPMV method.
    pub method: Method,
    /// Shared-memory parallelization (HYMV only).
    pub mode: ParallelMode,
    /// Pre-assemble the owned diagonal block for block-Jacobi.
    pub want_block_jacobi: bool,
    /// Optional surface traction added to the load vector (the paper's
    /// bar is loaded this way in §V-B).
    pub traction: Option<hymv_fem::traction::TractionSpec>,
}

impl BuildOptions {
    /// Defaults: serial elemental loop, no block preconditioner, no
    /// surface loads.
    pub fn new(method: Method) -> Self {
        BuildOptions {
            method,
            mode: ParallelMode::Serial,
            want_block_jacobi: false,
            traction: None,
        }
    }
}

/// Setup-cost breakdown normalized across methods (the two stacked-bar
/// components of Figs 5 and 7).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SetupBreakdown {
    /// Element-matrix computation time (virtual seconds).
    pub emat_s: f64,
    /// Everything else: HYMV's local copy + map builds, or the assembled
    /// method's triple routing + CSR compression. Zero for matrix-free.
    pub overhead_s: f64,
}

impl SetupBreakdown {
    /// Total setup seconds.
    pub fn total(&self) -> f64 {
        self.emat_s + self.overhead_s
    }
}

/// A ready-to-solve FEM system.
pub struct FemSystem {
    /// Method used.
    pub method: Method,
    /// Dofs per node.
    pub ndof: usize,
    /// The Dirichlet-wrapped operator.
    pub op: DirichletOp<Box<dyn LinOp>>,
    /// Modified right-hand side.
    pub rhs: Vec<f64>,
    /// Owned-node coordinates (error norms).
    pub owned_coords: Vec<[f64; 3]>,
    /// Setup timing breakdown.
    pub setup: SetupBreakdown,
    /// Masked operator diagonal (Jacobi).
    pub diag: Vec<f64>,
    /// Owned diagonal block (block-Jacobi), if requested at build.
    pub block: Option<SerialCsr>,
    /// Bytes the operator stores locally.
    pub storage_bytes: usize,
    /// FLOPs per operator application on this rank.
    pub flops_per_apply: u64,
}

impl FemSystem {
    /// Assemble the system on this rank's partition. Collective.
    pub fn build(
        comm: &mut Comm,
        part: &MeshPartition,
        kernel: Arc<dyn ElementKernel>,
        spec: &DirichletSpec,
        opts: BuildOptions,
    ) -> FemSystem {
        let ndof = kernel.ndof_per_node();
        assert_eq!(
            spec.ndof(),
            ndof,
            "Dirichlet spec dof count must match the kernel"
        );

        // Shared infrastructure (not part of the method-specific setup
        // cost): maps for rhs assembly, coordinates, constraints.
        let maps = HymvMaps::build(part);
        let exchange = GhostExchange::build(comm, &maps);
        let owned_coords = owned_node_coords(&maps, part);
        let global_constraints = constrained_dofs(part, spec);
        let constrained = owned_constraints(&maps, ndof, &global_constraints);

        let mut raw_rhs = assemble_rhs(comm, &maps, &exchange, part, &*kernel);
        if let Some(tr) = &opts.traction {
            assert_eq!(tr.ndof(), ndof, "traction dof count must match the kernel");
            assemble_traction(comm, &maps, &exchange, part, tr, &mut raw_rhs);
        }

        // Method-specific operator + diagonal (+ optional block).
        let (boxed, setup, mut diag, block): (
            Box<dyn LinOp>,
            SetupBreakdown,
            Vec<f64>,
            Option<SerialCsr>,
        ) = match opts.method {
            Method::Hymv => {
                let (mut op, t) = HymvOperator::setup(comm, part, &*kernel);
                op.set_parallel_mode(opts.mode);
                let diag = jacobi_diagonal(comm, op.maps(), op.exchange(), op.store(), ndof);
                let block = if opts.want_block_jacobi {
                    Some(owned_block_csr(
                        comm,
                        op.maps(),
                        op.store(),
                        ndof,
                        &constrained,
                    ))
                } else {
                    None
                };
                let setup = SetupBreakdown {
                    emat_s: t.emat_compute_s,
                    overhead_s: t.local_copy_s + t.maps_s + t.comm_maps_s,
                };
                (Box::new(op), setup, diag, block)
            }
            Method::MatFree => {
                let op = MatFreeOperator::setup(comm, part, Arc::clone(&kernel));
                // Matrix-free Jacobi setup: one transient pass over element
                // matrices (not stored — the diagonal only).
                let diag = {
                    let mut store = ElementMatrixStore::new(kernel.ndof_elem(), maps.n_elems);
                    let mut scratch = KernelScratch::default();
                    for e in 0..maps.n_elems {
                        kernel.compute_ke(part.elem_node_coords(e), store.ke_mut(e), &mut scratch);
                    }
                    jacobi_diagonal(comm, &maps, &exchange, &store, ndof)
                };
                assert!(
                    !opts.want_block_jacobi,
                    "block-Jacobi requires stored matrices (HYMV or assembled)"
                );
                (Box::new(op), SetupBreakdown::default(), diag, None)
            }
            Method::Assembled => {
                let (op, t) = AssembledOperator::setup(comm, part, &*kernel);
                let diag = op.diagonal();
                let block = opts
                    .want_block_jacobi
                    .then(|| mask_csr(&op.matrix().diag, &constrained));
                let setup = SetupBreakdown {
                    emat_s: t.emat_compute_s,
                    overhead_s: t.assembly_s,
                };
                (Box::new(op), setup, diag, block)
            }
        };

        let storage_bytes = boxed.storage_bytes();
        let flops_per_apply = boxed.flops_per_apply();
        let mut op = DirichletOp::new(boxed, constrained);
        op.mask_diagonal(&mut diag);
        let rhs = op.build_rhs(comm, &raw_rhs);

        FemSystem {
            method: opts.method,
            ndof,
            op,
            rhs,
            owned_coords,
            setup,
            diag,
            block,
            storage_bytes,
            flops_per_apply,
        }
    }

    /// Owned dof count.
    pub fn n_owned(&self) -> usize {
        self.op.n_owned()
    }

    /// Solve with standard CG; returns the owned solution and convergence
    /// report.
    pub fn solve(
        &mut self,
        comm: &mut Comm,
        precond: PrecondKind,
        rtol: f64,
        max_iter: usize,
    ) -> (Vec<f64>, CgResult) {
        self.solve_with(comm, SolverKind::Cg, precond, rtol, max_iter)
    }

    /// Solve with an explicit Krylov method.
    pub fn solve_with(
        &mut self,
        comm: &mut Comm,
        solver: SolverKind,
        precond: PrecondKind,
        rtol: f64,
        max_iter: usize,
    ) -> (Vec<f64>, CgResult) {
        let krylov = match solver {
            SolverKind::Cg => cg,
            SolverKind::PipelinedCg => hymv_la::pipelined_cg,
        };
        let mut x = vec![0.0; self.n_owned()];
        let rhs = std::mem::take(&mut self.rhs);
        let res = match precond {
            PrecondKind::None => krylov(
                comm,
                &mut self.op,
                &mut Identity,
                &rhs,
                &mut x,
                rtol,
                max_iter,
            ),
            PrecondKind::Jacobi => {
                let mut pc = Jacobi::new(&self.diag);
                krylov(comm, &mut self.op, &mut pc, &rhs, &mut x, rtol, max_iter)
            }
            PrecondKind::BlockJacobi => {
                let block = self
                    .block
                    .as_ref()
                    .expect("build with want_block_jacobi = true to use BlockJacobi");
                let mut pc = BlockJacobi::ilu0(block);
                krylov(comm, &mut self.op, &mut pc, &rhs, &mut x, rtol, max_iter)
            }
        };
        self.rhs = rhs;
        (x, res)
    }

    /// Run `n` SPMVs on a deterministic vector; returns elapsed virtual
    /// seconds on this rank (the paper's "time for ten SPMV operations").
    pub fn time_spmvs(&mut self, comm: &mut Comm, n: usize) -> f64 {
        let len = self.n_owned();
        let x: Vec<f64> = (0..len).map(|i| ((i % 97) as f64) * 0.01 - 0.5).collect();
        let mut y = vec![0.0; len];
        comm.barrier();
        let vt0 = comm.vt();
        for _ in 0..n {
            self.op.apply(comm, &x, &mut y);
        }
        comm.vt() - vt0
    }

    /// Global infinity-norm error of a nodal solution against an exact
    /// field. Collective.
    pub fn inf_error(
        &self,
        comm: &mut Comm,
        solution: &[f64],
        exact: impl Fn([f64; 3]) -> Vec<f64>,
    ) -> f64 {
        let local = hymv_fem::analytic::inf_error(&self.owned_coords, solution, self.ndof, exact);
        comm.allreduce_max_f64(local)
    }
}

/// Replace constrained rows/columns of a CSR block by the identity
/// (assembled-method block-Jacobi setup).
fn mask_csr(block: &SerialCsr, constrained: &[(u32, f64)]) -> SerialCsr {
    let n = block.n_rows();
    let mut mask = vec![false; n];
    for &(d, _) in constrained {
        mask[d as usize] = true;
    }
    let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(block.nnz());
    for r in 0..n {
        for idx in block.ptr[r]..block.ptr[r + 1] {
            let c = block.cols[idx] as usize;
            if !mask[r] && !mask[c] && block.vals[idx] != 0.0 {
                triples.push((r as u32, c as u32, block.vals[idx]));
            }
        }
    }
    for (d, _) in constrained {
        triples.push((*d, *d, 1.0));
    }
    SerialCsr::from_triples(n, n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_fem::analytic::PoissonProblem;
    use hymv_fem::PoissonKernel;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};

    fn poisson_kernel() -> Arc<dyn ElementKernel> {
        Arc::new(PoissonKernel::with_body(
            ElementType::Hex8,
            PoissonProblem::body(),
        ))
    }

    #[test]
    fn all_methods_solve_poisson_to_same_solution() {
        let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
        let p = 3;
        let pm = partition_mesh(&mesh, p, PartitionMethod::Slabs);
        let mut solutions: Vec<Vec<f64>> = Vec::new();
        let mut errors = Vec::new();
        for method in [Method::Hymv, Method::MatFree, Method::Assembled] {
            let out = Universe::run(p, |comm| {
                let part = &pm.parts[comm.rank()];
                let mut sys = FemSystem::build(
                    comm,
                    part,
                    poisson_kernel(),
                    &PoissonProblem::dirichlet(),
                    BuildOptions::new(method),
                );
                let (x, res) = sys.solve(comm, PrecondKind::Jacobi, 1e-10, 2000);
                assert!(res.converged, "{method:?}: {res:?}");
                let err = sys.inf_error(comm, &x, |p| vec![PoissonProblem::exact(p)]);
                (x, err)
            });
            let mut flat = Vec::new();
            for (x, err) in out {
                flat.extend(x);
                errors.push(err);
            }
            solutions.push(flat);
        }
        // All three methods produce the same discrete solution.
        for s in &solutions[1..] {
            for (a, b) in s.iter().zip(&solutions[0]) {
                assert!((a - b).abs() < 1e-7, "{a} vs {b}");
            }
        }
        // And it approximates the analytic solution (coarse mesh: loose).
        for err in errors {
            assert!(err < 5e-3, "discretization error {err}");
        }
    }

    #[test]
    fn block_jacobi_converges_faster_than_jacobi() {
        // A jittered mesh: on a perfectly uniform grid the sin-product rhs
        // is an exact eigenvector of the discrete Laplacian and CG
        // converges in one iteration regardless of preconditioning.
        let mesh = hymv_mesh::unstructured_hex_mesh(
            6,
            6,
            6,
            ElementType::Hex8,
            [0.0; 3],
            [1.0; 3],
            0.2,
            3,
        );
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        let out = Universe::run(2, |comm| {
            let part = &pm.parts[comm.rank()];
            let mut opts = BuildOptions::new(Method::Hymv);
            opts.want_block_jacobi = true;
            let mut sys = FemSystem::build(
                comm,
                part,
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                opts,
            );
            let (_, rj) = sys.solve(comm, PrecondKind::Jacobi, 1e-10, 2000);
            let (_, rb) = sys.solve(comm, PrecondKind::BlockJacobi, 1e-10, 2000);
            assert!(rj.converged && rb.converged);
            (rj.iterations, rb.iterations)
        });
        let (j, b) = out[0];
        assert!(b < j, "block-Jacobi {b} should beat Jacobi {j}");
    }

    #[test]
    fn time_spmvs_returns_positive_time() {
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        let out = Universe::run(2, |comm| {
            let mut sys = FemSystem::build(
                comm,
                &pm.parts[comm.rank()],
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            sys.time_spmvs(comm, 10)
        });
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn setup_breakdown_ordering() {
        // HYMV overhead (local copy) must be far below assembled overhead
        // (global communication) on a multi-rank run.
        let mesh = StructuredHexMesh::unit(6, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 4, PartitionMethod::Slabs);
        let out = Universe::run(4, |comm| {
            let part = &pm.parts[comm.rank()];
            let h = FemSystem::build(
                comm,
                part,
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            let a = FemSystem::build(
                comm,
                part,
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Assembled),
            );
            let m = FemSystem::build(
                comm,
                part,
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::MatFree),
            );
            (h.setup, a.setup, m.setup)
        });
        for (h, a, m) in out {
            assert_eq!(m.total(), 0.0, "matrix-free has no setup");
            assert!(
                h.overhead_s < a.overhead_s,
                "HYMV overhead {} must beat assembly {}",
                h.overhead_s,
                a.overhead_s
            );
        }
    }

    #[test]
    #[should_panic(expected = "want_block_jacobi")]
    fn block_jacobi_requires_prebuild() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let _ = Universe::run(1, |comm| {
            let mut sys = FemSystem::build(
                comm,
                &pm.parts[0],
                poisson_kernel(),
                &PoissonProblem::dirichlet(),
                BuildOptions::new(Method::Hymv),
            );
            let _ = sys.solve(comm, PrecondKind::BlockJacobi, 1e-6, 10);
        });
    }
}

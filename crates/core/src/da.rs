//! The distributed array (DA): HYMV's partitioned-vector representation.
//!
//! Memory layout (paper Fig 2): `[pre-ghost | owned | post-ghost]` nodes,
//! each carrying `ndof` interleaved components. Elemental extraction and
//! accumulation (`ue ← u(E2L[e])`, `v(E2L[e]) += ve`) are the two hot
//! indexing operations of Algorithm 2.
//!
//! [`DistMultivector`] is the `nvec`-column generalization behind the
//! SpMM path: the same `[pre | owned | post]` dof order, but every dof
//! slot widens to `nvec` contiguous column values
//! (`data[dof·nvec + c]`). That interleaving makes the multivector
//! gather/scatter a contiguous `nvec`-copy per table entry and lets the
//! ghost exchange ship all columns of a fragment in one envelope.

use hymv_la::Multivector;

use crate::maps::HymvMaps;

/// A partitioned vector in DA layout.
#[derive(Debug, Clone)]
pub struct DistArray {
    /// Flat values, `n_total_nodes × ndof`.
    pub data: Vec<f64>,
    /// Components per node.
    pub ndof: usize,
    /// Pre-ghost node count.
    n_pre: usize,
    /// Owned node count.
    n_owned: usize,
}

impl DistArray {
    /// Zero-initialized DA matching `maps`.
    pub fn new(maps: &HymvMaps, ndof: usize) -> Self {
        DistArray {
            data: vec![0.0; maps.n_total() * ndof],
            ndof,
            n_pre: maps.gpre.len(),
            n_owned: maps.n_owned(),
        }
    }

    /// All values.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Owned-dof slice (the vector the solver sees).
    pub fn owned(&self) -> &[f64] {
        &self.data[self.n_pre * self.ndof..(self.n_pre + self.n_owned) * self.ndof]
    }

    /// Mutable owned-dof slice.
    pub fn owned_mut(&mut self) -> &mut [f64] {
        &mut self.data[self.n_pre * self.ndof..(self.n_pre + self.n_owned) * self.ndof]
    }

    /// Copy an owned-dof vector in.
    pub fn set_owned(&mut self, x: &[f64]) {
        self.owned_mut().copy_from_slice(x);
    }

    /// Zero everything (start of an SPMV accumulation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Zero only the ghost regions (before a fresh scatter).
    pub fn zero_ghosts(&mut self) {
        let ndof = self.ndof;
        self.data[..self.n_pre * ndof].fill(0.0);
        self.data[(self.n_pre + self.n_owned) * ndof..].fill(0.0);
    }

    /// Extract the element vector `ue ← u(E2L[e])` into `ue`
    /// (`npe × ndof`, node-major).
    #[inline]
    pub fn extract_elem(&self, local_nodes: &[u32], ue: &mut [f64]) {
        let ndof = self.ndof;
        debug_assert_eq!(ue.len(), local_nodes.len() * ndof);
        match ndof {
            // The two dof counts the paper evaluates, unrolled: the generic
            // path's per-node slice copies dominate small-element EMVs.
            1 => {
                for (u, &l) in ue.iter_mut().zip(local_nodes) {
                    *u = self.data[l as usize];
                }
            }
            3 => {
                for (m, &l) in local_nodes.iter().enumerate() {
                    let src = l as usize * 3;
                    ue[3 * m] = self.data[src];
                    ue[3 * m + 1] = self.data[src + 1];
                    ue[3 * m + 2] = self.data[src + 2];
                }
            }
            _ => {
                for (m, &l) in local_nodes.iter().enumerate() {
                    let src = l as usize * ndof;
                    ue[m * ndof..(m + 1) * ndof].copy_from_slice(&self.data[src..src + ndof]);
                }
            }
        }
    }

    /// Accumulate the element vector `v(E2L[e]) += ve`.
    #[inline]
    pub fn accumulate_elem(&mut self, local_nodes: &[u32], ve: &[f64]) {
        let ndof = self.ndof;
        debug_assert_eq!(ve.len(), local_nodes.len() * ndof);
        match ndof {
            1 => {
                for (&v, &l) in ve.iter().zip(local_nodes) {
                    self.data[l as usize] += v;
                }
            }
            3 => {
                for (m, &l) in local_nodes.iter().enumerate() {
                    let dst = l as usize * 3;
                    self.data[dst] += ve[3 * m];
                    self.data[dst + 1] += ve[3 * m + 1];
                    self.data[dst + 2] += ve[3 * m + 2];
                }
            }
            _ => {
                for (m, &l) in local_nodes.iter().enumerate() {
                    let dst = l as usize * ndof;
                    for c in 0..ndof {
                        self.data[dst + c] += ve[m * ndof + c];
                    }
                }
            }
        }
    }

    /// Pre-ghost node count.
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Owned node count.
    pub fn n_owned_nodes(&self) -> usize {
        self.n_owned
    }
}

/// A partitioned multivector in DA layout: DA dof order, `nvec`
/// contiguous column values per dof (`data[dof·nvec + c]`). The solver
/// boundary is column-major ([`Multivector`]); the transposes happen once
/// per SpMM at the owned block and are O(`n·nvec`) against the O(`nd²·bw`)
/// elemental work they bracket.
#[derive(Debug, Clone)]
pub struct DistMultivector {
    /// Flat values, `n_total_nodes × ndof × nvec`.
    pub data: Vec<f64>,
    /// Components per node.
    pub ndof: usize,
    /// Vector columns per dof.
    pub nvec: usize,
    /// Pre-ghost node count.
    n_pre: usize,
    /// Owned node count.
    n_owned: usize,
}

impl DistMultivector {
    /// Zero-initialized multivector DA matching `maps`.
    pub fn new(maps: &HymvMaps, ndof: usize, nvec: usize) -> Self {
        assert!(nvec > 0, "multivector DA must have at least one column");
        DistMultivector {
            data: vec![0.0; maps.n_total() * ndof * nvec],
            ndof,
            nvec,
            n_pre: maps.gpre.len(),
            n_owned: maps.n_owned(),
        }
    }

    /// Owned dofs per column.
    pub fn n_owned_dofs(&self) -> usize {
        self.n_owned * self.ndof
    }

    /// Pre-ghost node count.
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Zero everything (start of an SpMM accumulation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Transpose a column-major owned multivector into the owned block.
    pub fn set_owned(&mut self, x: &Multivector) {
        assert_eq!(x.nrows(), self.n_owned_dofs(), "owned row mismatch");
        assert_eq!(x.nvec(), self.nvec, "column-count mismatch");
        let base = self.n_pre * self.ndof;
        for c in 0..self.nvec {
            let col = x.col(c);
            for (i, &v) in col.iter().enumerate() {
                self.data[(base + i) * self.nvec + c] = v;
            }
        }
    }

    /// Transpose the owned block out into a column-major multivector.
    pub fn copy_owned_to(&self, y: &mut Multivector) {
        assert_eq!(y.nrows(), self.n_owned_dofs(), "owned row mismatch");
        assert_eq!(y.nvec(), self.nvec, "column-count mismatch");
        let base = self.n_pre * self.ndof;
        for c in 0..self.nvec {
            let col = y.col_mut(c);
            for (i, v) in col.iter_mut().enumerate() {
                *v = self.data[(base + i) * self.nvec + c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_mesh::{ElementType, MeshPartition};

    fn two_ghost_maps() -> HymvMaps {
        // 1 element referencing pre-ghost 0, owned 5,6, post-ghost 9.
        let part = MeshPartition {
            rank: 1,
            elem_type: ElementType::Tet4,
            e2g: vec![0, 5, 6, 9],
            node_range: (5, 7),
            elem_coords: vec![[0.0; 3]; 4],
            elem_global_ids: vec![0],
            n_global_nodes: 10,
        };
        HymvMaps::build(&part)
    }

    #[test]
    fn layout_regions() {
        let maps = two_ghost_maps();
        let mut da = DistArray::new(&maps, 2);
        assert_eq!(da.data.len(), 8); // 4 nodes × 2 dofs
        da.set_owned(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(da.owned(), &[1.0, 2.0, 3.0, 4.0]);
        // Pre-ghost region untouched.
        assert_eq!(&da.data[..2], &[0.0, 0.0]);
    }

    #[test]
    fn extract_and_accumulate_round_trip() {
        let maps = two_ghost_maps();
        let mut da = DistArray::new(&maps, 1);
        da.data.copy_from_slice(&[10.0, 20.0, 30.0, 40.0]); // pre, o, o, post
        let nodes = maps.elem_local_nodes(0);
        let mut ue = vec![0.0; 4];
        da.extract_elem(nodes, &mut ue);
        assert_eq!(ue, vec![10.0, 20.0, 30.0, 40.0]);

        da.accumulate_elem(nodes, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(da.data, vec![11.0, 21.0, 31.0, 41.0]);
    }

    #[test]
    fn zero_ghosts_preserves_owned() {
        let maps = two_ghost_maps();
        let mut da = DistArray::new(&maps, 1);
        da.data.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        da.zero_ghosts();
        assert_eq!(da.data, vec![0.0, 2.0, 3.0, 0.0]);
        da.fill_zero();
        assert!(da.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multivector_da_owned_round_trip() {
        let maps = two_ghost_maps();
        // 2 owned nodes × 2 dofs × 3 columns.
        let mut mda = DistMultivector::new(&maps, 2, 3);
        assert_eq!(mda.data.len(), 4 * 2 * 3);
        let x = Multivector::from_columns(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![5.0, 6.0, 7.0, 8.0],
            vec![9.0, 10.0, 11.0, 12.0],
        ]);
        mda.set_owned(&x);
        // Owned dof 0 (node 1 in DA order) holds its 3 column values
        // contiguously.
        let base = mda.n_pre() * 2 * 3;
        assert_eq!(&mda.data[base..base + 3], &[1.0, 5.0, 9.0]);
        let mut y = Multivector::new(4, 3);
        mda.copy_owned_to(&mut y);
        assert_eq!(y, x);
        // Ghost regions untouched by set_owned.
        assert!(mda.data[..base].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_dof_interleaving() {
        let maps = two_ghost_maps();
        let mut da = DistArray::new(&maps, 3);
        let nodes = maps.elem_local_nodes(0);
        // Put node-id-dependent values via accumulate.
        let ve: Vec<f64> = (0..12).map(|i| i as f64).collect();
        da.accumulate_elem(nodes, &ve);
        // Node 1 of the element is owned node 5 → local node 1 → dofs 3..6.
        assert_eq!(&da.data[3..6], &[3.0, 4.0, 5.0]);
        let mut ue = vec![0.0; 12];
        da.extract_elem(nodes, &mut ue);
        assert_eq!(ue, ve);
    }
}

//! # hymv-core — the adaptive-matrix SPMV (HYMV)
//!
//! This crate is the paper's primary contribution: a hybrid SPMV for FEM
//! systems that stores element matrices locally (computed once at setup,
//! updated selectively on refinement/enrichment) and evaluates the global
//! operator element-by-element with communication/computation overlap —
//! "global sparse linear algebra → local dense linear algebra".
//!
//! The pieces, following the paper's §IV:
//!
//! * [`maps`] — the `E2L` map (Algorithm 1), pre/post ghost identification,
//!   and the independent/dependent element split;
//! * [`exchange`] — the communication maps `LNSM` and `GNGM` and the
//!   non-blocking ghost scatter / ghost-accumulate they drive;
//! * [`da`] — the distributed array (`[pre-ghost | owned | post-ghost]`
//!   layout of Fig 2);
//! * [`operator`] — [`HymvOperator`]: setup (element-matrix computation +
//!   local copy — **no global assembly**), the SPMV of Algorithm 2, and the
//!   adaptive per-element update path;
//! * [`hybrid`] — shared-memory ("OpenMP") parallelization of the local
//!   elemental loop: element coloring or chunk-private accumulation;
//! * [`block`] — the batched element-block engine (`BlockPlan`): subsets
//!   cut into locality-sorted blocks of `B` elements with flattened
//!   gather/scatter tables, evaluated by the batch-vectorized EMV kernels
//!   (the default CPU SPMV path; `HYMV_EMV_BATCH` overrides `B`);
//! * [`matfree`] — the matrix-free baseline (Algorithm 4: recompute `Ke`
//!   inside every SPMV);
//! * [`assembled`] — the matrix-assembled baseline (PETSc-style
//!   triple-routed global assembly into a distributed CSR);
//! * [`dirichlet_op`] — the Dirichlet wrapper applied identically around
//!   all three operators;
//! * [`assemble`] — right-hand-side assembly, diagonal extraction (Jacobi),
//!   owned-block extraction (block-Jacobi), nodal coordinate recovery;
//! * [`system`] — a one-call driver (`FemSystem`) used by the examples,
//!   tests, and every benchmark binary.

// Unsafe is confined to audited, SAFETY-commented sites (`#[allow]`ed
// per item); everything else is checked.
#![deny(unsafe_code)]

pub mod assemble;
pub mod assembled;
pub mod block;
pub mod da;
pub mod dirichlet_op;
pub mod exchange;
pub mod hybrid;
pub mod maps;
pub mod matfree;
pub mod operator;
pub mod system;

pub use assembled::AssembledOperator;
pub use block::{
    batch_width_from_env, nvec_width_from_env, parse_batch_width, parse_nvec_width, BlockPlan,
    BlockSet, BATCH_ENV, DEFAULT_BATCH_WIDTH, DEFAULT_NVEC_WIDTH, NVEC_ENV,
};
pub use da::{DistArray, DistMultivector};
pub use dirichlet_op::DirichletOp;
pub use exchange::GhostExchange;
pub use hybrid::ParallelMode;
pub use maps::HymvMaps;
pub use matfree::MatFreeOperator;
pub use operator::{HymvOperator, SetupTimings};
pub use system::{FemSystem, Method};

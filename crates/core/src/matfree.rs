//! The matrix-free baseline (paper Algorithm 4): identical communication
//! structure to HYMV, but element matrices are **recomputed inside every
//! SPMV** instead of loaded from memory.

use std::sync::Arc;

use hymv_comm::Comm;
use hymv_fem::kernel::{ElementKernel, KernelScratch};
use hymv_la::dense::{
    emv_batch_flops, emv_flops, interleave_ke, select_batch_kernel, select_kernel, EmvBatchKernel,
};
use hymv_la::LinOp;
use hymv_mesh::MeshPartition;
use hymv_trace::Phase;

use crate::block::{batch_width_from_env, BlockPlan};
use crate::da::DistArray;
use crate::exchange::GhostExchange;
use crate::maps::HymvMaps;

/// The matrix-free operator.
pub struct MatFreeOperator {
    maps: HymvMaps,
    exchange: GhostExchange,
    kernel: Arc<dyn ElementKernel>,
    /// Per-element nodal coordinates (the mesh data the recomputation
    /// needs), flat `n_elems × npe`.
    elem_coords: Vec<[f64; 3]>,
    ndof: usize,
    u: DistArray,
    v: DistArray,
    /// Block tables shared with HYMV's batched engine (matrices are still
    /// recomputed per apply — the slabs stay in [`Self::keb`] scratch).
    /// `None` exactly when the batch width is 1.
    plan: Option<BlockPlan>,
    batch_kernel: EmvBatchKernel,
    ke: Vec<f64>,
    /// Batch-interleaved scratch slab, `nd² × bw` (batched path only).
    keb: Vec<f64>,
    ue: Vec<f64>,
    ve: Vec<f64>,
    scratch: KernelScratch,
}

impl MatFreeOperator {
    /// Setup: maps and communication plan only — there is no matrix setup
    /// cost in the matrix-free method (the paper's figures show no setup
    /// bar for it). Collective.
    pub fn setup(comm: &mut Comm, part: &MeshPartition, kernel: Arc<dyn ElementKernel>) -> Self {
        let setup_span = hymv_trace::SpanGuard::open(Phase::Setup, comm.vt());
        let ndof = kernel.ndof_per_node();
        let nd = kernel.ndof_elem();
        let maps = comm.traced(Phase::MapsBuild, |comm| {
            comm.work_with(|_| HymvMaps::build(part))
        });
        let exchange = GhostExchange::build(comm, &maps);
        let u = DistArray::new(&maps, ndof);
        let v = DistArray::new(&maps, ndof);
        let bw = batch_width_from_env();
        // Gather/scatter tables only — matrices are recomputed per apply,
        // so no store is attached and no slabs are allocated in the plan.
        let plan = comm.traced(Phase::PlanBuild, |comm| {
            comm.work_with(|_| (bw > 1).then(|| BlockPlan::build(&maps, ndof, bw)))
        });
        setup_span.close(comm.vt());
        MatFreeOperator {
            maps,
            exchange,
            kernel,
            elem_coords: part.elem_coords.clone(),
            ndof,
            u,
            v,
            plan,
            batch_kernel: select_batch_kernel(bw),
            ke: vec![0.0; nd * nd],
            keb: vec![0.0; if bw > 1 { nd * nd * bw } else { 0 }],
            ue: vec![0.0; nd * bw],
            ve: vec![0.0; nd * bw],
            scratch: KernelScratch::default(),
        }
    }

    /// The maps (tests, diagnostics).
    pub fn maps(&self) -> &HymvMaps {
        &self.maps
    }

    /// Current batch width (`1` = per-element legacy path).
    pub fn batch_width(&self) -> usize {
        self.plan.as_ref().map_or(1, |p| p.batch_width())
    }

    fn run_subset(&mut self, comm: &mut Comm, dependent: bool) {
        let npe = self.maps.npe;
        if let Some(plan) = &self.plan {
            let (nd, bw) = (plan.nd(), plan.batch_width());
            let set = plan.set(dependent);
            let batch_kernel = self.batch_kernel;
            let (kernel, coords, u, v) = (&*self.kernel, &self.elem_coords, &self.u, &mut self.v);
            let (ke, keb, ue, ve, scratch) = (
                &mut self.ke,
                &mut self.keb,
                &mut self.ue,
                &mut self.ve,
                &mut self.scratch,
            );
            comm.work(|| {
                for k in 0..set.n_blocks() {
                    let len = set.len(k);
                    if len < bw {
                        // Tail block: padded lanes must multiply by zero.
                        keb.fill(0.0);
                    }
                    for (b, &e) in set.elems(k).iter().enumerate().take(len) {
                        let e = e as usize;
                        // The defining step of Algorithm 4: compute Ke here.
                        kernel.compute_ke(&coords[e * npe..(e + 1) * npe], ke, scratch);
                        interleave_ke(ke, keb, nd, bw, b);
                    }
                    set.gather(k, &u.data, ue);
                    batch_kernel(keb, ue, ve, nd, bw);
                    set.scatter_with(k, ve, |i, val| v.data[i] += val);
                }
            });
            return;
        }
        let subset: &[u32] = if dependent {
            &self.maps.dependent
        } else {
            &self.maps.independent
        };
        let emv = select_kernel();
        let (maps, kernel, coords, u, v) = (
            &self.maps,
            &*self.kernel,
            &self.elem_coords,
            &self.u,
            &mut self.v,
        );
        let (ke, ue, ve, scratch) = (&mut self.ke, &mut self.ue, &mut self.ve, &mut self.scratch);
        comm.work(|| {
            for &e in subset {
                let e = e as usize;
                let nodes = maps.elem_local_nodes(e);
                u.extract_elem(nodes, ue);
                // The defining step of Algorithm 4: compute Ke here.
                kernel.compute_ke(&coords[e * npe..(e + 1) * npe], ke, scratch);
                emv(ke, ue, ve);
                v.accumulate_elem(nodes, ve);
            }
        });
    }

    /// Bench/ablation hook: bypass the envelope wire format on the
    /// per-SPMV scatter/gather (see [`GhostExchange::set_raw_transport`]).
    pub fn set_raw_exchange(&mut self, raw: bool) {
        self.exchange.set_raw_transport(raw);
    }

    /// Algorithm 4: matrix-free SPMV (with the same overlap structure as
    /// Algorithm 2). Like [`HymvOperator::matvec`] it degrades to the
    /// blocking schedule once the reliable channel reports persistent
    /// timeouts.
    pub fn matvec(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        if comm.degraded() {
            return self.matvec_blocking(comm, x, y);
        }
        self.v.fill_zero();
        self.u.set_owned(x);
        self.exchange.scatter_begin(comm, &self.u);
        comm.traced(Phase::IndepEmv, |comm| self.run_subset(comm, false));
        self.exchange.scatter_end(comm, &mut self.u);
        comm.traced(Phase::DepEmv, |comm| self.run_subset(comm, true));
        self.exchange.gather_begin(comm, &self.v);
        self.exchange.gather_end(comm, &mut self.v);
        hymv_trace::counter_add("hymv_emv_flops_total", &[], self.flops_per_apply());
        y.copy_from_slice(self.v.owned());
    }

    /// Non-overlapped matrix-free SPMV: blocking exchange up front, then
    /// all elements (ablation counterpart / degraded-mode schedule).
    pub fn matvec_blocking(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.v.fill_zero();
        self.u.set_owned(x);
        self.exchange.scatter_begin(comm, &self.u);
        self.exchange.scatter_end(comm, &mut self.u);
        comm.traced(Phase::IndepEmv, |comm| self.run_subset(comm, false));
        comm.traced(Phase::DepEmv, |comm| self.run_subset(comm, true));
        self.exchange.gather_begin(comm, &self.v);
        self.exchange.gather_end(comm, &mut self.v);
        hymv_trace::counter_add("hymv_emv_flops_total", &[], self.flops_per_apply());
        y.copy_from_slice(self.v.owned());
    }
}

impl LinOp for MatFreeOperator {
    fn n_owned(&self) -> usize {
        self.maps.n_owned() * self.ndof
    }

    fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        self.matvec(comm, x, y);
    }

    fn flops_per_apply(&self) -> u64 {
        let nd = self.kernel.ndof_elem();
        // Ke recomputation runs per live element either way; the EMV part
        // executes padded tail lanes on the batched path.
        let ke = self.maps.n_elems as u64 * self.kernel.ke_flops();
        let emv = match &self.plan {
            Some(plan) => plan.n_blocks_total() as u64 * emv_batch_flops(nd, plan.batch_width()),
            None => self.maps.n_elems as u64 * emv_flops(nd),
        };
        ke + emv
    }

    fn storage_bytes(&self) -> usize {
        // Only the mesh coordinates — the matrix-free advantage.
        self.elem_coords.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::HymvOperator;
    use hymv_comm::Universe;
    use hymv_fem::{ElasticityKernel, PoissonKernel};
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{unstructured_tet_mesh, ElementType, StructuredHexMesh};

    /// The golden equivalence: matrix-free SPMV == HYMV SPMV, for scalar
    /// and vector operators, structured and unstructured meshes.
    #[test]
    fn matfree_equals_hymv() {
        let cases: Vec<(hymv_mesh::GlobalMesh, Arc<dyn ElementKernel>)> = vec![
            (
                StructuredHexMesh::unit(3, ElementType::Hex8).build(),
                Arc::new(PoissonKernel::new(ElementType::Hex8)),
            ),
            (
                StructuredHexMesh::unit(2, ElementType::Hex20).build(),
                Arc::new(ElasticityKernel::new(
                    ElementType::Hex20,
                    100.0,
                    0.3,
                    [0.0, 0.0, -1.0],
                )),
            ),
            (
                unstructured_tet_mesh(2, ElementType::Tet10, 0.12, 7),
                Arc::new(PoissonKernel::new(ElementType::Tet10)),
            ),
        ];
        for (mesh, kernel) in cases {
            let p = 3;
            let pm = partition_mesh(&mesh, p, PartitionMethod::GreedyGraph);
            let ok = Universe::run(p, |comm| {
                let part = &pm.parts[comm.rank()];
                let (mut hymv, _) = HymvOperator::setup(comm, part, &*kernel);
                let mut mf = MatFreeOperator::setup(comm, part, Arc::clone(&kernel));
                assert_eq!(hymv.n_owned(), mf.n_owned());
                let x: Vec<f64> = (0..hymv.n_owned())
                    .map(|i| ((i * 7 % 23) as f64) * 0.1 - 1.0)
                    .collect();
                let mut y_h = vec![0.0; hymv.n_owned()];
                let mut y_m = vec![0.0; mf.n_owned()];
                hymv.matvec(comm, &x, &mut y_h);
                mf.matvec(comm, &x, &mut y_m);
                y_h.iter().zip(&y_m).all(|(a, b)| (a - b).abs() < 1e-10)
            });
            assert!(ok.iter().all(|&b| b), "{:?}", mesh.elem_type);
        }
    }

    #[test]
    fn matfree_flops_exceed_hymv() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let out = Universe::run(1, |comm| {
            let kernel: Arc<dyn ElementKernel> = Arc::new(PoissonKernel::new(ElementType::Hex8));
            let (hymv, _) = HymvOperator::setup(comm, &pm.parts[0], &*kernel);
            let mf = MatFreeOperator::setup(comm, &pm.parts[0], kernel);
            (
                hymv.flops_per_apply(),
                mf.flops_per_apply(),
                hymv.storage_bytes(),
                mf.storage_bytes(),
            )
        });
        let (h_flops, m_flops, h_bytes, m_bytes) = out[0];
        assert!(
            m_flops > 5 * h_flops,
            "matrix-free must do far more work: {h_flops} vs {m_flops}"
        );
        assert!(
            m_bytes < h_bytes,
            "matrix-free must store far less: {h_bytes} vs {m_bytes}"
        );
    }
}

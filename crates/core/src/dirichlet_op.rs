//! The Dirichlet wrapper: identical boundary-condition treatment around
//! every SPMV method.
//!
//! The wrapped operator is `K̂ = [K_ii 0; 0 I]` (constrained rows/columns
//! replaced by identity), with the eliminated coupling moved to the
//! right-hand side: `f̂_i = f_i − K_ib ū`, `f̂_b = ū`. Masking is local:
//! constrained dofs are geometric, so every rank masks its own owned dofs
//! and the ghost values exchanged inside the raw operator are consistent
//! automatically.

use hymv_comm::Comm;
use hymv_la::{LinOp, MultiLinOp, Multivector};

use crate::maps::HymvMaps;

/// `K̂` — a raw operator with Dirichlet rows/columns replaced by identity.
pub struct DirichletOp<O> {
    inner: O,
    /// Constrained owned dofs: `(local owned dof index, prescribed value)`.
    constrained: Vec<(u32, f64)>,
    /// Scratch for the masked input vector.
    xm: Vec<f64>,
    /// Masked-input scratch for the multivector path (rebuilt when the
    /// requested `nvec` changes).
    xm_mv: Option<Multivector>,
}

impl<O: LinOp> DirichletOp<O> {
    /// Wrap `inner`; `constrained` lists this rank's owned constrained
    /// dofs with their prescribed values.
    pub fn new(inner: O, constrained: Vec<(u32, f64)>) -> Self {
        let n = inner.n_owned();
        for &(d, _) in &constrained {
            assert!((d as usize) < n, "constrained dof {d} out of range {n}");
        }
        let xm = vec![0.0; n];
        DirichletOp {
            inner,
            constrained,
            xm,
            xm_mv: None,
        }
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped operator (adaptive updates).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// The constrained dof list.
    pub fn constrained(&self) -> &[(u32, f64)] {
        &self.constrained
    }

    /// Build the modified right-hand side: `f̂ = f − K x_b` on free dofs,
    /// `f̂ = ū` on constrained dofs. `raw_f` is the unconstrained load
    /// vector (owned dofs). Collective (applies the raw operator once).
    pub fn build_rhs(&mut self, comm: &mut Comm, raw_f: &[f64]) -> Vec<f64> {
        let n = self.inner.n_owned();
        assert_eq!(raw_f.len(), n);
        // x_b: prescribed values at constrained dofs, zero elsewhere.
        let mut xb = vec![0.0; n];
        for &(d, v) in &self.constrained {
            xb[d as usize] = v;
        }
        let mut kxb = vec![0.0; n];
        self.inner.apply(comm, &xb, &mut kxb);
        let mut rhs: Vec<f64> = raw_f.iter().zip(&kxb).map(|(f, k)| f - k).collect();
        for &(d, v) in &self.constrained {
            rhs[d as usize] = v;
        }
        rhs
    }

    /// Post-process an operator diagonal for use in preconditioners:
    /// constrained dofs get 1 (the identity rows of `K̂`).
    pub fn mask_diagonal(&self, diag: &mut [f64]) {
        for &(d, _) in &self.constrained {
            diag[d as usize] = 1.0;
        }
    }
}

impl<O: LinOp> LinOp for DirichletOp<O> {
    fn n_owned(&self) -> usize {
        self.inner.n_owned()
    }

    fn apply(&mut self, comm: &mut Comm, x: &[f64], y: &mut [f64]) {
        // Mask constrained inputs…
        self.xm.copy_from_slice(x);
        for &(d, _) in &self.constrained {
            self.xm[d as usize] = 0.0;
        }
        self.inner.apply(comm, &self.xm, y);
        // …and overwrite constrained outputs with the identity action.
        for &(d, _) in &self.constrained {
            y[d as usize] = x[d as usize];
        }
    }

    fn flops_per_apply(&self) -> u64 {
        self.inner.flops_per_apply()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    fn repair(&mut self, comm: &mut Comm, dead: &[usize]) {
        self.inner.repair(comm, dead);
    }
}

impl<O: MultiLinOp> MultiLinOp for DirichletOp<O> {
    fn apply_mv(&mut self, comm: &mut Comm, x: &Multivector, y: &mut Multivector) {
        // Mask constrained inputs in every column…
        if self
            .xm_mv
            .as_ref()
            .is_none_or(|m| m.nvec() != x.nvec() || m.nrows() != x.nrows())
        {
            self.xm_mv = Some(Multivector::new(x.nrows(), x.nvec()));
        }
        let xm = self.xm_mv.as_mut().expect("built above");
        xm.copy_from(x);
        for c in 0..x.nvec() {
            let col = xm.col_mut(c);
            for &(d, _) in &self.constrained {
                col[d as usize] = 0.0;
            }
        }
        self.inner.apply_mv(comm, xm, y);
        // …and overwrite constrained outputs with the identity action.
        for c in 0..x.nvec() {
            let (xc, yc) = (x.col(c), y.col_mut(c));
            for &(d, _) in &self.constrained {
                yc[d as usize] = xc[d as usize];
            }
        }
    }
}

/// Convert a global constrained-dof list (from
/// `hymv_fem::dirichlet::constrained_dofs`) to this rank's owned local
/// indices.
pub fn owned_constraints(maps: &HymvMaps, ndof: usize, global: &[(u64, f64)]) -> Vec<(u32, f64)> {
    let lo = maps.node_range.0 * ndof as u64;
    let hi = maps.node_range.1 * ndof as u64;
    global
        .iter()
        .filter(|&&(d, _)| d >= lo && d < hi)
        .map(|&(d, v)| ((d - lo) as u32, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_la::solver::cg;
    use hymv_la::Identity;

    /// A toy serial SPD operator.
    struct ToyOp {
        a: Vec<f64>, // column-major n×n
        n: usize,
    }

    impl LinOp for ToyOp {
        fn n_owned(&self) -> usize {
            self.n
        }
        fn apply(&mut self, _comm: &mut Comm, x: &[f64], y: &mut [f64]) {
            y.fill(0.0);
            for j in 0..self.n {
                for i in 0..self.n {
                    y[i] += self.a[j * self.n + i] * x[j];
                }
            }
        }
    }

    impl MultiLinOp for ToyOp {}

    fn laplacian_1d(n: usize) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 2.0;
            if i > 0 {
                a[(i - 1) * n + i] = -1.0;
                a[i * n + (i - 1)] = -1.0;
            }
        }
        a
    }

    #[test]
    fn wrapped_apply_is_identity_on_constrained() {
        let n = 6;
        let out = Universe::run(1, |comm| {
            let op = ToyOp {
                a: laplacian_1d(n),
                n,
            };
            let mut w = DirichletOp::new(op, vec![(0, 5.0), (5, -1.0)]);
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut y = vec![0.0; n];
            w.apply(comm, &x, &mut y);
            y
        });
        let y = &out[0];
        assert_eq!(y[0], 0.0); // identity: returns x[0] = 0
        assert_eq!(y[5], 5.0); // identity: returns x[5] = 5
                               // Interior row 1 of the masked operator: 2·x1 − x2 (x0 masked out).
        assert!((y[1] - (2.0 * 1.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_1d_poisson_with_nonzero_bc() {
        // −u'' = 0 on a 1D chain with u(0)=1, u(L)=3 → linear profile.
        let n = 9;
        let out = Universe::run(1, |comm| {
            let op = ToyOp {
                a: laplacian_1d(n),
                n,
            };
            let mut w = DirichletOp::new(op, vec![(0, 1.0), (8, 3.0)]);
            let rhs = w.build_rhs(comm, &vec![0.0; n]);
            let mut x = vec![0.0; n];
            let res = cg(comm, &mut w, &mut Identity, &rhs, &mut x, 1e-12, 200);
            assert!(res.converged);
            x
        });
        let x = &out[0];
        for (i, &v) in x.iter().enumerate() {
            let want = 1.0 + 2.0 * i as f64 / 8.0;
            assert!((v - want).abs() < 1e-8, "node {i}: {v} vs {want}");
        }
    }

    /// The multivector wrapper masks and restores every column exactly
    /// like `nvec` single-column applies.
    #[test]
    fn wrapped_apply_mv_matches_per_column() {
        let n = 6;
        let out = Universe::run(1, |comm| {
            let op = ToyOp {
                a: laplacian_1d(n),
                n,
            };
            let mut w = DirichletOp::new(op, vec![(0, 5.0), (4, -1.0)]);
            let cols: Vec<Vec<f64>> = (0..3)
                .map(|c| (0..n).map(|i| (i + c) as f64 * 0.5 - 1.0).collect())
                .collect();
            let x = Multivector::from_columns(&cols);
            let mut y_ref = Multivector::new(n, 3);
            let mut yc = vec![0.0; n];
            for c in 0..3 {
                w.apply(comm, x.col(c), &mut yc);
                y_ref.col_mut(c).copy_from_slice(&yc);
            }
            let mut y = Multivector::new(n, 3);
            w.apply_mv(comm, &x, &mut y);
            (y, y_ref)
        });
        let (y, y_ref) = &out[0];
        assert_eq!(y, y_ref);
    }

    #[test]
    fn mask_diagonal_sets_ones() {
        let op = ToyOp {
            a: laplacian_1d(3),
            n: 3,
        };
        let w = DirichletOp::new(op, vec![(1, 0.0)]);
        let mut d = vec![2.0, 2.0, 2.0];
        w.mask_diagonal(&mut d);
        assert_eq!(d, vec![2.0, 1.0, 2.0]);
    }

    #[test]
    fn owned_constraints_filters_and_localizes() {
        use hymv_mesh::{ElementType, MeshPartition};
        let part = MeshPartition {
            rank: 1,
            elem_type: ElementType::Tet4,
            e2g: vec![0, 5, 6, 9],
            node_range: (5, 7),
            elem_coords: vec![[0.0; 3]; 4],
            elem_global_ids: vec![0],
            n_global_nodes: 10,
        };
        let maps = HymvMaps::build(&part);
        // ndof = 2: owned dof range is [10, 14).
        let global = vec![(0u64, 1.0), (10, 2.0), (13, 3.0), (18, 4.0)];
        let local = owned_constraints(&maps, 2, &global);
        assert_eq!(local, vec![(0, 2.0), (3, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_constraint_rejected() {
        let op = ToyOp {
            a: laplacian_1d(3),
            n: 3,
        };
        let _ = DirichletOp::new(op, vec![(7, 0.0)]);
    }
}

//! The batched element-block engine: `BlockPlan` and the blocked EMV
//! loops that are HYMV's default CPU SPMV path.
//!
//! The per-element loop of [`crate::hybrid`] walks one element at a time —
//! a gather, one `nd × nd` EMV, a scatter — so SIMD lanes are capped by
//! `nd` and every element pays dispatch and map-lookup overhead. The block
//! engine cuts each element subset (independent / dependent) into blocks
//! of `bw` elements and evaluates `Ve = Ke_b · Ue` with the batched
//! kernels of [`hymv_la::dense`], vectorizing **across the batch**:
//!
//! * element matrices are re-laid out batch-interleaved
//!   (`keb[(j·nd+i)·bw + b]`), so each matrix entry position is a
//!   unit-stride strip of `bw` lanes;
//! * per-block gather/scatter index tables are flattened from `E2L` at
//!   plan build time — the inner loop does zero map lookups;
//! * blocks are ordered by a locality sort (min local-node index) so
//!   consecutive blocks reuse cached stretches of `u`;
//! * a ragged tail (`subset.len() % bw ≠ 0`) is padded with zeroed
//!   matrices and gather index 0; the scatter is lane-bounded so padded
//!   lanes never write (keeping results bitwise independent of padding).
//!
//! Blocks are also the parallel grain: coloring moves to block
//! granularity and chunk-private chunks whole blocks.

use rayon::prelude::*;

use hymv_la::dense::{interleave_ke, EmvBatchKernel, EmvBatchMvKernel, MAX_BATCH_WIDTH};
use hymv_la::{ElementMatrixStore, MAX_NVEC_WIDTH};

use crate::da::{DistArray, DistMultivector};
use crate::hybrid::{on_rank_pool, RacyTarget};
use crate::maps::HymvMaps;

/// Environment variable selecting the batch width (`B=1` recovers the
/// per-element path; invalid values are a hard error, never a clamp).
pub const BATCH_ENV: &str = "HYMV_EMV_BATCH";

/// Default batch width: one AVX-512 vector (two AVX2 vectors) of lanes —
/// wide enough to amortize per-block overhead, small enough that the
/// `nd × bw` panels of even Hex27 elasticity (nd = 81) stay L1-resident.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Parse a batch-width string. The one validation path shared by the
/// `HYMV_EMV_BATCH` reader and the `--batch` CLI flags: `0`, values above
/// [`MAX_BATCH_WIDTH`], and non-numeric input are errors with a message
/// saying exactly what was wrong — silently clamping would make a typo'd
/// width run a different kernel than the one the user asked to measure.
pub fn parse_batch_width(s: &str) -> Result<usize, String> {
    let t = s.trim();
    match t.parse::<usize>() {
        Ok(0) => Err(format!(
            "batch width 0 is invalid (use 1 for the per-element path, up to {MAX_BATCH_WIDTH})"
        )),
        Ok(b) if b > MAX_BATCH_WIDTH => Err(format!(
            "batch width {b} exceeds the maximum of {MAX_BATCH_WIDTH}"
        )),
        Ok(b) => Ok(b),
        Err(_) => Err(format!(
            "batch width {t:?} is not a number (expected 1..={MAX_BATCH_WIDTH})"
        )),
    }
}

/// Environment variable selecting the multivector width the solve
/// service batches to (`nvec=1` recovers sequential single-RHS solves;
/// invalid values are a hard error, never a clamp).
pub const NVEC_ENV: &str = "HYMV_EMV_NVEC";

/// Default multivector width: one AVX-512 vector of columns — every `Ke`
/// slab load is amortized over 8 right-hand sides while the `nd × bw ×
/// nvec` panels of the evaluated element types stay cache-resident.
pub const DEFAULT_NVEC_WIDTH: usize = 8;

/// Parse a multivector-width string — the one validation path shared by
/// the `HYMV_EMV_NVEC` reader and the `--nvec` CLI flags. Same contract
/// as [`parse_batch_width`]: `0`, values above [`MAX_NVEC_WIDTH`], and
/// non-numeric input are errors naming the problem, never a clamp.
pub fn parse_nvec_width(s: &str) -> Result<usize, String> {
    let t = s.trim();
    match t.parse::<usize>() {
        Ok(0) => Err(format!(
            "multivector width 0 is invalid (use 1 for single-RHS solves, up to {MAX_NVEC_WIDTH})"
        )),
        Ok(n) if n > MAX_NVEC_WIDTH => Err(format!(
            "multivector width {n} exceeds the maximum of {MAX_NVEC_WIDTH}"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "multivector width {t:?} is not a number (expected 1..={MAX_NVEC_WIDTH})"
        )),
    }
}

/// The multivector width selected by `HYMV_EMV_NVEC`, or the default when
/// the variable is unset.
///
/// # Panics
/// On an invalid value (`0`, `> MAX_NVEC_WIDTH`, non-numeric): a bad
/// width must stop setup, not silently run a different configuration.
pub fn nvec_width_from_env() -> usize {
    match std::env::var(NVEC_ENV) {
        Ok(s) => match parse_nvec_width(&s) {
            Ok(n) => n,
            Err(e) => panic!("{NVEC_ENV}: {e}"),
        },
        Err(_) => DEFAULT_NVEC_WIDTH,
    }
}

/// The batch width selected by `HYMV_EMV_BATCH`, or the default when the
/// variable is unset.
///
/// # Panics
/// On an invalid value (`0`, `> MAX_BATCH_WIDTH`, non-numeric): a bad
/// width must stop setup, not silently run a different configuration.
pub fn batch_width_from_env() -> usize {
    match std::env::var(BATCH_ENV) {
        Ok(s) => match parse_batch_width(&s) {
            Ok(b) => b,
            Err(e) => panic!("{BATCH_ENV}: {e}"),
        },
        Err(_) => DEFAULT_BATCH_WIDTH,
    }
}

/// One element subset (independent or dependent) cut into blocks of `bw`
/// locality-sorted elements, with flattened gather/scatter tables and the
/// batch-interleaved matrix slabs.
#[derive(Debug, Clone)]
pub struct BlockSet {
    nd: usize,
    bw: usize,
    /// Live lanes per block (`< bw` only in the final, ragged block).
    lens: Vec<u32>,
    /// Element ids, `n_blocks × bw`; padded lanes hold `u32::MAX`.
    elems: Vec<u32>,
    /// Dof-level gather indices into the DA data, `n_blocks × nd × bw`
    /// (`gidx[(k·nd + r)·bw + b]` = DA index of row `r`, lane `b` of block
    /// `k`); padded lanes hold 0.
    gidx: Vec<u32>,
    /// Batch-interleaved element matrices, `n_blocks × nd² × bw`; padded
    /// lanes are zero. Empty until [`BlockPlan::attach_store`] (the
    /// matrix-free operator uses the tables with its own scratch slab).
    keb: Vec<f64>,
    /// Block ids `0..n_blocks` (the chunk-private loop's par-chunks base).
    ids: Vec<u32>,
}

impl BlockSet {
    fn build(maps: &HymvMaps, ndof: usize, bw: usize, subset: &[u32]) -> Self {
        let nd = maps.npe * ndof;
        // Locality sort: elements ordered by their minimum local node so
        // consecutive blocks touch nearby stretches of u/v. Stable
        // tie-break on element id keeps the order deterministic.
        let mut order: Vec<u32> = subset.to_vec();
        order.sort_by_key(|&e| {
            let lo = maps
                .elem_local_nodes(e as usize)
                .iter()
                .copied()
                .min()
                .unwrap_or(0);
            (lo, e)
        });

        let n_blocks = order.len().div_ceil(bw);
        let mut lens = vec![0u32; n_blocks];
        let mut elems = vec![u32::MAX; n_blocks * bw];
        let mut gidx = vec![0u32; n_blocks * nd * bw];
        for (pos, &e) in order.iter().enumerate() {
            let (k, b) = (pos / bw, pos % bw);
            lens[k] += 1;
            elems[k * bw + b] = e;
            let nodes = maps.elem_local_nodes(e as usize);
            for (m, &l) in nodes.iter().enumerate() {
                for c in 0..ndof {
                    gidx[(k * nd + m * ndof + c) * bw + b] = l * ndof as u32 + c as u32;
                }
            }
        }
        BlockSet {
            nd,
            bw,
            lens,
            elems,
            gidx,
            keb: Vec::new(),
            ids: (0..n_blocks as u32).collect(),
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.lens.len()
    }

    /// Live lanes of block `k`.
    pub fn len(&self, k: usize) -> usize {
        self.lens[k] as usize
    }

    /// True if the set has no blocks.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Element ids of block `k` (`bw` entries; padded lanes = `u32::MAX`).
    pub fn elems(&self, k: usize) -> &[u32] {
        &self.elems[k * self.bw..(k + 1) * self.bw]
    }

    /// Doubles per panel (`nd × bw`).
    pub fn panel_len(&self) -> usize {
        self.nd * self.bw
    }

    /// Block `k`'s flattened gather/scatter table (`nd × bw` DA dof
    /// indices, lane-major; padded lanes hold 0). Read-only, exposed for
    /// the `hymv-verify` alias prover — the write set of block `k` is the
    /// live-lane subset of these indices.
    pub fn gather_indices(&self, k: usize) -> &[u32] {
        let pl = self.panel_len();
        &self.gidx[k * pl..(k + 1) * pl]
    }

    /// The block-id list the chunk-private loop chunks over. Read-only,
    /// exposed for the `hymv-verify` fallback-coverage proof.
    pub fn block_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Block `k`'s interleaved matrix slab (requires an attached store).
    pub fn keb(&self, k: usize) -> &[f64] {
        let sz = self.nd * self.nd * self.bw;
        &self.keb[k * sz..(k + 1) * sz]
    }

    /// Gather block `k`'s input panel: `ue[i] = data[gidx[i]]`. Padded
    /// lanes read slot 0 (a harmless in-bounds load; their matrix lanes
    /// are zero).
    #[inline]
    pub fn gather(&self, k: usize, data: &[f64], ue: &mut [f64]) {
        let pl = self.panel_len();
        let gi = &self.gidx[k * pl..(k + 1) * pl];
        debug_assert_eq!(ue.len(), pl);
        for (u, &r) in ue.iter_mut().zip(gi) {
            *u = data[r as usize];
        }
    }

    /// Scatter block `k`'s output panel through `add(dof_index, value)`.
    /// Lane-bounded: padded lanes are skipped, so padding never perturbs
    /// the result (not even the sign of a zero).
    #[inline]
    pub fn scatter_with(&self, k: usize, ve: &[f64], mut add: impl FnMut(usize, f64)) {
        let (bw, pl) = (self.bw, self.panel_len());
        let gi = &self.gidx[k * pl..(k + 1) * pl];
        debug_assert_eq!(ve.len(), pl);
        let len = self.lens[k] as usize;
        if len == bw {
            for (&r, &v) in gi.iter().zip(ve) {
                add(r as usize, v);
            }
        } else {
            for row in 0..self.nd {
                for b in 0..len {
                    add(gi[row * bw + b] as usize, ve[row * bw + b]);
                }
            }
        }
    }

    /// Gather block `k`'s multivector input panel from a
    /// [`DistMultivector`]: `nvec` contiguous column values per table
    /// entry (`ue[t·nvec + c] = data[gidx[t]·nvec + c]`). Padded lanes
    /// read slot 0, exactly like [`Self::gather`].
    #[inline]
    pub fn gather_mv(&self, k: usize, data: &[f64], nvec: usize, ue: &mut [f64]) {
        let pl = self.panel_len();
        let gi = &self.gidx[k * pl..(k + 1) * pl];
        debug_assert_eq!(ue.len(), pl * nvec);
        for (u, &r) in ue.chunks_exact_mut(nvec).zip(gi) {
            let src = r as usize * nvec;
            u.copy_from_slice(&data[src..src + nvec]);
        }
    }

    /// Scatter block `k`'s multivector output panel through
    /// `add(flat_index, value)` with `flat_index = dof·nvec + column`.
    /// Lane-bounded like [`Self::scatter_with`], and visiting live lanes
    /// in the same `(row, lane)` order so per-column accumulation order —
    /// and therefore the bits — match the single-vector path.
    #[inline]
    pub fn scatter_mv_with(
        &self,
        k: usize,
        nvec: usize,
        ve: &[f64],
        mut add: impl FnMut(usize, f64),
    ) {
        let (bw, pl) = (self.bw, self.panel_len());
        let gi = &self.gidx[k * pl..(k + 1) * pl];
        debug_assert_eq!(ve.len(), pl * nvec);
        let len = self.lens[k] as usize;
        if len == bw {
            for (&r, v) in gi.iter().zip(ve.chunks_exact(nvec)) {
                let base = r as usize * nvec;
                for (c, &val) in v.iter().enumerate() {
                    add(base + c, val);
                }
            }
        } else {
            for row in 0..self.nd {
                for b in 0..len {
                    let t = row * bw + b;
                    let base = gi[t] as usize * nvec;
                    for c in 0..nvec {
                        add(base + c, ve[t * nvec + c]);
                    }
                }
            }
        }
    }

    /// Greedy block coloring: no two blocks of a color share a dof.
    /// `None` when more than 64 colors would be needed (callers fall back
    /// to chunk-private accumulation).
    fn try_color(&self, n_data: usize) -> Option<Vec<Vec<u32>>> {
        let (bw, nd) = (self.bw, self.nd);
        let mut mask = vec![0u64; n_data];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for k in 0..self.n_blocks() {
            let gi = &self.gidx[k * nd * bw..(k + 1) * nd * bw];
            let len = self.lens[k] as usize;
            let mut forbidden = 0u64;
            for row in 0..nd {
                for b in 0..len {
                    forbidden |= mask[gi[row * bw + b] as usize];
                }
            }
            let color = (!forbidden).trailing_zeros() as usize;
            if color >= 64 {
                return None;
            }
            if color == classes.len() {
                classes.push(Vec::new());
            }
            classes[color].push(k as u32);
            for row in 0..nd {
                for b in 0..len {
                    mask[gi[row * bw + b] as usize] |= 1 << color;
                }
            }
        }
        Some(classes)
    }
}

/// The setup-time plan for the batched SPMV path: both element subsets
/// blocked, plus the element → (set, block, lane) slot map the adaptive
/// update path uses to refresh individual matrices in place.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    nd: usize,
    bw: usize,
    /// DA data length (`n_total × ndof`), for coloring masks.
    n_data: usize,
    indep: BlockSet,
    dep: BlockSet,
    /// Element id → (dependent?, block, lane).
    slot: Vec<(bool, u32, u16)>,
}

impl BlockPlan {
    /// Build the gather/scatter tables (matrix slabs stay empty until
    /// [`Self::attach_store`]).
    pub fn build(maps: &HymvMaps, ndof: usize, bw: usize) -> Self {
        assert!(
            (1..=MAX_BATCH_WIDTH).contains(&bw),
            "batch width {bw} outside 1..={MAX_BATCH_WIDTH}"
        );
        let indep = BlockSet::build(maps, ndof, bw, &maps.independent);
        let dep = BlockSet::build(maps, ndof, bw, &maps.dependent);
        let mut slot = vec![(false, u32::MAX, 0u16); maps.n_elems];
        for (dependent, set) in [(false, &indep), (true, &dep)] {
            for k in 0..set.n_blocks() {
                for (b, &e) in set.elems(k).iter().enumerate() {
                    if e != u32::MAX {
                        slot[e as usize] = (dependent, k as u32, b as u16);
                    }
                }
            }
        }
        BlockPlan {
            nd: maps.npe * ndof,
            bw,
            n_data: maps.n_total() * ndof,
            indep,
            dep,
            slot,
        }
    }

    /// Interleave every stored element matrix into its block slab
    /// (allocates the slabs; padded lanes stay zero).
    pub fn attach_store(&mut self, store: &ElementMatrixStore) {
        assert_eq!(store.nd(), self.nd, "store/plan dimension mismatch");
        let sz = self.nd * self.nd * self.bw;
        for set in [&mut self.indep, &mut self.dep] {
            set.keb = vec![0.0; set.n_blocks() * sz];
        }
        let elems: Vec<u32> = (0..self.slot.len() as u32).collect();
        self.refresh(store, &elems);
    }

    /// Re-interleave the matrices of `elems` (the adaptive-update path:
    /// after `ke_mut`/`update_elements` touched a few elements).
    pub fn refresh(&mut self, store: &ElementMatrixStore, elems: &[u32]) {
        let (nd, bw) = (self.nd, self.bw);
        let sz = nd * nd * bw;
        for &e in elems {
            let (dependent, k, b) = self.slot[e as usize];
            let set = if dependent {
                &mut self.dep
            } else {
                &mut self.indep
            };
            let slab = &mut set.keb[k as usize * sz..(k as usize + 1) * sz];
            interleave_ke(store.ke(e as usize), slab, nd, bw, b as usize);
        }
    }

    /// Batch width `bw`.
    pub fn batch_width(&self) -> usize {
        self.bw
    }

    /// Element-matrix dimension `nd`.
    pub fn nd(&self) -> usize {
        self.nd
    }

    /// The blocked subset.
    pub fn set(&self, dependent: bool) -> &BlockSet {
        if dependent {
            &self.dep
        } else {
            &self.indep
        }
    }

    /// Total blocks across both sets.
    pub fn n_blocks_total(&self) -> usize {
        self.indep.n_blocks() + self.dep.n_blocks()
    }

    /// Total lanes (elements + tail padding) — the executed-FLOP count is
    /// `n_lanes_total · 2nd²`.
    pub fn n_lanes_total(&self) -> usize {
        self.n_blocks_total() * self.bw
    }

    /// Bytes of the plan's own storage: interleaved matrix slabs (f64)
    /// plus gather tables (u32).
    pub fn bytes(&self) -> usize {
        self.device_bytes()
    }

    /// Bytes uploaded to a device reusing the panel layout (matrix slabs +
    /// gather tables).
    pub fn device_bytes(&self) -> usize {
        let mut total = 0;
        for set in [&self.indep, &self.dep] {
            total += set.keb.len() * 8 + set.gidx.len() * 4;
        }
        total
    }

    /// Block-granularity coloring of one subset; `None` if >64 colors.
    pub fn color_blocks(&self, dependent: bool) -> Option<Vec<Vec<u32>>> {
        self.set(dependent).try_color(self.n_data)
    }

    /// Serial blocked EMV loop over one subset. `ue`/`ve` are `nd × bw`
    /// panel scratch.
    pub fn run_serial(
        &self,
        dependent: bool,
        u: &DistArray,
        v: &mut DistArray,
        kernel: EmvBatchKernel,
        ue: &mut [f64],
        ve: &mut [f64],
    ) {
        let set = self.set(dependent);
        for k in 0..set.n_blocks() {
            set.gather(k, &u.data, ue);
            kernel(set.keb(k), ue, ve, self.nd, self.bw);
            set.scatter_with(k, ve, |i, val| v.data[i] += val);
        }
    }

    /// Serial blocked SpMM loop over one subset: each block's `Ke` slab
    /// is loaded once and reused for all `nvec` columns of the panel —
    /// the bandwidth amortization the multivector engine exists for.
    /// `ue`/`ve` are `nd × bw × nvec` panel scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn run_serial_mv(
        &self,
        dependent: bool,
        u: &DistMultivector,
        v: &mut DistMultivector,
        kernel: EmvBatchMvKernel,
        nvec: usize,
        ue: &mut [f64],
        ve: &mut [f64],
    ) {
        debug_assert_eq!(u.nvec, nvec);
        debug_assert_eq!(v.nvec, nvec);
        let set = self.set(dependent);
        for k in 0..set.n_blocks() {
            set.gather_mv(k, &u.data, nvec, ue);
            kernel(set.keb(k), ue, ve, self.nd, self.bw, nvec);
            set.scatter_mv_with(k, nvec, ve, |i, val| v.data[i] += val);
        }
    }

    /// Colored parallel blocked loop: classes sequential, blocks within a
    /// class parallel with direct shared writes (sound because same-color
    /// blocks share no dof, and scatters are lane-bounded).
    ///
    /// Allocation waiver: rayon's `for_each_init` allocates one pair of
    /// `nd × bw` panels per worker — bounded per-thread scratch that
    /// cannot be hoisted across the pool boundary, not per-element churn.
    // verify: allow(allocates)
    pub fn run_colored(
        &self,
        dependent: bool,
        classes: &[Vec<u32>],
        u: &DistArray,
        v: &mut DistArray,
        kernel: EmvBatchKernel,
    ) {
        let set = self.set(dependent);
        let (nd, bw) = (self.nd, self.bw);
        let target = RacyTarget::new(v.data.as_mut_ptr());
        on_rank_pool(|| {
            for class in classes {
                class.par_iter().for_each_init(
                    || (vec![0.0; nd * bw], vec![0.0; nd * bw]),
                    |(ue, ve), &k| {
                        let k = k as usize;
                        set.gather(k, &u.data, ue);
                        kernel(set.keb(k), ue, ve, nd, bw);
                        set.scatter_with(k, ve, |i, val| {
                            // SAFETY: dof sets are disjoint across the
                            // blocks of one color class; classes run
                            // sequentially.
                            #[allow(unsafe_code)]
                            unsafe {
                                target.add(i, val);
                            }
                        });
                    },
                );
            }
        });
    }

    /// Chunk-private parallel blocked loop: workers own contiguous runs of
    /// blocks and private accumulation buffers, reduced by summation.
    ///
    /// Allocation waiver: the private accumulation buffers are the point
    /// of this scheme — one `len`-sized buffer per worker chunk, allocated
    /// inside the pool, reduced on join. Bounded per-call, not hoistable.
    // verify: allow(allocates)
    pub fn run_chunk_private(
        &self,
        dependent: bool,
        u: &DistArray,
        v: &mut DistArray,
        kernel: EmvBatchKernel,
    ) {
        let set = self.set(dependent);
        let (nd, bw) = (self.nd, self.bw);
        let len = v.data.len();
        let partials: Vec<Vec<f64>> = on_rank_pool(|| {
            let chunk = set.ids.len().div_ceil(rayon::current_num_threads()).max(1);
            set.ids
                .par_chunks(chunk)
                .map(|blocks| {
                    let mut buf = vec![0.0; len];
                    let mut ue = vec![0.0; nd * bw];
                    let mut ve = vec![0.0; nd * bw];
                    for &k in blocks {
                        let k = k as usize;
                        set.gather(k, &u.data, &mut ue);
                        kernel(set.keb(k), &ue, &mut ve, nd, bw);
                        set.scatter_with(k, &ve, |i, val| buf[i] += val);
                    }
                    buf
                })
                .collect()
        });
        for buf in partials {
            for (dst, src) in v.data.iter_mut().zip(&buf) {
                *dst += src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::emv_loop_serial;
    use hymv_la::dense::select_batch_kernel;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{unstructured_tet_mesh, ElementType, StructuredHexMesh};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(
        mesh: &hymv_mesh::GlobalMesh,
        ndof: usize,
        seed: u64,
    ) -> (HymvMaps, ElementMatrixStore, DistArray) {
        let pm = partition_mesh(mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let nd = maps.npe * ndof;
        let mut store = ElementMatrixStore::new(nd, maps.n_elems);
        let mut rng = StdRng::seed_from_u64(seed);
        for e in 0..maps.n_elems {
            for v in store.ke_mut(e) {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        let mut u = DistArray::new(&maps, ndof);
        for v in u.data.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        (maps, store, u)
    }

    fn serial_reference(maps: &HymvMaps, store: &ElementMatrixStore, u: &DistArray) -> DistArray {
        let all: Vec<u32> = (0..maps.n_elems as u32).collect();
        let nd = store.nd();
        let mut v = DistArray::new(maps, u.ndof);
        let mut ue = vec![0.0; nd];
        let mut ve = vec![0.0; nd];
        emv_loop_serial(maps, store, u, &mut v, &all, &mut ue, &mut ve);
        v
    }

    fn blocked_result(
        maps: &HymvMaps,
        store: &ElementMatrixStore,
        u: &DistArray,
        bw: usize,
    ) -> DistArray {
        let mut plan = BlockPlan::build(maps, u.ndof, bw);
        plan.attach_store(store);
        let kernel = select_batch_kernel(bw);
        let mut v = DistArray::new(maps, u.ndof);
        let pl = plan.nd() * bw;
        let (mut ue, mut ve) = (vec![0.0; pl], vec![0.0; pl]);
        plan.run_serial(false, u, &mut v, kernel, &mut ue, &mut ve);
        plan.run_serial(true, u, &mut v, kernel, &mut ue, &mut ve);
        v
    }

    /// Batched-vs-serial agreement for every element type the paper uses,
    /// including ragged tails (element counts not divisible by bw) and
    /// bw=1 equivalence.
    #[test]
    fn blocked_matches_serial_all_element_types() {
        let meshes: Vec<hymv_mesh::GlobalMesh> = vec![
            StructuredHexMesh::unit(3, ElementType::Hex8).build(), // 27 elems: ragged for bw=8
            StructuredHexMesh::unit(2, ElementType::Hex20).build(),
            StructuredHexMesh::unit(2, ElementType::Hex27).build(),
            unstructured_tet_mesh(2, ElementType::Tet4, 0.1, 3),
            unstructured_tet_mesh(2, ElementType::Tet10, 0.1, 4),
        ];
        for (i, mesh) in meshes.iter().enumerate() {
            let (maps, store, u) = random_case(mesh, 1, 100 + i as u64);
            let v_ref = serial_reference(&maps, &store, &u);
            for bw in [1usize, 3, 8, 16] {
                let v = blocked_result(&maps, &store, &u, bw);
                for (a, b) in v_ref.data.iter().zip(&v.data) {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "{:?} bw={bw}: {a} vs {b}",
                        mesh.elem_type
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_matches_serial_multi_dof() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let (maps, store, u) = random_case(&mesh, 3, 42);
        let v_ref = serial_reference(&maps, &store, &u);
        for bw in [4usize, 8] {
            let v = blocked_result(&maps, &store, &u, bw);
            for (a, b) in v_ref.data.iter().zip(&v.data) {
                assert!((a - b).abs() < 1e-12, "ndof=3 bw={bw}");
            }
        }
    }

    #[test]
    fn plan_covers_each_element_once_and_sorts_by_locality() {
        let mesh = unstructured_tet_mesh(3, ElementType::Tet4, 0.05, 9);
        let pm = partition_mesh(&mesh, 2, PartitionMethod::GreedyGraph);
        let maps = HymvMaps::build(&pm.parts[0]);
        let bw = 8;
        let plan = BlockPlan::build(&maps, 1, bw);
        let mut seen = vec![false; maps.n_elems];
        for dependent in [false, true] {
            let set = plan.set(dependent);
            let subset = if dependent {
                &maps.dependent
            } else {
                &maps.independent
            };
            let mut count = 0;
            let mut prev_min = 0u32;
            for k in 0..set.n_blocks() {
                let len = set.len(k);
                assert!(len >= 1 && len <= bw);
                if k + 1 < set.n_blocks() {
                    assert_eq!(len, bw, "only the tail block may be short");
                }
                for (b, &e) in set.elems(k).iter().enumerate() {
                    if b < len {
                        assert!(!seen[e as usize], "element {e} appears twice");
                        seen[e as usize] = true;
                        count += 1;
                        let lo = *maps
                            .elem_local_nodes(e as usize)
                            .iter()
                            .min()
                            .expect("nonempty");
                        assert!(lo >= prev_min, "locality order violated");
                        prev_min = lo;
                    } else {
                        assert_eq!(e, u32::MAX);
                    }
                }
            }
            assert_eq!(count, subset.len());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gather_table_matches_e2l() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let ndof = 3;
        let plan = BlockPlan::build(&maps, ndof, 4);
        let set = plan.set(false);
        let mut ue = vec![0.0; set.panel_len()];
        // data[i] = i makes the gather table directly visible.
        let mut u = DistArray::new(&maps, ndof);
        for (i, v) in u.data.iter_mut().enumerate() {
            *v = i as f64;
        }
        for k in 0..set.n_blocks() {
            set.gather(k, &u.data, &mut ue);
            for (b, &e) in set.elems(k).iter().enumerate() {
                if e == u32::MAX {
                    continue;
                }
                let nodes = maps.elem_local_nodes(e as usize);
                for (m, &l) in nodes.iter().enumerate() {
                    for c in 0..ndof {
                        assert_eq!(
                            ue[(m * ndof + c) * 4 + b],
                            (l as usize * ndof + c) as f64,
                            "e={e} m={m} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_block_loops_match_serial() {
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
        let (maps, store, u) = random_case(&mesh, 1, 7);
        let bw = 8;
        let mut plan = BlockPlan::build(&maps, 1, bw);
        plan.attach_store(&store);
        let kernel = select_batch_kernel(bw);
        let v_ref = blocked_result(&maps, &store, &u, bw);

        let classes = plan.color_blocks(false).expect("colorable");
        // All elements are independent on a single rank.
        assert!(plan.set(true).is_empty());
        let mut v_col = DistArray::new(&maps, 1);
        plan.run_colored(false, &classes, &u, &mut v_col, kernel);
        for (a, b) in v_ref.data.iter().zip(&v_col.data) {
            assert!((a - b).abs() < 1e-12, "colored");
        }

        let mut v_cp = DistArray::new(&maps, 1);
        plan.run_chunk_private(false, &u, &mut v_cp, kernel);
        for (a, b) in v_ref.data.iter().zip(&v_cp.data) {
            assert!((a - b).abs() < 1e-12, "chunk-private");
        }
    }

    #[test]
    fn block_coloring_is_proper() {
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let plan = BlockPlan::build(&maps, 1, 4);
        let set = plan.set(false);
        let classes = plan.color_blocks(false).expect("colorable");
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, set.n_blocks());
        // Disjointness is required *between* blocks of a class (a block's
        // own elements may share nodes — they run on one worker).
        for class in &classes {
            let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for &k in class {
                let k = k as usize;
                let mut block_nodes: std::collections::HashSet<u32> =
                    std::collections::HashSet::new();
                for (b, &e) in set.elems(k).iter().enumerate() {
                    if b < set.len(k) {
                        block_nodes.extend(maps.elem_local_nodes(e as usize));
                    }
                }
                for &l in &block_nodes {
                    assert!(seen.insert(l), "color class shares dof {l} across blocks");
                }
            }
        }
    }

    #[test]
    fn refresh_updates_single_lane() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let (maps, mut store, u) = random_case(&mesh, 1, 21);
        let bw = 8;
        let mut plan = BlockPlan::build(&maps, 1, bw);
        plan.attach_store(&store);
        // Mutate one element's matrix and refresh only it.
        for v in store.ke_mut(5) {
            *v *= 3.0;
        }
        plan.refresh(&store, &[5]);
        let kernel = select_batch_kernel(bw);
        let mut v = DistArray::new(&maps, 1);
        let pl = plan.nd() * bw;
        let (mut ue, mut ve) = (vec![0.0; pl], vec![0.0; pl]);
        plan.run_serial(false, &u, &mut v, kernel, &mut ue, &mut ve);
        plan.run_serial(true, &u, &mut v, kernel, &mut ue, &mut ve);
        let v_ref = serial_reference(&maps, &store, &u);
        for (a, b) in v_ref.data.iter().zip(&v.data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_width_env_parsing() {
        // Direct parse-path checks without touching the process env (other
        // tests run concurrently).
        assert_eq!(DEFAULT_BATCH_WIDTH, 8);
        assert!(batch_width_from_env() >= 1);
        assert!(batch_width_from_env() <= MAX_BATCH_WIDTH);
    }

    /// Invalid widths are hard errors with a message naming the problem —
    /// never a silent clamp or fallback.
    #[test]
    fn batch_width_strict_parse() {
        assert_eq!(parse_batch_width("1"), Ok(1));
        assert_eq!(parse_batch_width(" 8 "), Ok(8));
        assert_eq!(parse_batch_width("64"), Ok(MAX_BATCH_WIDTH));
        let zero = parse_batch_width("0").unwrap_err();
        assert!(zero.contains("batch width 0 is invalid"), "{zero}");
        let big = parse_batch_width("65").unwrap_err();
        assert!(big.contains("exceeds the maximum of 64"), "{big}");
        let nan = parse_batch_width("fast").unwrap_err();
        assert!(nan.contains("not a number"), "{nan}");
        let neg = parse_batch_width("-3").unwrap_err();
        assert!(neg.contains("not a number"), "{neg}");
    }

    /// `HYMV_EMV_NVEC` gets the same hard-error treatment as the batch
    /// knob: invalid widths name the problem, valid ones parse exactly.
    #[test]
    fn nvec_width_strict_parse() {
        assert_eq!(DEFAULT_NVEC_WIDTH, 8);
        assert!(nvec_width_from_env() >= 1);
        assert!(nvec_width_from_env() <= MAX_NVEC_WIDTH);
        assert_eq!(parse_nvec_width("1"), Ok(1));
        assert_eq!(parse_nvec_width(" 16 "), Ok(16));
        assert_eq!(parse_nvec_width("32"), Ok(MAX_NVEC_WIDTH));
        let zero = parse_nvec_width("0").unwrap_err();
        assert!(zero.contains("multivector width 0 is invalid"), "{zero}");
        let big = parse_nvec_width("33").unwrap_err();
        assert!(big.contains("exceeds the maximum of 32"), "{big}");
        let nan = parse_nvec_width("wide").unwrap_err();
        assert!(nan.contains("not a number"), "{nan}");
        let neg = parse_nvec_width("-2").unwrap_err();
        assert!(neg.contains("not a number"), "{neg}");
    }

    /// The blocked SpMM loop equals the single-vector blocked loop run
    /// column by column — including a ragged tail (27 elements, bw = 8)
    /// and ndof > 1. The (bw = 8, nvec = 8) case pins bitwise equality:
    /// batch and mv kernels dispatch to the same fmadd-chain class.
    #[test]
    fn blocked_mv_matches_per_column() {
        use hymv_la::dense::{select_batch_kernel, select_batch_mv_kernel};
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        for (ndof, nvec, bitwise, seed) in [
            (1usize, 3usize, false, 5u64),
            (3, 8, true, 6),
            (1, 8, true, 7),
        ] {
            let (maps, store, _) = random_case(&mesh, ndof, seed);
            let bw = 8;
            let mut plan = BlockPlan::build(&maps, ndof, bw);
            plan.attach_store(&store);
            let n = maps.n_total() * ndof;
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let cols: Vec<Vec<f64>> = (0..nvec)
                .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();

            // Per-column reference through the single-vector blocked loop.
            let kernel = select_batch_kernel(bw);
            let pl = plan.nd() * bw;
            let (mut ue, mut ve) = (vec![0.0; pl], vec![0.0; pl]);
            let mut refs: Vec<DistArray> = Vec::new();
            for col in &cols {
                let mut u = DistArray::new(&maps, ndof);
                u.data.copy_from_slice(col);
                let mut v = DistArray::new(&maps, ndof);
                plan.run_serial(false, &u, &mut v, kernel, &mut ue, &mut ve);
                plan.run_serial(true, &u, &mut v, kernel, &mut ue, &mut ve);
                refs.push(v);
            }

            // One SpMM over the interleaved multivector DA.
            let mv_kernel = select_batch_mv_kernel(nvec);
            let mut u_mv = DistMultivector::new(&maps, ndof, nvec);
            for (c, col) in cols.iter().enumerate() {
                for (i, &x) in col.iter().enumerate() {
                    u_mv.data[i * nvec + c] = x;
                }
            }
            let mut v_mv = DistMultivector::new(&maps, ndof, nvec);
            let (mut uem, mut vem) = (vec![0.0; pl * nvec], vec![0.0; pl * nvec]);
            plan.run_serial_mv(false, &u_mv, &mut v_mv, mv_kernel, nvec, &mut uem, &mut vem);
            plan.run_serial_mv(true, &u_mv, &mut v_mv, mv_kernel, nvec, &mut uem, &mut vem);

            for c in 0..nvec {
                for i in 0..n {
                    let (a, b) = (refs[c].data[i], v_mv.data[i * nvec + c]);
                    if bitwise {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "ndof={ndof} nvec={nvec} col {c} dof {i}: {a} vs {b}"
                        );
                    } else {
                        assert!((a - b).abs() < 1e-12, "col {c} dof {i}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_subset_has_no_blocks() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let mut plan = BlockPlan::build(&maps, 1, 8);
        // Single rank: no dependent elements.
        assert!(plan.set(true).is_empty());
        let store = ElementMatrixStore::new(8, maps.n_elems);
        plan.attach_store(&store);
        let mut v = DistArray::new(&maps, 1);
        let u = DistArray::new(&maps, 1);
        let pl = plan.nd() * 8;
        let (mut ue, mut ve) = (vec![0.0; pl], vec![0.0; pl]);
        plan.run_serial(true, &u, &mut v, select_batch_kernel(8), &mut ue, &mut ve);
        assert!(v.data.iter().all(|&x| x == 0.0));
    }
}

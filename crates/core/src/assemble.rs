//! Right-hand-side assembly and preconditioner-setup helpers shared by all
//! three methods.

use hymv_comm::{Comm, Payload};
use hymv_fem::kernel::{ElementKernel, KernelScratch};
use hymv_la::{ElementMatrixStore, SerialCsr};
use hymv_mesh::MeshPartition;

use crate::da::DistArray;
use crate::exchange::GhostExchange;
use crate::maps::HymvMaps;

/// Assemble the load vector `f` over owned dofs: elemental `fe`
/// accumulated through the DA, ghost contributions gathered to owners.
/// Collective.
pub fn assemble_rhs(
    comm: &mut Comm,
    maps: &HymvMaps,
    exchange: &GhostExchange,
    part: &MeshPartition,
    kernel: &dyn ElementKernel,
) -> Vec<f64> {
    let ndof = kernel.ndof_per_node();
    let nd = kernel.ndof_elem();
    let mut f = DistArray::new(maps, ndof);
    let mut fe = vec![0.0; nd];
    let mut scratch = KernelScratch::default();
    comm.work(|| {
        for e in 0..maps.n_elems {
            kernel.compute_fe(part.elem_node_coords(e), &mut fe, &mut scratch);
            f.accumulate_elem(maps.elem_local_nodes(e), &fe);
        }
    });
    exchange.gather_begin(comm, &f);
    exchange.gather_end(comm, &mut f);
    f.owned().to_vec()
}

/// Add surface-traction contributions (`∫ t̄ φ dA`, paper §V-B's loaded
/// top face) to an owned-dof load vector. Collective (ghost-node
/// contributions gather to owners).
pub fn assemble_traction(
    comm: &mut Comm,
    maps: &HymvMaps,
    exchange: &GhostExchange,
    part: &MeshPartition,
    spec: &hymv_fem::traction::TractionSpec,
    rhs: &mut [f64],
) {
    let ndof = spec.ndof();
    let et = part.elem_type;
    let mut f = DistArray::new(maps, ndof);
    let mut fe = vec![0.0; et.nodes_per_elem() * ndof];
    comm.work(|| {
        for e in 0..maps.n_elems {
            fe.fill(0.0);
            hymv_fem::traction::accumulate_traction(et, part.elem_node_coords(e), spec, &mut fe);
            f.accumulate_elem(maps.elem_local_nodes(e), &fe);
        }
    });
    exchange.gather_begin(comm, &f);
    exchange.gather_end(comm, &mut f);
    for (dst, src) in rhs.iter_mut().zip(f.owned()) {
        *dst += src;
    }
}

/// Coordinates of this rank's owned nodes, indexed `0..n_owned` (for error
/// norms against analytic solutions). Every owned node appears in at least
/// one local element (ownership = lowest touching rank), so this is local.
pub fn owned_node_coords(maps: &HymvMaps, part: &MeshPartition) -> Vec<[f64; 3]> {
    let n_pre = maps.gpre.len();
    let n_owned = maps.n_owned();
    let mut coords = vec![[f64::NAN; 3]; n_owned];
    for e in 0..maps.n_elems {
        let locals = maps.elem_local_nodes(e);
        let cs = part.elem_node_coords(e);
        for (l, c) in locals.iter().zip(cs) {
            let l = *l as usize;
            if l >= n_pre && l < n_pre + n_owned {
                coords[l - n_pre] = *c;
            }
        }
    }
    assert!(
        coords.iter().all(|c| c[0].is_finite()),
        "an owned node was referenced by no local element (broken partition)"
    );
    coords
}

/// The owned diagonal of the global operator, accumulated from stored
/// element matrices (HYMV's Jacobi setup). Collective.
pub fn jacobi_diagonal(
    comm: &mut Comm,
    maps: &HymvMaps,
    exchange: &GhostExchange,
    store: &ElementMatrixStore,
    ndof: usize,
) -> Vec<f64> {
    let nd = store.nd();
    let mut d = DistArray::new(maps, ndof);
    comm.work(|| {
        for e in 0..maps.n_elems {
            let ke = store.ke(e);
            let locals = maps.elem_local_nodes(e);
            for (m, &l) in locals.iter().enumerate() {
                for c in 0..ndof {
                    let i = m * ndof + c;
                    d.data[l as usize * ndof + c] += ke[i * nd + i];
                }
            }
        }
    });
    exchange.gather_begin(comm, &d);
    exchange.gather_end(comm, &mut d);
    d.owned().to_vec()
}

/// Assemble the **owned diagonal block** of the global matrix from stored
/// element matrices — what HYMV must build for the block-Jacobi
/// preconditioner (paper §V-F: "HYMV needs to assemble the diagonal block
/// matrix"). Entries where both dofs are owned by the *same other* rank
/// are shipped there (neighbour elements contribute to our block too), so
/// the result equals the assembled method's diagonal block exactly.
/// Entries whose row *or* column dof is constrained are replaced by the
/// identity, matching the Dirichlet wrapper. Collective.
pub fn owned_block_csr(
    comm: &mut Comm,
    maps: &HymvMaps,
    store: &ElementMatrixStore,
    ndof: usize,
    constrained: &[(u32, f64)],
) -> SerialCsr {
    const TAG_BLOCK: u32 = 0x0C04;
    let n = maps.n_owned() * ndof;
    let n_pre = maps.gpre.len();
    let n_owned = maps.n_owned();
    let nd = store.nd();
    let is_constrained = {
        let mut mask = vec![false; n];
        for &(d, _) in constrained {
            mask[d as usize] = true;
        }
        mask
    };

    // Owner lookup for ghost nodes.
    let ranges = comm.allgather_u64(vec![maps.node_range.0, maps.node_range.1]);
    let begins: Vec<u64> = ranges.iter().map(|r| r[0]).collect();
    let owner_of = |g: u64| -> usize {
        let mut r = begins.partition_point(|&b| b <= g) - 1;
        while ranges[r][0] == ranges[r][1] {
            r -= 1;
        }
        r
    };
    // Per local DA node: owning rank.
    let me = comm.rank();
    let node_owner: Vec<usize> = (0..maps.n_total())
        .map(|l| {
            if l >= n_pre && l < n_pre + n_owned {
                me
            } else {
                owner_of(maps.local_to_global(l))
            }
        })
        .collect();

    let mut triples: Vec<(u32, u32, f64)> = Vec::new();
    let mut outgoing: Vec<Vec<(u64, u64, f64)>> = vec![Vec::new(); comm.size()];
    for e in 0..maps.n_elems {
        let ke = store.ke(e);
        let locals = maps.elem_local_nodes(e);
        for (bj, &lj) in locals.iter().enumerate() {
            let oj = node_owner[lj as usize];
            for (bi, &li) in locals.iter().enumerate() {
                let oi = node_owner[li as usize];
                if oi != oj {
                    continue; // off-block coupling — dropped by block-Jacobi
                }
                for cj in 0..ndof {
                    let kcol = (bj * ndof + cj) * nd;
                    for ci in 0..ndof {
                        let v = ke[kcol + bi * ndof + ci];
                        if v == 0.0 {
                            continue;
                        }
                        if oi == me {
                            let row = ((li as usize - n_pre) * ndof + ci) as u32;
                            let col = ((lj as usize - n_pre) * ndof + cj) as u32;
                            if !is_constrained[row as usize] && !is_constrained[col as usize] {
                                triples.push((row, col, v));
                            }
                        } else {
                            let row = maps.local_to_global(li as usize) * ndof as u64 + ci as u64;
                            let col = maps.local_to_global(lj as usize) * ndof as u64 + cj as u64;
                            outgoing[oi].push((row, col, v));
                        }
                    }
                }
            }
        }
    }

    // Ship cross-rank block contributions to their owners.
    let msgs: Vec<(usize, Payload)> = outgoing
        .into_iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(rank, t)| (rank, Payload::from_triples(t)))
        .collect();
    let incoming = comm.exchange_sparse(msgs, TAG_BLOCK);
    let dof_lo = maps.node_range.0 * ndof as u64;
    for (_, payload) in incoming {
        for (row, col, v) in payload.into_triples() {
            let row = (row - dof_lo) as u32;
            let col = (col - dof_lo) as u32;
            if !is_constrained[row as usize] && !is_constrained[col as usize] {
                triples.push((row, col, v));
            }
        }
    }

    for (d, _) in constrained {
        triples.push((*d, *d, 1.0));
    }
    SerialCsr::from_triples(n, n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_comm::Universe;
    use hymv_fem::PoissonKernel;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};
    use std::sync::Arc;

    #[test]
    fn rhs_total_equals_integral() {
        // With b(x) = 1 the assembled rhs sums to the domain volume,
        // independent of the partitioning.
        let mesh = StructuredHexMesh::unit(4, ElementType::Hex8).build();
        for p in [1usize, 3] {
            let pm = partition_mesh(&mesh, p, PartitionMethod::Rcb);
            let sums = Universe::run(p, |comm| {
                let part = &pm.parts[comm.rank()];
                let kernel = PoissonKernel::with_body(ElementType::Hex8, Arc::new(|_| 1.0));
                let maps = HymvMaps::build(part);
                let ex = GhostExchange::build(comm, &maps);
                let f = assemble_rhs(comm, &maps, &ex, part, &kernel);
                let local: f64 = f.iter().sum();
                comm.allreduce_sum_f64(local)
            });
            for s in sums {
                assert!((s - 1.0).abs() < 1e-10, "p={p}: total {s}");
            }
        }
    }

    #[test]
    fn owned_coords_complete_and_correct() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex20).build();
        let pm = partition_mesh(&mesh, 3, PartitionMethod::GreedyGraph);
        for part in &pm.parts {
            let maps = HymvMaps::build(part);
            let coords = owned_node_coords(&maps, part);
            assert_eq!(coords.len(), maps.n_owned());
            // Cross-check against the partition's per-element coordinates.
            for e in 0..part.n_elems() {
                for (&g, &c) in part.elem_nodes(e).iter().zip(part.elem_node_coords(e)) {
                    if g >= maps.node_range.0 && g < maps.node_range.1 {
                        assert_eq!(coords[(g - maps.node_range.0) as usize], c);
                    }
                }
            }
        }
    }

    #[test]
    fn jacobi_diag_matches_assembled() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 3, PartitionMethod::Slabs);
        let out = Universe::run(3, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (hymv, _) = crate::operator::HymvOperator::setup(comm, part, &kernel);
            let d_hymv = jacobi_diagonal(comm, hymv.maps(), hymv.exchange(), hymv.store(), 1);
            let (asm, _) = crate::assembled::AssembledOperator::setup(comm, part, &kernel);
            let d_asm = asm.diagonal();
            d_hymv
                .iter()
                .zip(&d_asm)
                .all(|(a, b)| (a - b).abs() < 1e-11)
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn owned_block_matches_assembled_diag_block_without_constraints() {
        let mesh = StructuredHexMesh::unit(3, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 2, PartitionMethod::Slabs);
        let out = Universe::run(2, |comm| {
            let part = &pm.parts[comm.rank()];
            let kernel = PoissonKernel::new(ElementType::Hex8);
            let (hymv, _) = crate::operator::HymvOperator::setup(comm, part, &kernel);
            let block = owned_block_csr(comm, hymv.maps(), hymv.store(), 1, &[]);
            let (asm, _) = crate::assembled::AssembledOperator::setup(comm, part, &kernel);
            // Compare to the assembled diagonal block entry-wise.
            let n = block.n_rows();
            let mut ok = true;
            for r in 0..n {
                for c in 0..n {
                    ok &= (block.get(r, c) - asm.matrix().diag.get(r, c)).abs() < 1e-11;
                }
            }
            ok
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn constrained_block_rows_are_identity() {
        let mesh = StructuredHexMesh::unit(2, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let kernel = PoissonKernel::new(ElementType::Hex8);
        let maps = HymvMaps::build(&pm.parts[0]);
        let mut store = ElementMatrixStore::new(8, maps.n_elems);
        let mut scratch = hymv_fem::kernel::KernelScratch::default();
        for e in 0..maps.n_elems {
            kernel.compute_ke(
                pm.parts[0].elem_node_coords(e),
                store.ke_mut(e),
                &mut scratch,
            );
        }
        let constrained = vec![(0u32, 1.0), (5, 2.0)];
        let blocks = Universe::run(1, |comm| {
            owned_block_csr(comm, &maps, &store, 1, &constrained)
        });
        let block = &blocks[0];
        for &(d, _) in &constrained {
            let r = d as usize;
            assert_eq!(block.get(r, r), 1.0);
            for c in 0..block.n_cols() {
                if c != r {
                    assert_eq!(block.get(r, c), 0.0, "row {r} col {c}");
                    assert_eq!(block.get(c, r), 0.0, "col {r} row {c}");
                }
            }
        }
    }
}

//! Shared-memory ("OpenMP") parallelization of the local elemental loop
//! (paper §IV-E).
//!
//! The EMV loop accumulates element vectors into a shared DA, so naïve
//! parallelization races on shared nodes. Two standard strategies are
//! provided (and compared by the `ablation_smp` bench):
//!
//! * **Element coloring** — elements are greedily colored so that no two
//!   elements of a color share a node; within a color the loop is
//!   embarrassingly parallel and writes directly to the shared DA.
//! * **Chunk-private accumulation** — each worker accumulates into a
//!   private buffer; buffers are summed afterwards. No coloring setup, but
//!   `O(threads × n_total)` extra memory traffic.
//!
//! On this reproduction host (one physical core) rayon degenerates to one
//! worker; the virtual-time ledger models the multi-thread speedup (see
//! `hymv_comm::CostModel::smp_speedup`). The code itself is correct,
//! data-race-free parallel Rust on any host.

use rayon::prelude::*;

use hymv_la::dense::select_kernel;
use hymv_la::ElementMatrixStore;

use crate::da::DistArray;
use crate::maps::HymvMaps;

std::thread_local! {
    /// A per-rank rayon pool whose only worker is the rank's own thread
    /// (`use_current_thread`). Two reasons: the rank's CPU-time clock then
    /// sees all the elemental work (the virtual-time ledger divides it by
    /// the modeled thread count), and concurrent thread-ranks don't
    /// serialize through the shared global pool.
    static RANK_POOL: rayon::ThreadPool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .use_current_thread()
        .build()
        .expect("per-rank rayon pool");
}

/// Run a rayon section on the rank-local pool.
pub(crate) fn on_rank_pool<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    RANK_POOL.with(|p| p.install(f))
}

/// How the local elemental loop runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// One thread (the paper's pure-MPI configuration).
    Serial,
    /// Rayon over color classes with direct shared writes.
    Colored {
        /// Modeled thread count (OpenMP threads per MPI rank).
        threads: usize,
    },
    /// Rayon with per-worker private accumulation buffers.
    ChunkPrivate {
        /// Modeled thread count.
        threads: usize,
    },
}

impl ParallelMode {
    /// The modeled thread count (1 for serial).
    pub fn threads(&self) -> usize {
        match *self {
            ParallelMode::Serial => 1,
            ParallelMode::Colored { threads } | ParallelMode::ChunkPrivate { threads } => threads,
        }
    }
}

/// Greedy element coloring over a subset of elements: no two elements of a
/// color share a local node. Returns `None` when more than the 64 colors a
/// `u64` mask can track would be needed (a node of valence > 64) — callers
/// fall back to chunk-private accumulation instead of aborting the SPMV.
pub fn try_color_elements(maps: &HymvMaps, subset: &[u32]) -> Option<Vec<Vec<u32>>> {
    // For each node, a bitmask of colors already used by incident elements.
    let mut node_mask = vec![0u64; maps.n_total()];
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for &e in subset {
        let nodes = maps.elem_local_nodes(e as usize);
        let mut forbidden = 0u64;
        for &l in nodes {
            forbidden |= node_mask[l as usize];
        }
        let color = (!forbidden).trailing_zeros() as usize;
        if color >= 64 {
            return None;
        }
        if color == classes.len() {
            classes.push(Vec::new());
        }
        classes[color].push(e);
        for &l in nodes {
            node_mask[l as usize] |= 1 << color;
        }
    }
    Some(classes)
}

/// Like [`try_color_elements`], for meshes known to be low-valence.
///
/// # Panics
/// If the subset needs more than 64 colors; production paths use
/// [`try_color_elements`] and fall back instead.
pub fn color_elements(maps: &HymvMaps, subset: &[u32]) -> Vec<Vec<u32>> {
    try_color_elements(maps, subset).expect("element valence exceeded 64 colors")
}

/// Serial EMV loop over a subset: `v(E2L[e]) += Ke · u(E2L[e])`.
// verify: kernel-entry
pub fn emv_loop_serial(
    maps: &HymvMaps,
    store: &ElementMatrixStore,
    u: &DistArray,
    v: &mut DistArray,
    subset: &[u32],
    ue: &mut [f64],
    ve: &mut [f64],
) {
    // Resolve the SIMD dispatch once per loop, not per element.
    let emv = select_kernel();
    for &e in subset {
        let nodes = maps.elem_local_nodes(e as usize);
        u.extract_elem(nodes, ue);
        emv(store.ke(e as usize), ue, ve);
        v.accumulate_elem(nodes, ve);
    }
}

/// A `*mut f64` wrapper that lets color-disjoint writers share a slice.
pub(crate) struct RacyTarget {
    ptr: *mut f64,
}

// SAFETY: writers touch disjoint index sets (guaranteed by coloring), so
// concurrent access through the raw pointer is race-free.
#[allow(unsafe_code)]
unsafe impl Sync for RacyTarget {}
// SAFETY: the pointer's referent is owned by the caller for the whole call.
#[allow(unsafe_code)]
unsafe impl Send for RacyTarget {}

impl RacyTarget {
    /// Wrap a shared accumulation target.
    pub(crate) fn new(ptr: *mut f64) -> Self {
        RacyTarget { ptr }
    }

    /// Accumulate into slot `idx`.
    ///
    /// # Safety
    /// Callers must guarantee no concurrent access to the same `idx`
    /// (here: element/block coloring).
    #[inline]
    #[allow(unsafe_code)] // SAFETY: the raw write behind both colored loops; contract above
    pub(crate) unsafe fn add(&self, idx: usize, val: f64) {
        *self.ptr.add(idx) += val;
    }
}

/// Colored parallel EMV loop: classes run sequentially; elements within a
/// class run in parallel, writing directly to the shared DA (sound because
/// same-color elements share no node).
///
/// Allocation waiver: rayon's `for_each_init` allocates one `ue`/`ve`
/// pair per worker — bounded per-thread scratch inside the pool boundary,
/// not per-element churn.
// verify: allow(allocates), kernel-entry
pub fn emv_loop_colored(
    maps: &HymvMaps,
    store: &ElementMatrixStore,
    u: &DistArray,
    v: &mut DistArray,
    classes: &[Vec<u32>],
) {
    let nd = store.nd();
    let ndof = v.ndof;
    let emv = select_kernel();
    let target = RacyTarget::new(v.data.as_mut_ptr());
    on_rank_pool(|| {
        for class in classes {
            class.par_iter().for_each_init(
                || (vec![0.0; nd], vec![0.0; nd]),
                |(ue, ve), &e| {
                    let nodes = maps.elem_local_nodes(e as usize);
                    u.extract_elem(nodes, ue);
                    emv(store.ke(e as usize), ue, ve);
                    for (m, &l) in nodes.iter().enumerate() {
                        let base = l as usize * ndof;
                        for c in 0..ndof {
                            // SAFETY: `l` sets are disjoint across the elements
                            // of one color class; classes are sequential.
                            #[allow(unsafe_code)]
                            unsafe {
                                target.add(base + c, ve[m * ndof + c]);
                            }
                        }
                    }
                },
            );
        }
    });
}

/// Chunk-private parallel EMV loop: workers accumulate into private
/// buffers, reduced by summation at the end.
///
/// Allocation waiver: the worker-private accumulation buffers are the
/// point of this scheme — one per chunk, reduced on join. Bounded
/// per-call, not hoistable across the pool boundary.
// verify: allow(allocates), kernel-entry
pub fn emv_loop_chunk_private(
    maps: &HymvMaps,
    store: &ElementMatrixStore,
    u: &DistArray,
    v: &mut DistArray,
    subset: &[u32],
) {
    let nd = store.nd();
    let len = v.data.len();
    let emv = select_kernel();
    let partials: Vec<Vec<f64>> = on_rank_pool(|| {
        let chunk = subset.len().div_ceil(rayon::current_num_threads()).max(1);
        subset
            .par_chunks(chunk)
            .map(|elems| {
                let mut buf = vec![0.0; len];
                let mut ue = vec![0.0; nd];
                let mut ve = vec![0.0; nd];
                let ndof = u.ndof;
                for &e in elems {
                    let nodes = maps.elem_local_nodes(e as usize);
                    u.extract_elem(nodes, &mut ue);
                    emv(store.ke(e as usize), &ue, &mut ve);
                    for (m, &l) in nodes.iter().enumerate() {
                        let base = l as usize * ndof;
                        for c in 0..ndof {
                            buf[base + c] += ve[m * ndof + c];
                        }
                    }
                }
                buf
            })
            .collect()
    });
    for buf in partials {
        for (dst, src) in v.data.iter_mut().zip(&buf) {
            *dst += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymv_mesh::partition::{partition_mesh, PartitionMethod};
    use hymv_mesh::{ElementType, StructuredHexMesh};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (HymvMaps, ElementMatrixStore, DistArray) {
        let mesh = StructuredHexMesh::unit(n, ElementType::Hex8).build();
        let pm = partition_mesh(&mesh, 1, PartitionMethod::Slabs);
        let maps = HymvMaps::build(&pm.parts[0]);
        let mut store = ElementMatrixStore::new(8, maps.n_elems);
        let mut rng = StdRng::seed_from_u64(5);
        for e in 0..maps.n_elems {
            for v in store.ke_mut(e) {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        let u = {
            let mut u = DistArray::new(&maps, 1);
            for v in u.data.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            u
        };
        (maps, store, u)
    }

    #[test]
    fn coloring_is_proper_and_covers() {
        let (maps, _, _) = setup(4);
        let all: Vec<u32> = (0..maps.n_elems as u32).collect();
        let classes = color_elements(&maps, &all);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, maps.n_elems);
        // Structured hex mesh needs exactly 8 colors.
        assert_eq!(classes.len(), 8);
        for class in &classes {
            let mut seen = std::collections::HashSet::new();
            for &e in class {
                for &l in maps.elem_local_nodes(e as usize) {
                    assert!(seen.insert(l), "color class shares node {l}");
                }
            }
        }
    }

    /// A valence-65 "umbrella": 65 tets all sharing node 0. Greedy
    /// coloring needs 65 colors — more than the 64-bit mask tracks — so
    /// `try_color_elements` must decline instead of panicking.
    #[test]
    fn coloring_gives_up_past_64_colors() {
        let n_elems = 65u64;
        let mut e2g = Vec::new();
        for e in 0..n_elems {
            e2g.extend_from_slice(&[0, 3 * e + 1, 3 * e + 2, 3 * e + 3]);
        }
        let part = hymv_mesh::MeshPartition {
            rank: 0,
            elem_type: ElementType::Tet4,
            e2g,
            node_range: (0, 3 * n_elems + 1),
            elem_coords: vec![[0.0; 3]; n_elems as usize * 4],
            elem_global_ids: (0..n_elems).collect(),
            n_global_nodes: 3 * n_elems + 1,
        };
        let maps = HymvMaps::build(&part);
        let all: Vec<u32> = (0..n_elems as u32).collect();
        assert!(try_color_elements(&maps, &all).is_none());
        assert!(try_color_elements(&maps, &all[..64]).is_some());
    }

    #[test]
    fn colored_matches_serial() {
        let (maps, store, u) = setup(4);
        let all: Vec<u32> = (0..maps.n_elems as u32).collect();

        let mut v_serial = DistArray::new(&maps, 1);
        let mut ue = vec![0.0; 8];
        let mut ve = vec![0.0; 8];
        emv_loop_serial(&maps, &store, &u, &mut v_serial, &all, &mut ue, &mut ve);

        let classes = color_elements(&maps, &all);
        let mut v_col = DistArray::new(&maps, 1);
        emv_loop_colored(&maps, &store, &u, &mut v_col, &classes);

        for (a, b) in v_serial.data.iter().zip(&v_col.data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_private_matches_serial() {
        let (maps, store, u) = setup(3);
        let all: Vec<u32> = (0..maps.n_elems as u32).collect();

        let mut v_serial = DistArray::new(&maps, 1);
        let mut ue = vec![0.0; 8];
        let mut ve = vec![0.0; 8];
        emv_loop_serial(&maps, &store, &u, &mut v_serial, &all, &mut ue, &mut ve);

        let mut v_cp = DistArray::new(&maps, 1);
        emv_loop_chunk_private(&maps, &store, &u, &mut v_cp, &all);

        for (a, b) in v_serial.data.iter().zip(&v_cp.data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_subset_is_noop() {
        let (maps, store, u) = setup(2);
        let mut v = DistArray::new(&maps, 1);
        emv_loop_serial(&maps, &store, &u, &mut v, &[], &mut [0.0; 8], &mut [0.0; 8]);
        assert!(v.data.iter().all(|&x| x == 0.0));
        let classes = color_elements(&maps, &[]);
        assert!(classes.is_empty());
        emv_loop_colored(&maps, &store, &u, &mut v, &classes);
        emv_loop_chunk_private(&maps, &store, &u, &mut v, &[]);
        assert!(v.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mode_thread_counts() {
        assert_eq!(ParallelMode::Serial.threads(), 1);
        assert_eq!(ParallelMode::Colored { threads: 14 }.threads(), 14);
        assert_eq!(ParallelMode::ChunkPrivate { threads: 4 }.threads(), 4);
    }
}
